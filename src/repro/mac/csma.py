"""Slotted CSMA/CA for inter-satellite channels.

Implements the 802.11-DCF-style access the paper references for satellite
constellations: carrier sense, DIFS inter-frame spacing, binary exponential
backoff with a contention window that doubles on collision, and SIFS+ACK
completion.  The known cost — "higher overhead and corresponding larger
latency due to Inter-Frame Spacing and backoff window requirements" — is
exactly what the MAC ablation benchmark measures against TDMA.

The simulator is slot-based: all durations are expressed in whole slots,
Bernoulli arrivals feed per-station FIFO queues, and any overlap of two
transmissions destroys both (no capture effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mac.common import MacResult


@dataclass(frozen=True)
class CsmaCaConfig:
    """CSMA/CA parameters.

    Slot time defaults reflect an ISL-scale channel: LEO cross-link
    propagation is milliseconds, so the slot must be much larger than in
    terrestrial Wi-Fi for carrier sensing to be meaningful.

    Attributes:
        slot_time_s: One backoff slot (>= one-way propagation time).
        difs_slots: Idle slots of inter-frame spacing before contending.
        sifs_slots: Short IFS between data and ACK.
        ack_slots: ACK transmission duration in slots.
        frame_slots: Data-frame transmission duration in slots.
        cw_min: Initial contention window (slots).
        cw_max: Contention window ceiling.
        max_retries: Attempts before a frame is dropped.
    """

    slot_time_s: float = 0.015
    difs_slots: int = 3
    sifs_slots: int = 1
    ack_slots: int = 1
    frame_slots: int = 10
    cw_min: int = 16
    cw_max: int = 1024
    max_retries: int = 7

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0.0:
            raise ValueError(f"slot time must be positive, got {self.slot_time_s}")
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError(
                f"need 1 <= cw_min <= cw_max, got {self.cw_min}, {self.cw_max}"
            )
        if self.frame_slots < 1:
            raise ValueError(f"frame must last >= 1 slot, got {self.frame_slots}")

    @property
    def overhead_slots_per_frame(self) -> int:
        """Fixed per-frame overhead excluding backoff: DIFS + SIFS + ACK."""
        return self.difs_slots + self.sifs_slots + self.ack_slots


class _Station:
    """Per-station MAC state: queue, backoff counter, retry count."""

    def __init__(self, station_id: int, config: CsmaCaConfig,
                 rng: np.random.Generator):
        self.station_id = station_id
        self._config = config
        self._rng = rng
        self.queue: List[float] = []  # arrival times of queued frames
        self.backoff: Optional[int] = None
        self.retries = 0
        self.difs_counter = 0

    def has_frame(self) -> bool:
        return bool(self.queue)

    def start_contention(self) -> None:
        """Draw a fresh backoff for the head-of-line frame."""
        cw = min(
            self._config.cw_max, self._config.cw_min * (2**self.retries)
        )
        self.backoff = int(self._rng.integers(0, cw))
        self.difs_counter = self._config.difs_slots

    def on_collision(self) -> bool:
        """Double the window; returns False when the frame must be dropped."""
        self.retries += 1
        if self.retries > self._config.max_retries:
            self.queue.pop(0)
            self.retries = 0
            self.backoff = None
            return False
        self.start_contention()
        return True

    def on_success(self) -> float:
        """Dequeue the delivered frame; returns its arrival time."""
        arrival = self.queue.pop(0)
        self.retries = 0
        self.backoff = None
        return arrival


class CsmaCaSimulator:
    """Slot-stepped CSMA/CA channel with N contending stations.

    Args:
        station_count: Number of stations sharing the channel.
        config: MAC timing parameters.
        arrival_rate_fps: Frame arrivals per second per station (Bernoulli
            per slot, rate clamped so the per-slot probability stays <= 1).
        rng: Seeded random generator.
    """

    def __init__(self, station_count: int, config: CsmaCaConfig,
                 arrival_rate_fps: float, rng: np.random.Generator):
        if station_count < 1:
            raise ValueError(f"need >= 1 station, got {station_count}")
        if arrival_rate_fps < 0.0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate_fps}")
        self.config = config
        self._rng = rng
        self._stations = [_Station(i, config, rng) for i in range(station_count)]
        self._p_arrival = min(1.0, arrival_rate_fps * config.slot_time_s)

    def run(self, duration_s: float) -> MacResult:
        """Simulate the channel for ``duration_s`` seconds of slot time."""
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        cfg = self.config
        total_slots = int(duration_s / cfg.slot_time_s)
        result = MacResult(duration_s=total_slots * cfg.slot_time_s)
        for station in self._stations:
            result.per_station_delivered[station.station_id] = 0

        slot = 0
        while slot < total_slots:
            now_s = slot * cfg.slot_time_s
            # Bernoulli arrivals for this slot.
            arrivals = self._rng.random(len(self._stations)) < self._p_arrival
            for station, arrived in zip(self._stations, arrivals):
                if arrived:
                    station.queue.append(now_s)
                    result.frames_offered += 1
                    if station.backoff is None and len(station.queue) == 1:
                        station.start_contention()
                if station.has_frame() and station.backoff is None:
                    station.start_contention()

            # Stations first wait out DIFS, then count down backoff.
            transmitters = []
            for station in self._stations:
                if not station.has_frame() or station.backoff is None:
                    continue
                if station.difs_counter > 0:
                    station.difs_counter -= 1
                    continue
                if station.backoff > 0:
                    station.backoff -= 1
                    continue
                transmitters.append(station)

            if not transmitters:
                slot += 1
                continue

            tx_slots = cfg.frame_slots + cfg.sifs_slots + cfg.ack_slots
            airtime_s = tx_slots * cfg.slot_time_s
            result.busy_time_s += min(airtime_s, (total_slots - slot) * cfg.slot_time_s)
            if len(transmitters) == 1:
                station = transmitters[0]
                arrival = station.on_success()
                result.frames_delivered += 1
                result.per_station_delivered[station.station_id] += 1
                end_s = (slot + tx_slots) * cfg.slot_time_s
                result.delays_s.append(end_s - arrival)
                result.useful_time_s += min(
                    cfg.frame_slots * cfg.slot_time_s,
                    max(0.0, (total_slots - slot) * cfg.slot_time_s),
                )
            else:
                result.frames_collided += len(transmitters)
                for station in transmitters:
                    station.on_collision()
            # Channel is occupied for the whole exchange either way (a
            # collision still burns the frame airtime before timeout).
            slot += tx_slots
            # Freeze: other stations' counters simply don't advance during
            # the busy period, which the slot jump accomplishes.
        return result
