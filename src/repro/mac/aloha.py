"""Slotted ALOHA — the zero-coordination MAC floor.

The inter-satellite MAC survey the paper cites covers ALOHA variants as
the simplest random-access schemes.  Slotted ALOHA needs no carrier sense
(useful when propagation delays defeat sensing) and no synchronization
beyond slot boundaries; its price is the classic ``G e^{-G}`` throughput
ceiling of ~36.8%.  Included as the lower bound the CSMA/CA-vs-TDMA
ablation is read against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mac.common import MacResult


@dataclass(frozen=True)
class AlohaConfig:
    """Slotted-ALOHA parameters.

    Attributes:
        slot_time_s: Slot duration (one frame per slot).
        retransmit_probability: Probability a backlogged station attempts
            in a slot (geometric backoff).
        max_attempts: Attempts before a frame is dropped.
    """

    slot_time_s: float = 0.15
    retransmit_probability: float = 0.2
    max_attempts: int = 15

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0.0:
            raise ValueError(f"slot time must be positive, got {self.slot_time_s}")
        if not 0.0 < self.retransmit_probability <= 1.0:
            raise ValueError(
                "retransmit probability must be in (0, 1], got "
                f"{self.retransmit_probability}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"need >= 1 attempt, got {self.max_attempts}")


class SlottedAlohaSimulator:
    """Slotted ALOHA with Bernoulli arrivals and geometric retransmission.

    Args:
        station_count: Contending stations.
        config: Protocol parameters.
        arrival_rate_fps: Frames per second per station.
        rng: Seeded generator.
    """

    def __init__(self, station_count: int, config: AlohaConfig,
                 arrival_rate_fps: float, rng: np.random.Generator):
        if station_count < 1:
            raise ValueError(f"need >= 1 station, got {station_count}")
        if arrival_rate_fps < 0.0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate_fps}")
        self.config = config
        self.station_count = station_count
        self._rng = rng
        self._arrival_rate = arrival_rate_fps

    def run(self, duration_s: float) -> MacResult:
        """Simulate ``duration_s`` of slotted operation."""
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        cfg = self.config
        total_slots = int(duration_s / cfg.slot_time_s)
        p_arrival = min(1.0, self._arrival_rate * cfg.slot_time_s)
        result = MacResult(duration_s=total_slots * cfg.slot_time_s)
        # Per-station: list of (arrival_time, attempts) queued frames.
        queues: List[List[List[float]]] = [[] for _ in range(self.station_count)]
        for sid in range(self.station_count):
            result.per_station_delivered[sid] = 0

        for slot in range(total_slots):
            now = slot * cfg.slot_time_s
            arrivals = self._rng.random(self.station_count) < p_arrival
            for sid, arrived in enumerate(arrivals):
                if arrived:
                    queues[sid].append([now, 0])
                    result.frames_offered += 1
            # Each backlogged station transmits its head-of-line frame:
            # immediately on a fresh frame, else with the geometric
            # retransmission probability.
            transmitters = []
            for sid in range(self.station_count):
                if not queues[sid]:
                    continue
                head = queues[sid][0]
                fresh = head[1] == 0
                if fresh or self._rng.random() < cfg.retransmit_probability:
                    transmitters.append(sid)
            if not transmitters:
                continue
            result.busy_time_s += cfg.slot_time_s
            if len(transmitters) == 1:
                sid = transmitters[0]
                arrival, _ = queues[sid].pop(0)
                result.frames_delivered += 1
                result.per_station_delivered[sid] += 1
                result.delays_s.append(now + cfg.slot_time_s - arrival)
                result.useful_time_s += cfg.slot_time_s
            else:
                result.frames_collided += len(transmitters)
                for sid in transmitters:
                    head = queues[sid][0]
                    head[1] += 1
                    if head[1] >= cfg.max_attempts:
                        queues[sid].pop(0)
        return result


def theoretical_throughput(offered_load: float) -> float:
    """Slotted-ALOHA throughput ``S = G e^{-G}`` (per-slot successes)."""
    if offered_load < 0.0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    return offered_load * np.exp(-offered_load)
