"""Shared MAC result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class MacResult:
    """Aggregate outcome of a MAC simulation run.

    Attributes:
        duration_s: Simulated wall-clock duration.
        frames_offered: Frames generated across all stations.
        frames_delivered: Frames successfully received.
        frames_collided: Frame transmissions lost to collisions.
        busy_time_s: Time the channel carried (any) transmission energy.
        useful_time_s: Time the channel carried transmissions that were
            ultimately delivered (goodput time).
        delays_s: Per-delivered-frame queueing+access delay samples.
        per_station_delivered: Delivered-frame count by station id.
    """

    duration_s: float
    frames_offered: int = 0
    frames_delivered: int = 0
    frames_collided: int = 0
    busy_time_s: float = 0.0
    useful_time_s: float = 0.0
    delays_s: List[float] = field(default_factory=list)
    per_station_delivered: Dict[int, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """Fraction of offered frames delivered."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_delivered / self.frames_offered

    @property
    def channel_utilization(self) -> float:
        """Fraction of time the channel carried any transmission."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.busy_time_s / self.duration_s

    @property
    def goodput_efficiency(self) -> float:
        """Fraction of time spent on ultimately-delivered payload."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.useful_time_s / self.duration_s

    @property
    def mean_delay_s(self) -> float:
        """Mean access delay over delivered frames (0 when none delivered)."""
        if not self.delays_s:
            return 0.0
        return sum(self.delays_s) / len(self.delays_s)

    @property
    def p95_delay_s(self) -> float:
        """95th-percentile access delay (0 when no frames delivered)."""
        if not self.delays_s:
            return 0.0
        ordered = sorted(self.delays_s)
        index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[index]

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-station delivered counts."""
        counts = list(self.per_station_delivered.values())
        if not counts:
            return 1.0
        total = sum(counts)
        if total == 0:
            return 1.0
        squares = sum(c * c for c in counts)
        return total * total / (len(counts) * squares)
