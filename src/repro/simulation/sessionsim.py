"""User-session simulation over the time-varying network.

Ties the whole stack together for one user: at each epoch the network is
re-snapshotted, the best gateway route recomputed, serving-satellite
changes are charged as handovers (predictive or re-authenticating), and
the user-experienced latency/capacity series is recorded — the trace a
subscriber's QoE dashboard would show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import obs as _obs
from repro.core.handover import HandoverScheme
from repro.core.network import OpenSpaceNetwork
from repro.ground.user import UserTerminal
from repro.routing.metrics import EdgeCostModel


@dataclass(frozen=True)
class SessionSample:
    """One epoch of a session trace.

    Attributes:
        time_s: Sample time.
        serving_satellite: First-hop satellite (None when out of service).
        gateway: Exit gateway (None when unreachable).
        latency_ms: One-way route latency.
        bottleneck_mbps: Route bottleneck capacity.
        handover: True when the serving satellite changed at this epoch.
    """

    time_s: float
    serving_satellite: Optional[str]
    gateway: Optional[str]
    latency_ms: float
    bottleneck_mbps: float
    handover: bool


@dataclass
class SessionTrace:
    """A full session record.

    Attributes:
        samples: Per-epoch samples.
        scheme: Handover scheme charged.
        total_outage_s: Accumulated interruption from handovers and
            coverage gaps.
        epoch_s: Sampling interval.
    """

    samples: List[SessionSample] = field(default_factory=list)
    scheme: HandoverScheme = HandoverScheme.PREDICTIVE
    total_outage_s: float = 0.0
    epoch_s: float = 30.0

    @property
    def duration_s(self) -> float:
        return len(self.samples) * self.epoch_s

    @property
    def served_samples(self) -> List[SessionSample]:
        return [s for s in self.samples if s.serving_satellite is not None]

    @property
    def availability(self) -> float:
        """Fraction of the session with service, net of handover outage."""
        if not self.samples:
            return 0.0
        served_time = len(self.served_samples) * self.epoch_s
        return max(0.0, served_time - self.total_outage_s) / self.duration_s

    @property
    def handover_count(self) -> int:
        return sum(1 for s in self.samples if s.handover)

    def latency_stats_ms(self) -> dict:
        """Mean/median/p95 latency over served samples."""
        latencies = [s.latency_ms for s in self.served_samples]
        if not latencies:
            return {"mean": float("nan"), "p50": float("nan"),
                    "p95": float("nan")}
        return {
            "mean": float(np.mean(latencies)),
            "p50": float(np.percentile(latencies, 50)),
            "p95": float(np.percentile(latencies, 95)),
        }


class SessionSimulator:
    """Replays one user's session against a live network.

    Args:
        network: The federated network.
        link_setup_s: Interruption for a predictive handover.
        auth_round_trip_s: Extra interruption per handover when the scheme
            re-authenticates.
        cost_model: Routing cost model (defaults to propagation+queue).
    """

    def __init__(self, network: OpenSpaceNetwork,
                 link_setup_s: float = 0.020,
                 auth_round_trip_s: float = 0.180,
                 cost_model: Optional[EdgeCostModel] = None):
        self.network = network
        self.link_setup_s = link_setup_s
        self.auth_round_trip_s = auth_round_trip_s
        self.cost_model = cost_model

    def run(self, user: UserTerminal, start_s: float, end_s: float,
            epoch_s: float = 30.0,
            scheme: HandoverScheme = HandoverScheme.PREDICTIVE) -> SessionTrace:
        """Simulate the session over ``[start_s, end_s)``.

        Args:
            user: The subscriber terminal.
            start_s: Session start.
            end_s: Session end.
            epoch_s: Re-evaluation interval (30 s resolves LEO dynamics).
            scheme: Handover protocol to charge.
        """
        if end_s <= start_s:
            raise ValueError(f"end {end_s} must be after start {start_s}")
        if epoch_s <= 0.0:
            raise ValueError(f"epoch must be positive, got {epoch_s}")
        recorder = _obs.active()
        with recorder.span("simulation.session.run", user=user.user_id,
                           scheme=scheme.value, start_s=start_s,
                           end_s=end_s):
            trace = self._replay(user, start_s, end_s, epoch_s, scheme)
        if recorder.enabled:
            recorder.count("session.samples", len(trace.samples))
            recorder.count("session.handovers", trace.handover_count,
                           label=scheme.value)
            recorder.count("session.outage_s", trace.total_outage_s,
                           label=scheme.value)
        return trace

    def _replay(self, user: UserTerminal, start_s: float, end_s: float,
                epoch_s: float, scheme: HandoverScheme) -> SessionTrace:
        recorder = _obs.active()
        trace = SessionTrace(scheme=scheme, epoch_s=epoch_s)
        previous_satellite: Optional[str] = None
        for time_s in np.arange(start_s, end_s, epoch_s):
            snap = self.network.snapshot(float(time_s), users=[user])
            metrics = snap.nearest_ground_station_route(
                user.user_id, self.cost_model
            )
            if metrics is None:
                trace.samples.append(SessionSample(
                    time_s=float(time_s), serving_satellite=None,
                    gateway=None, latency_ms=float("nan"),
                    bottleneck_mbps=0.0, handover=False,
                ))
                if recorder.enabled and previous_satellite is not None:
                    recorder.event("session.drop", float(time_s),
                                   subject=user.user_id,
                                   satellite=previous_satellite,
                                   reason="no-route")
                previous_satellite = None
                continue
            serving = metrics.path[1]
            handover = (previous_satellite is not None
                        and serving != previous_satellite)
            if recorder.enabled:
                if previous_satellite is None:
                    recorder.event("session.admit", float(time_s),
                                   subject=user.user_id, satellite=serving,
                                   scheme=scheme.value)
                elif handover:
                    recorder.event("handover", float(time_s),
                                   subject=serving,
                                   from_satellite=previous_satellite,
                                   user=user.user_id, scheme=scheme.value)
            if handover or previous_satellite is None:
                outage = self.link_setup_s
                if (scheme is HandoverScheme.REAUTHENTICATE
                        or previous_satellite is None):
                    outage += self.auth_round_trip_s
                trace.total_outage_s += outage
            trace.samples.append(SessionSample(
                time_s=float(time_s),
                serving_satellite=serving,
                gateway=metrics.path[-1],
                latency_ms=metrics.total_delay_ms,
                bottleneck_mbps=metrics.bottleneck_capacity_bps / 1e6,
                handover=handover,
            ))
            previous_satellite = serving
        return trace
