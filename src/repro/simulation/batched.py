"""Batched-array epoch engine: tensor pipelines over whole experiments.

The scalar experiment drivers walk one (constellation, epoch) state at a
time — propagate, budget each edge, route, sample.  This module holds the
array counterparts that flatten those walks into a handful of vectorized
passes: every epoch's fleet positions as one ``(epochs, sats, 3)``
tensor, ground tracks as ``(epochs, 3)`` arrays, visibility as boolean
``(epochs, sats)`` contact masks, and handover/association transitions
as diffs over those masks.

Everything here preserves the repo's reproducibility contract: a batched
pass must be **bitwise identical** to the scalar walk it replaces, which
the experiment drivers enforce with digest gates (see DESIGN.md, "Array
pipeline invariants").  The helpers therefore run the same float64
elementwise operations on the same values as the scalar paths — never a
mathematically-equivalent-but-differently-rounded formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.orbits.kepler import batch_positions
from repro.orbits.visibility import elevation_angles


def epoch_position_tensor(propagators: Sequence, times_s) -> np.ndarray:
    """Every epoch's fleet positions as one ``(epochs, sats, 3)`` tensor.

    One batched propagation for the whole grid; row ``e`` is bitwise
    identical to stacking the per-satellite ``states_at(times[e])``
    solves (the flat Kepler path is shape-independent; pinned by
    ``tests/orbits/test_kepler.py``).

    Args:
        propagators: Kepler propagators, one per satellite.
        times_s: 1-D array of epoch times.

    Returns:
        ``(len(times_s), len(propagators), 3)`` C-contiguous positions.
    """
    times = np.asarray(times_s, dtype=float)
    stacked = batch_positions(list(propagators), times)  # (N, T, 3)
    return np.ascontiguousarray(stacked.transpose(1, 0, 2))


def ground_eci_track(site: GeodeticPoint, times_s) -> np.ndarray:
    """A fixed ground site's ECI positions over an epoch grid, ``(E, 3)``.

    Deliberately loops :func:`~repro.orbits.coordinates.ecef_to_eci` per
    epoch instead of calling the vectorized ``ecef_to_eci_over``: the
    batched helper reduces GMST modulo 2*pi before the trig, so its
    rotations differ from the scalar path's in the last ulp — and the
    digest gates demand the scalar bits.  Epoch grids are tiny (a few
    entries per trial), so the loop costs nothing.
    """
    ecef = site.ecef()
    times = np.asarray(times_s, dtype=float)
    return np.stack([ecef_to_eci(ecef, float(t)) for t in times])


def merge_trial_epochs(tensors: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-trial ``(N, E, 3)`` position tensors along epochs.

    The figure2 batched engine runs every trial's every epoch through
    one block-diagonal shortest-path call; this produces the merged
    ``(N, trials * E, 3)`` tensor whose epoch block ``t`` is trial
    ``t``'s tensor, bit for bit (``np.concatenate`` copies values
    unchanged).
    """
    if not tensors:
        raise ValueError("need at least one trial tensor")
    return np.concatenate(list(tensors), axis=1)


def contact_mask(ground_ecis: np.ndarray, positions: np.ndarray,
                 min_elevation_deg: float = 10.0) -> np.ndarray:
    """Visibility of every satellite from a ground track, ``(E, N)`` bool.

    ``mask[e, s]`` is True when satellite ``s`` sits at or above the
    elevation mask as seen from the ground position at epoch ``e`` —
    the same ``elevation >= radians(mask)`` comparison the scalar
    snapshot/contact paths make, broadcast over the epoch axis.

    Args:
        ground_ecis: ``(E, 3)`` ground ECI positions per epoch.
        positions: ``(E, N, 3)`` satellite positions per epoch, or a
            static ``(N, 3)`` set broadcast over every epoch.
        min_elevation_deg: Elevation mask in degrees.
    """
    ground = np.asarray(ground_ecis, dtype=float)
    pts = np.asarray(positions, dtype=float)
    elevations = elevation_angles(ground[:, None, :], pts)
    return elevations >= math.radians(min_elevation_deg)


@dataclass(frozen=True)
class TransitionMasks:
    """Association/handover transitions as vectorized epoch-axis masks.

    All four masks are ``(epochs, sats)`` boolean arrays derived from a
    contact mask by diffing along the epoch axis.  Epoch 0 has no
    predecessor: every satellite visible then counts as *acquired*
    (initial association) and nothing counts as dropped or sustained.

    Attributes:
        visible: The input contact mask.
        acquired: Visible now, not at the previous epoch — the epochs at
            which a user would associate with (or hand over to) the
            satellite.
        dropped: Visible at the previous epoch, not now — the serving
            set losses that force a handover.
        sustained: Visible at both — contacts a successor planner can
            keep without any control-plane event.
    """

    visible: np.ndarray
    acquired: np.ndarray
    dropped: np.ndarray
    sustained: np.ndarray

    @property
    def association_count(self) -> int:
        """Total acquisitions across the grid (contact passes begun)."""
        return int(self.acquired.sum())

    @property
    def drops_per_epoch(self) -> np.ndarray:
        """``(epochs,)`` count of contacts lost entering each epoch."""
        return self.dropped.sum(axis=1)

    @property
    def passes_per_satellite(self) -> np.ndarray:
        """``(sats,)`` count of distinct contact passes per satellite."""
        return self.acquired.sum(axis=0)


def transition_masks(mask: np.ndarray) -> TransitionMasks:
    """Diff a contact mask into :class:`TransitionMasks`.

    Pure boolean array work — no Python scales with epochs or fleet
    size.  ``tests/simulation/test_batched.py`` pins the semantics
    against a per-epoch scalar reference.
    """
    visible = np.asarray(mask, dtype=bool)
    if visible.ndim != 2:
        raise ValueError(f"contact mask must be 2-D, got shape {visible.shape}")
    previous = np.zeros_like(visible)
    previous[1:] = visible[:-1]
    return TransitionMasks(
        visible=visible,
        acquired=visible & ~previous,
        dropped=~visible & previous,
        sustained=visible & previous,
    )


def contact_spans(mask: np.ndarray,
                  times_s) -> List[Tuple[int, float, float]]:
    """Coarse contact spans from a grid mask, one tuple per pass.

    The vectorized counterpart of the coarse scan inside
    :func:`repro.orbits.contact.contact_windows`: each maximal run of
    visible epochs becomes ``(satellite_index, rise_time, set_time)``
    where the times are the first and last *visible grid instants*
    (the bracket the scalar helper refines by bisection).  Spans come
    back ordered by satellite, then rise time.
    """
    visible = np.asarray(mask, dtype=bool)
    times = np.asarray(times_s, dtype=float)
    if visible.ndim != 2:
        raise ValueError(f"contact mask must be 2-D, got shape {visible.shape}")
    if times.shape[0] != visible.shape[0]:
        raise ValueError(
            f"need one time per epoch: {times.shape[0]} times for "
            f"{visible.shape[0]} epochs"
        )
    by_sat = visible.T  # (N, E)
    pad = np.zeros((by_sat.shape[0], 1), dtype=np.int8)
    edges = np.diff(
        np.concatenate([pad, by_sat.astype(np.int8), pad], axis=1), axis=1
    )
    rise_sat, rise_idx = np.nonzero(edges == 1)
    _set_sat, set_idx = np.nonzero(edges == -1)
    # nonzero is row-major, so rises and sets pair up per satellite in
    # epoch order (every run has exactly one of each).
    return [
        (int(sat), float(times[start]), float(times[stop - 1]))
        for sat, start, stop in zip(rise_sat, rise_idx, set_idx)
    ]
