"""Config-file scenario loading.

Scenarios are plain dataclasses; this module round-trips them through
JSON so parameter sweeps can live in version-controlled config files
rather than code.  Only stdlib JSON — the repository stays dependency-
light.

Example config::

    {
      "name": "three-operators",
      "satellite_count": 66,
      "operator_names": ["alpha", "beta", "gamma"],
      "size_mix": ["medium", "small"],
      "user_count": 20,
      "seed": 7,
      "sample_times_s": [0.0, 1800.0]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.interop import SizeClass
from repro.simulation.scenario import Scenario

#: Keys a scenario config may set (anything else is a typo worth raising).
_ALLOWED_KEYS = {
    "name", "satellite_count", "operator_names", "size_mix", "user_count",
    "seed", "sample_times_s",
}


def scenario_from_dict(config: Dict) -> Scenario:
    """Build a :class:`Scenario` from a plain config dict.

    Raises:
        ValueError: On unknown keys or unknown size-class names, with the
            offending names spelled out.
    """
    unknown = set(config) - _ALLOWED_KEYS
    if unknown:
        raise ValueError(
            f"unknown scenario config keys: {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS)}"
        )
    kwargs = dict(config)
    if "size_mix" in kwargs:
        names = kwargs["size_mix"]
        try:
            kwargs["size_mix"] = tuple(SizeClass(name) for name in names)
        except ValueError:
            valid = [size.value for size in SizeClass]
            raise ValueError(
                f"unknown size class in {names}; valid: {valid}"
            ) from None
    if "operator_names" in kwargs:
        kwargs["operator_names"] = tuple(kwargs["operator_names"])
    if "sample_times_s" in kwargs:
        kwargs["sample_times_s"] = tuple(
            float(t) for t in kwargs["sample_times_s"]
        )
    return Scenario(**kwargs)


def scenario_to_dict(scenario: Scenario) -> Dict:
    """Serialize a :class:`Scenario` back to a config dict.

    Only the config-file surface is serialized; explicit constellations
    and station lists are code-level concerns and raise.
    """
    if scenario.constellation is not None or scenario.ground_stations is not None:
        raise ValueError(
            "scenarios with explicit constellations or ground stations "
            "cannot round-trip through config files"
        )
    return {
        "name": scenario.name,
        "satellite_count": scenario.satellite_count,
        "operator_names": list(scenario.operator_names),
        "size_mix": [size.value for size in scenario.size_mix],
        "user_count": scenario.user_count,
        "seed": scenario.seed,
        "sample_times_s": list(scenario.sample_times_s),
    }


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario from a JSON config file."""
    raw = Path(path).read_text()
    try:
        config = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(config, dict):
        raise ValueError(f"{path} must contain a JSON object")
    return scenario_from_dict(config)


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write a scenario to a JSON config file."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2) + "\n"
    )
