"""Metric collection and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Summary of one metric sample set.

    Attributes:
        count: Number of samples.
        mean: Arithmetic mean.
        std: Population standard deviation.
        minimum: Smallest sample.
        p50: Median.
        p95: 95th percentile.
        maximum: Largest sample.
    """

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Summary statistics of a sample set.

    Raises:
        ValueError: On an empty sample set (an empty metric usually means
            an experiment wiring bug; surfacing it beats returning NaNs).
    """
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample set")
    arr = np.asarray(samples, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


@dataclass
class LatencyCollector:
    """Collects per-flow latency samples with reachability accounting.

    Attributes:
        samples_s: Latencies of flows that found a path.
        unreachable_count: Flows with no path at their start time.
    """

    samples_s: List[float] = field(default_factory=list)
    unreachable_count: int = 0

    def record(self, latency_s: Optional[float]) -> None:
        """Record one flow outcome (None = unreachable)."""
        if latency_s is None:
            self.unreachable_count += 1
        elif latency_s < 0.0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        else:
            self.samples_s.append(latency_s)

    @property
    def reachability(self) -> float:
        """Fraction of recorded flows that found a path.

        Returns ``float("nan")`` when no flows were recorded at all —
        "nothing measured" must stay distinguishable from "every flow
        unreachable" (0.0), which a default of zero silently conflated.
        Callers aggregating reachability across runs should skip NaNs
        (``math.isnan``) rather than average them away.
        """
        total = len(self.samples_s) + self.unreachable_count
        if total == 0:
            return float("nan")
        return len(self.samples_s) / total

    def summary(self) -> SummaryStats:
        return summarize(self.samples_s)

    def summary_ms(self) -> SummaryStats:
        """Summary with samples converted to milliseconds."""
        return summarize([s * 1000.0 for s in self.samples_s])


@dataclass
class SeriesCollector:
    """Collects (x, y) series — one row per sweep point.

    Used by the figure-regeneration drivers: x is the swept parameter
    (e.g. satellite count), y values accumulate per x.
    """

    name: str = "series"
    _points: Dict[float, List[float]] = field(default_factory=dict)

    def add(self, x: float, y: float) -> None:
        self._points.setdefault(x, []).append(y)

    def xs(self) -> List[float]:
        return sorted(self._points)

    def mean_series(self) -> List[Tuple[float, float]]:
        """``(x, mean(y))`` rows in ascending x."""
        return [
            (x, float(np.mean(self._points[x]))) for x in self.xs()
        ]

    def row(self, x: float) -> List[float]:
        """All y samples at one x (raises KeyError when absent)."""
        return list(self._points[x])

    def summary_at(self, x: float) -> SummaryStats:
        return summarize(self._points[x])

    def as_table(self) -> List[Dict[str, float]]:
        """Rows of ``{"x", "mean", "p50", "p95", "n"}`` for reporting."""
        table = []
        for x in self.xs():
            stats = summarize(self._points[x])
            table.append({
                "x": x,
                "mean": stats.mean,
                "p50": stats.p50,
                "p95": stats.p95,
                "n": stats.count,
            })
        return table
