"""Scenario configuration and execution.

A :class:`Scenario` bundles everything one simulation run needs —
constellation, operators, ground segment, user population, workload — and
produces a :class:`ScenarioResult` with the standard metric set.  The
experiment drivers and examples are thin wrappers over scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.interop import SizeClass, SpacecraftSpec, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import GroundStation, default_station_network
from repro.orbits.walker import (
    WalkerConstellation,
    iridium_like,
    random_constellation,
)
from repro.routing.metrics import EdgeCostModel
from repro.simulation.metrics import LatencyCollector
from repro.simulation.traffic import UserPopulation, uniform_land_users


@dataclass
class Scenario:
    """One simulation configuration.

    Attributes:
        name: Scenario label (appears in reports).
        satellite_count: Fleet size; satellites beyond the constellation's
            size are ignored.
        operator_names: Operators splitting the fleet round-robin.
        size_mix: Size class per operator (cycled); defaults to MEDIUM.
        user_count: Users in the population.
        constellation: Explicit constellation; defaults to Iridium-like
            when ``satellite_count <= 66`` else a random constellation.
        ground_stations: Gateway network (defaults to the standard 15).
        seed: Root RNG seed.
        sample_times_s: Times at which flows are evaluated.
    """

    name: str = "scenario"
    satellite_count: int = 66
    operator_names: Sequence[str] = ("op-a", "op-b", "op-c")
    size_mix: Sequence[SizeClass] = (SizeClass.MEDIUM,)
    user_count: int = 20
    constellation: Optional[WalkerConstellation] = None
    ground_stations: Optional[List[GroundStation]] = None
    seed: int = 0
    sample_times_s: Sequence[float] = (0.0, 300.0, 600.0)

    def build_fleet(self) -> List[SpacecraftSpec]:
        """The per-operator interleaved fleet."""
        constellation = self.constellation
        if constellation is None:
            if self.satellite_count <= 66:
                constellation = iridium_like()
            else:
                constellation = random_constellation(
                    self.satellite_count, np.random.default_rng(self.seed)
                )
        elements = list(constellation)[: self.satellite_count]
        fleet: List[SpacecraftSpec] = []
        operators = list(self.operator_names)
        sizes = list(self.size_mix)
        from repro.core.interop import (
            large_spacecraft,
            medium_spacecraft,
            small_spacecraft,
        )
        factories = {
            SizeClass.SMALL: small_spacecraft,
            SizeClass.MEDIUM: medium_spacecraft,
            SizeClass.LARGE: large_spacecraft,
        }
        for index, element in enumerate(elements):
            owner = operators[index % len(operators)]
            size = sizes[index % len(sizes)]
            fleet.append(
                factories[size](f"sat-{owner}-{index}", owner, element)
            )
        return fleet

    def build_network(self) -> OpenSpaceNetwork:
        stations = (
            self.ground_stations
            if self.ground_stations is not None
            else default_station_network()
        )
        return OpenSpaceNetwork(self.build_fleet(), stations)

    def build_population(self) -> UserPopulation:
        rng = np.random.default_rng(self.seed + 1)
        return uniform_land_users(
            self.user_count, rng, list(self.operator_names)
        )

    def run(self, cost_model: Optional[EdgeCostModel] = None) -> "ScenarioResult":
        """Evaluate user-to-gateway latency for every user at every time."""
        network = self.build_network()
        population = self.build_population()
        collector = LatencyCollector()
        for time_s in self.sample_times_s:
            snap = network.snapshot(time_s, users=population.users)
            for user in population.users:
                metrics = snap.nearest_ground_station_route(
                    user.user_id, cost_model
                )
                collector.record(
                    None if metrics is None else metrics.total_delay_s
                )
        return ScenarioResult(
            scenario_name=self.name,
            satellite_count=self.satellite_count,
            latency=collector,
        )


@dataclass
class ScenarioResult:
    """Standard metric set from one scenario run.

    Attributes:
        scenario_name: The source scenario's label.
        satellite_count: Fleet size used.
        latency: Per-flow latency collector (with reachability).
    """

    scenario_name: str
    satellite_count: int
    latency: LatencyCollector

    def report_rows(self) -> Dict[str, float]:
        """Flat dict of the headline numbers for table printing."""
        row = {
            "satellites": float(self.satellite_count),
            "reachability": self.latency.reachability,
        }
        if self.latency.samples_s:
            stats = self.latency.summary_ms()
            row.update({
                "latency_mean_ms": stats.mean,
                "latency_p50_ms": stats.p50,
                "latency_p95_ms": stats.p95,
            })
        return row
