"""Flow-level network simulation with capacity sharing.

The paper's discussion (Q2) asks for routing that handles "the more
unpredictable components of user traffic, which cannot be accounted for by
proactive routing protocols" — e.g. peak loads at ground stations forcing
runtime re-routing.  Answering that needs a congestion model: this module
simulates flows sharing link capacities under progressive-filling
(max-min fair) allocation, advancing in discrete epochs on flow arrival /
completion events.

The simulator is routing-agnostic: a ``route_fn`` callback maps each
arriving flow to a node path over the supplied graph, so proactive,
QoS-aware, and load-adaptive routers can be compared under the identical
workload (see ``benchmarks/test_ablation_adaptive_routing.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro import obs as _obs
from repro.simulation.traffic import FlowSpec


@dataclass
class ActiveFlow:
    """One in-flight flow.

    Attributes:
        spec: The originating flow spec.
        path: Node path assigned at admission.
        edges: Edge keys (sorted node pairs) along the path.
        remaining_bytes: Bytes left to transfer.
        admitted_at_s: When transfer started.
        rate_bps: Current max-min fair rate (recomputed each epoch).
    """

    spec: FlowSpec
    path: List[str]
    edges: List[Tuple[str, str]]
    remaining_bytes: float
    admitted_at_s: float
    rate_bps: float = 0.0


@dataclass(frozen=True)
class CompletedFlow:
    """Record of one finished (or failed) flow.

    Attributes:
        spec: The originating flow spec.
        completed: False when no route existed at arrival.
        start_s: Admission time (arrival time for rejected flows).
        finish_s: Completion time (equal to start for rejected flows).
        mean_rate_bps: Average throughput over the flow's lifetime.
        hop_count: Path length (0 for rejected flows).
        path: Assigned node path (empty for rejected flows).
    """

    spec: FlowSpec
    completed: bool
    start_s: float
    finish_s: float
    mean_rate_bps: float
    hop_count: int
    path: Tuple[str, ...] = ()

    @property
    def completion_time_s(self) -> float:
        return self.finish_s - self.start_s


@dataclass
class FlowSimResult:
    """Aggregate outcome of one flow simulation run."""

    completed: List[CompletedFlow] = field(default_factory=list)
    rejected: List[CompletedFlow] = field(default_factory=list)
    peak_concurrent_flows: int = 0

    @property
    def acceptance_ratio(self) -> float:
        total = len(self.completed) + len(self.rejected)
        if total == 0:
            return 0.0
        return len(self.completed) / total

    def mean_completion_time_s(self) -> float:
        if not self.completed:
            return 0.0
        return sum(f.completion_time_s for f in self.completed) / len(
            self.completed
        )

    def mean_throughput_bps(self) -> float:
        if not self.completed:
            return 0.0
        return sum(f.mean_rate_bps for f in self.completed) / len(
            self.completed
        )


def max_min_fair_rates(flows: Sequence[ActiveFlow],
                       capacities: Dict[Tuple[str, str], float]) -> None:
    """Assign progressive-filling max-min fair rates in place.

    Classic water-filling: repeatedly find the most constrained link
    (capacity / unfrozen flows), freeze its flows at that fair share, and
    continue with residual capacities.

    Args:
        flows: Active flows; ``rate_bps`` is overwritten.
        capacities: Edge key -> capacity in bps.
    """
    residual = dict(capacities)
    users: Dict[Tuple[str, str], List[ActiveFlow]] = {}
    for flow in flows:
        flow.rate_bps = 0.0
        for edge in flow.edges:
            users.setdefault(edge, []).append(flow)
    unfrozen = set(id(flow) for flow in flows)

    while unfrozen:
        # Fair share on each still-loaded edge.
        best_edge = None
        best_share = float("inf")
        for edge, edge_flows in users.items():
            active = [f for f in edge_flows if id(f) in unfrozen]
            if not active:
                continue
            share = residual[edge] / len(active)
            if share < best_share:
                best_share = share
                best_edge = edge
        if best_edge is None:
            break
        # Freeze every unfrozen flow on the bottleneck edge.
        for flow in users[best_edge]:
            if id(flow) not in unfrozen:
                continue
            flow.rate_bps = best_share
            unfrozen.discard(id(flow))
            for edge in flow.edges:
                residual[edge] = max(0.0, residual[edge] - best_share)


class FlowSimulator:
    """Event-driven flow-level simulator.

    Args:
        graph: Network snapshot graph; edges need ``capacity_bps``.
        route_fn: ``(graph, flow, active_flows) -> path or None``.  Called
            once per arriving flow; None rejects the flow (no route).
    """

    def __init__(self, graph: nx.Graph,
                 route_fn: Callable[[nx.Graph, FlowSpec, List[ActiveFlow]],
                                    Optional[List[str]]]):
        self.graph = graph
        self.route_fn = route_fn
        self._capacities: Dict[Tuple[str, str], float] = {
            self._key(u, v): float(data.get("capacity_bps", float("inf")))
            for u, v, data in graph.edges(data=True)
        }

    @staticmethod
    def _key(u: str, v: str) -> Tuple[str, str]:
        return (u, v) if u <= v else (v, u)

    def run(self, flows: Sequence[FlowSpec]) -> FlowSimResult:
        """Simulate the full workload to completion.

        Flows arrive at their ``start_s``; between consecutive events all
        active flows progress at their max-min fair rates.  The simulation
        runs until every admitted flow completes.
        """
        recorder = _obs.active()
        with recorder.span("simulation.flowsim.run", flows=len(flows)):
            result = self._simulate(flows)
        if recorder.enabled:
            recorder.count("flowsim.flows", len(result.completed),
                           label="completed")
            recorder.count("flowsim.flows", len(result.rejected),
                           label="rejected")
            recorder.gauge("flowsim.peak_concurrent",
                           result.peak_concurrent_flows)
            for flow in result.completed:
                recorder.observe("flowsim.completion_s",
                                 flow.completion_time_s)
        return result

    def _simulate(self, flows: Sequence[FlowSpec]) -> FlowSimResult:
        recorder = _obs.active()
        result = FlowSimResult()
        pending = sorted(flows, key=lambda f: f.start_s)
        active: List[ActiveFlow] = []
        now = 0.0
        index = 0

        def recompute():
            max_min_fair_rates(active, self._capacities)

        while index < len(pending) or active:
            next_arrival = (
                pending[index].start_s if index < len(pending) else float("inf")
            )
            # Earliest completion among active flows at current rates.
            next_completion = float("inf")
            completing: Optional[ActiveFlow] = None
            for flow in active:
                if flow.rate_bps <= 0.0:
                    continue
                eta = now + flow.remaining_bytes * 8.0 / flow.rate_bps
                if eta < next_completion:
                    next_completion = eta
                    completing = flow
            if active and completing is None and next_arrival == float("inf"):
                # Starved flows with no future arrivals: capacity vanished.
                for flow in active:
                    result.rejected.append(CompletedFlow(
                        spec=flow.spec, completed=False,
                        start_s=flow.admitted_at_s, finish_s=now,
                        mean_rate_bps=0.0, hop_count=len(flow.path) - 1,
                        path=tuple(flow.path),
                    ))
                active.clear()
                break

            event_time = min(next_arrival, next_completion)
            dt = event_time - now
            if dt > 0.0:
                for flow in active:
                    transferred = flow.rate_bps * dt / 8.0
                    flow.remaining_bytes = max(
                        0.0, flow.remaining_bytes - transferred
                    )
                now = event_time

            if next_completion <= next_arrival and completing is not None:
                active.remove(completing)
                duration = max(1e-9, now - completing.admitted_at_s)
                result.completed.append(CompletedFlow(
                    spec=completing.spec, completed=True,
                    start_s=completing.admitted_at_s, finish_s=now,
                    mean_rate_bps=completing.spec.size_bytes * 8.0 / duration,
                    hop_count=len(completing.path) - 1,
                    path=tuple(completing.path),
                ))
                recompute()
            else:
                spec = pending[index]
                index += 1
                path = self.route_fn(self.graph, spec, active)
                if path is None or len(path) < 2:
                    result.rejected.append(CompletedFlow(
                        spec=spec, completed=False, start_s=spec.start_s,
                        finish_s=spec.start_s, mean_rate_bps=0.0, hop_count=0,
                    ))
                    if recorder.enabled:
                        recorder.event("session.drop", spec.start_s,
                                       subject=spec.flow_id,
                                       user=spec.user_id, reason="no-route",
                                       qos=spec.qos_class)
                    continue
                edges = [
                    self._key(u, v) for u, v in zip(path[:-1], path[1:])
                ]
                missing = [e for e in edges if e not in self._capacities]
                if missing:
                    raise ValueError(
                        f"route_fn returned edges absent from graph: {missing}"
                    )
                active.append(ActiveFlow(
                    spec=spec, path=list(path), edges=edges,
                    remaining_bytes=spec.size_bytes, admitted_at_s=now,
                ))
                if recorder.enabled:
                    recorder.event("session.admit", now,
                                   subject=spec.flow_id, user=spec.user_id,
                                   hops=len(path) - 1, qos=spec.qos_class)
                result.peak_concurrent_flows = max(
                    result.peak_concurrent_flows, len(active)
                )
                recompute()
        return result
