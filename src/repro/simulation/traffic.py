"""Workload generation: user populations and traffic flows.

The paper motivates OpenSpace with users in "regions that are sparsely
populated, experience political instability, or are prone to natural
disasters" — populations here can be drawn uniformly over land-ish
latitudes, clustered around underserved regions, or placed explicitly.
Flows are Poisson arrivals with lognormal sizes (a standard heavy-tailed
traffic shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint


@dataclass(frozen=True)
class FlowSpec:
    """One traffic flow.

    Attributes:
        flow_id: Unique identifier.
        user_id: Originating user.
        start_s: Arrival time.
        size_bytes: Transfer size.
        qos_class: Service class name (``"best_effort"``, ``"standard"``,
            ``"premium"``).
    """

    flow_id: str
    user_id: str
    start_s: float
    size_bytes: float
    qos_class: str = "best_effort"

    @property
    def size_gb(self) -> float:
        return self.size_bytes / 1e9


#: Representative underserved regions the paper's introduction motivates
#: (remote communities, disaster-prone and politically unstable areas).
UNDERSERVED_REGIONS: List[Tuple[str, float, float]] = [
    ("rural-kenya", -0.5, 37.5),
    ("amazon-basin", -4.0, -63.0),
    ("sahel", 14.5, 3.0),
    ("himalaya-foothills", 28.0, 84.5),
    ("papua", -5.5, 141.0),
    ("arctic-canada", 66.0, -95.0),
    ("pacific-islands", -17.5, 178.0),
    ("afghan-highlands", 34.5, 67.0),
]


@dataclass
class UserPopulation:
    """A set of user terminals plus per-user demand weights."""

    users: List[UserTerminal] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.weights and len(self.weights) != len(self.users):
            raise ValueError(
                f"{len(self.weights)} weights for {len(self.users)} users"
            )
        for weight in self.weights:
            if weight < 0.0:
                raise ValueError(
                    f"demand weights must be >= 0, got {weight}"
                )
        if not self.weights:
            self.weights = [1.0] * len(self.users)

    def __len__(self) -> int:
        return len(self.users)

    def normalized_weights(self) -> np.ndarray:
        weights = np.array(self.weights, dtype=np.float64)
        # Re-check sign here: ``weights`` is a mutable list a caller can
        # rewrite after construction, and a negative entry could slip
        # through the ``total <= 0`` guard and become a negative
        # "probability".
        if weights.size and weights.min() < 0.0:
            raise ValueError(
                f"demand weights must be >= 0, got {weights.min()}"
            )
        total = weights.sum()
        if total <= 0.0:
            raise ValueError("population weights must sum to > 0")
        return weights / total


def uniform_land_users(count: int, rng: np.random.Generator,
                       home_providers: Sequence[str],
                       max_latitude_deg: float = 70.0,
                       min_elevation_deg: float = 10.0) -> UserPopulation:
    """Users spread uniformly over the sphere up to a latitude cap.

    Latitude is drawn area-uniform (``asin`` of a uniform variate) and
    clipped to the inhabited band; home providers round-robin across the
    supplied list so every operator has subscribers everywhere (the
    rampant-roaming regime the paper describes).
    """
    if count < 1:
        raise ValueError(f"need at least one user, got {count}")
    if not home_providers:
        raise ValueError("need at least one home provider")
    users = []
    for index in range(count):
        sin_lat = rng.uniform(
            -math.sin(math.radians(max_latitude_deg)),
            math.sin(math.radians(max_latitude_deg)),
        )
        lat = math.degrees(math.asin(sin_lat))
        lon = float(rng.uniform(-180.0, 180.0))
        users.append(UserTerminal(
            user_id=f"user-{index}",
            location=GeodeticPoint(lat, lon, 0.0),
            home_provider=home_providers[index % len(home_providers)],
            min_elevation_deg=min_elevation_deg,
        ))
    return UserPopulation(users=users)


def underserved_region_users(per_region: int, rng: np.random.Generator,
                             home_providers: Sequence[str],
                             spread_deg: float = 3.0) -> UserPopulation:
    """Users clustered around the motivating underserved regions."""
    if per_region < 1:
        raise ValueError(f"need at least one user per region, got {per_region}")
    users = []
    index = 0
    for region, lat, lon in UNDERSERVED_REGIONS:
        for _ in range(per_region):
            users.append(UserTerminal(
                user_id=f"user-{region}-{index}",
                location=GeodeticPoint(
                    max(-89.0, min(89.0, lat + float(rng.normal(0, spread_deg)))),
                    ((lon + float(rng.normal(0, spread_deg)) + 180.0) % 360.0)
                    - 180.0,
                ),
                home_provider=home_providers[index % len(home_providers)],
            ))
            index += 1
    return UserPopulation(users=users)


class PoissonFlowGenerator:
    """Poisson flow arrivals with lognormal sizes.

    Args:
        population: Users originating traffic (weight-proportional).
        arrival_rate_per_s: Aggregate flow arrival rate.
        mean_flow_mb: Mean flow size in megabytes.
        sigma: Lognormal shape (heavier tail for larger sigma).
        qos_mix: ``(class_name, probability)`` pairs; probabilities must
            sum to 1.
        rng: Seeded generator.
    """

    def __init__(self, population: UserPopulation, arrival_rate_per_s: float,
                 rng: np.random.Generator, mean_flow_mb: float = 20.0,
                 sigma: float = 1.2,
                 qos_mix: Sequence[Tuple[str, float]] = (
                     ("best_effort", 0.6), ("standard", 0.3), ("premium", 0.1),
                 )):
        if arrival_rate_per_s <= 0.0:
            raise ValueError(
                f"arrival rate must be positive, got {arrival_rate_per_s}"
            )
        total_p = sum(p for _, p in qos_mix)
        if abs(total_p - 1.0) > 1e-9:
            raise ValueError(f"QoS mix probabilities sum to {total_p}, not 1")
        self.population = population
        self.arrival_rate_per_s = arrival_rate_per_s
        self.mean_flow_mb = mean_flow_mb
        self.sigma = sigma
        self.qos_mix = list(qos_mix)
        self._rng = rng
        # Lognormal mu chosen so the mean is mean_flow_mb.
        self._mu = math.log(mean_flow_mb * 1e6) - sigma * sigma / 2.0

    def generate(self, duration_s: float) -> List[FlowSpec]:
        """All flows arriving within ``[0, duration_s)``, time-ordered."""
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        flows: List[FlowSpec] = []
        weights = self.population.normalized_weights()
        class_names = [name for name, _ in self.qos_mix]
        class_probs = [p for _, p in self.qos_mix]
        t = 0.0
        index = 0
        while True:
            t += float(self._rng.exponential(1.0 / self.arrival_rate_per_s))
            if t >= duration_s:
                break
            user = self.population.users[
                int(self._rng.choice(len(self.population), p=weights))
            ]
            size = float(self._rng.lognormal(self._mu, self.sigma))
            qos = str(self._rng.choice(class_names, p=class_probs))
            flows.append(FlowSpec(
                flow_id=f"flow-{index}",
                user_id=user.user_id,
                start_s=t,
                size_bytes=size,
                qos_class=qos,
            ))
            index += 1
        return flows
