"""Simulation substrate: discrete-event engine, workloads, metrics.

The engine is a binary-heap event scheduler; traffic generators produce
the user populations and flow workloads the paper's discussion calls for
("modelling a potential user base along with potential user traffic
patterns"); metric collectors aggregate latency/coverage/throughput
series for the experiment drivers.
"""

from repro.simulation.batched import (
    TransitionMasks,
    contact_mask,
    contact_spans,
    epoch_position_tensor,
    ground_eci_track,
    merge_trial_epochs,
    transition_masks,
)
from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.traffic import (
    FlowSpec,
    PoissonFlowGenerator,
    UserPopulation,
    uniform_land_users,
)
from repro.simulation.metrics import (
    LatencyCollector,
    SeriesCollector,
    SummaryStats,
    summarize,
)
from repro.simulation.scenario import Scenario, ScenarioResult
from repro.simulation.flowsim import (
    ActiveFlow,
    CompletedFlow,
    FlowSimResult,
    FlowSimulator,
    max_min_fair_rates,
)
from repro.simulation.sessionsim import (
    SessionSample,
    SessionSimulator,
    SessionTrace,
)
from repro.simulation.config import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "TransitionMasks",
    "contact_mask",
    "contact_spans",
    "epoch_position_tensor",
    "ground_eci_track",
    "merge_trial_epochs",
    "transition_masks",
    "Event",
    "SimulationEngine",
    "FlowSpec",
    "PoissonFlowGenerator",
    "UserPopulation",
    "uniform_land_users",
    "LatencyCollector",
    "SeriesCollector",
    "SummaryStats",
    "summarize",
    "Scenario",
    "ScenarioResult",
    "ActiveFlow",
    "CompletedFlow",
    "FlowSimResult",
    "FlowSimulator",
    "max_min_fair_rates",
    "SessionSample",
    "SessionSimulator",
    "SessionTrace",
    "load_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]
