"""A minimal discrete-event simulation engine.

A binary-heap scheduler with monotonic event ids for stable FIFO ordering
among simultaneous events.  Protocol modules schedule callbacks; the
engine owns the clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One scheduled event.

    Attributes:
        time_s: Firing time.
        sequence: Tie-break counter (schedule order among equal times).
        action: Zero-argument callable run at firing time.
        label: Diagnostic label.
    """

    time_s: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class SimulationEngine:
    """The event loop.

    Example::

        engine = SimulationEngine()
        engine.schedule(1.0, lambda: print("hello at t=1"))
        engine.run_until(10.0)
    """

    def __init__(self, start_s: float = 0.0):
        self._now = start_s
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._cancelled: set = set()
        self.processed_count = 0

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Events still queued (including cancelled-but-unpopped)."""
        return len(self._heap)

    def schedule(self, time_s: float, action: Callable[[], Any],
                 label: str = "") -> Event:
        """Schedule an event at an absolute time.

        Raises:
            ValueError: When scheduling into the past.
        """
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s}; clock already at {self._now}"
            )
        event = Event(time_s, next(self._sequence), action, label)
        heapq.heappush(self._heap, (time_s, event.sequence, event))
        return event

    def schedule_in(self, delay_s: float, action: Callable[[], Any],
                    label: str = "") -> Event:
        """Schedule an event ``delay_s`` after the current time."""
        if delay_s < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        return self.schedule(self._now + delay_s, action, label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(event.sequence)

    def step(self) -> Optional[Event]:
        """Run the next event; returns it, or None when the queue is empty."""
        while self._heap:
            time_s, sequence, event = heapq.heappop(self._heap)
            if sequence in self._cancelled:
                self._cancelled.discard(sequence)
                continue
            self._now = time_s
            event.action()
            self.processed_count += 1
            return event
        return None

    def run_until(self, end_s: float, max_events: int = 10_000_000) -> int:
        """Run events with ``time <= end_s``; returns events processed.

        The clock is advanced to ``end_s`` at the end even if the queue
        drains early, so periodic reschedulers observe consistent time.

        Raises:
            RuntimeError: When ``max_events`` fires (runaway guard).
        """
        processed = 0
        while self._heap:
            next_time = self._heap[0][0]
            if next_time > end_s:
                break
            if self.step() is not None:
                processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"run_until processed {processed} events without "
                    f"reaching t={end_s}; likely a runaway reschedule loop"
                )
        self._now = max(self._now, end_s)
        return processed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains; returns events processed."""
        processed = 0
        while self.step() is not None:
            processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"run processed {processed} events without draining; "
                    "likely a runaway reschedule loop"
                )
        return processed
