"""A minimal discrete-event simulation engine.

A binary-heap scheduler with monotonic event ids for stable FIFO ordering
among simultaneous events.  Protocol modules schedule callbacks; the
engine owns the clock.

Cancellation is lazy (the heap entry stays until popped), but the engine
tracks live sequences separately so :attr:`SimulationEngine.pending_count`
reports only events that will actually fire, and a compaction pass
rebuilds the heap when cancelled entries dominate it — cancelled work
cannot accumulate without bound across :meth:`SimulationEngine.run_until`
horizons.

Observability: when a :mod:`repro.obs` recorder is active the engine
counts processed events per label, samples queue depth, and — behind the
recorder's explicit ``time_events`` opt-in — times each event callback.
With the default no-op recorder the only per-event overhead is one
attribute check.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Set, Tuple

from repro import obs as _obs

#: Rebuild the heap when at least this many cancelled entries linger AND
#: they outnumber live ones (amortized O(1) per cancel).
_COMPACT_MIN_CANCELLED = 64


@dataclass(frozen=True)
class Event:
    """One scheduled event.

    Attributes:
        time_s: Firing time.
        sequence: Tie-break counter (schedule order among equal times).
        action: Zero-argument callable run at firing time.
        label: Diagnostic label.
    """

    time_s: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class SimulationEngine:
    """The event loop.

    Example::

        engine = SimulationEngine()
        engine.schedule(1.0, lambda: print("hello at t=1"))
        engine.run_until(10.0)
    """

    def __init__(self, start_s: float = 0.0):
        self._now = start_s
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._live: Set[int] = set()
        self._cancelled: Set[int] = set()
        self.processed_count = 0

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled) events still queued."""
        return len(self._live)

    @property
    def cancelled_pending_count(self) -> int:
        """Cancelled entries still occupying the heap (pre-compaction)."""
        return len(self._cancelled)

    def schedule(self, time_s: float, action: Callable[[], Any],
                 label: str = "") -> Event:
        """Schedule an event at an absolute time.

        Raises:
            ValueError: When scheduling into the past.
        """
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s}; clock already at {self._now}"
            )
        event = Event(time_s, next(self._sequence), action, label)
        heapq.heappush(self._heap, (time_s, event.sequence, event))
        self._live.add(event.sequence)
        return event

    def schedule_in(self, delay_s: float, action: Callable[[], Any],
                    label: str = "") -> Event:
        """Schedule an event ``delay_s`` after the current time."""
        if delay_s < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        return self.schedule(self._now + delay_s, action, label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal).

        Idempotent, and a no-op for events that already fired — only live
        sequences enter the cancelled set, so its size is always bounded
        by the heap's.
        """
        if event.sequence not in self._live:
            return
        self._live.discard(event.sequence)
        self._cancelled.add(event.sequence)
        if (len(self._cancelled) >= _COMPACT_MIN_CANCELLED
                and len(self._cancelled) > len(self._live)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify."""
        self._heap = [
            entry for entry in self._heap if entry[1] not in self._cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled.clear()

    def step(self) -> Optional[Event]:
        """Run the next event; returns it, or None when the queue is empty."""
        while self._heap:
            time_s, sequence, event = heapq.heappop(self._heap)
            if sequence in self._cancelled:
                self._cancelled.discard(sequence)
                continue
            self._live.discard(sequence)
            self._now = time_s
            recorder = _obs.active()
            if recorder.enabled:
                self._step_observed(recorder, event)
            else:
                event.action()
            self.processed_count += 1
            return event
        return None

    def _step_observed(self, recorder, event: Event) -> None:
        """Instrumented event dispatch (only on the enabled path)."""
        if recorder.config.time_events:
            start = time.perf_counter()
            event.action()
            recorder.observe("engine.event_duration_s",
                             time.perf_counter() - start,
                             label=event.label or "unlabeled")
        else:
            event.action()
        recorder.count("engine.events", label=event.label or "unlabeled")
        interval = recorder.config.queue_sample_interval
        if self.processed_count % interval == 0:
            depth = len(self._live)
            recorder.gauge("engine.queue_depth", depth)
            recorder.observe("engine.queue_depth", depth,
                             buckets=_obs.DEFAULT_SIZE_BUCKETS)

    def run_until(self, end_s: float, max_events: int = 10_000_000) -> int:
        """Run events with ``time <= end_s``; returns events processed.

        The clock is advanced to ``end_s`` at the end even if the queue
        drains early, so periodic reschedulers observe consistent time.

        Raises:
            RuntimeError: When ``max_events`` fires (runaway guard).
        """
        processed = 0
        with _obs.active().span("engine.run_until", end_s=end_s):
            while self._heap:
                # Purge cancelled heads so the horizon check sees the next
                # *live* event (a cancelled head otherwise either blocks
                # the break or lets step() run an event past end_s).
                while self._heap and self._heap[0][1] in self._cancelled:
                    _, sequence, _ = heapq.heappop(self._heap)
                    self._cancelled.discard(sequence)
                if not self._heap:
                    break
                next_time = self._heap[0][0]
                if next_time > end_s:
                    break
                if self.step() is not None:
                    processed += 1
                if processed >= max_events:
                    raise RuntimeError(
                        f"run_until processed {processed} events without "
                        f"reaching t={end_s}; likely a runaway reschedule "
                        f"loop"
                    )
            self._now = max(self._now, end_s)
        return processed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains; returns events processed."""
        processed = 0
        with _obs.active().span("engine.run"):
            while self.step() is not None:
                processed += 1
                if processed >= max_events:
                    raise RuntimeError(
                        f"run processed {processed} events without "
                        "draining; likely a runaway reschedule loop"
                    )
        return processed
