"""Seeded lossy control-channel model.

Control signaling (RADIUS forwarding, successor notifications,
contact-plan dissemination) rides the same ISLs and ground links the data
plane uses, so its delivery odds come from the same place: the per-edge
``capacity_bps`` attribute that the phy link budgets produced when the
snapshot was built, plus the injector-driven fault masks.  A hop on a
thin, barely-closing RF ISL loses control frames far more often than a
fat laser hop; a hop through a masked element loses everything.

Losses are drawn from a private seeded generator, so a run's delivery
pattern is a pure function of ``(seed, draw order)`` — two runs of the
same seeded scenario deliver and drop exactly the same messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import math

import numpy as np

from repro import obs as _obs

#: Capacity at which the capacity-derived hop loss falls to ``1/e`` of
#: ``loss_scale`` — roughly the boundary between "thin RF ISL" and
#: "comfortable link" in the reference fleet's budgets.
DEFAULT_CAPACITY_KNEE_BPS = 20e6


@dataclass(frozen=True)
class HopModel:
    """Loss and delay of one control-plane hop.

    Attributes:
        loss_probability: Chance one message transiting the hop is lost.
        delay_s: One-way latency contribution of the hop.
    """

    loss_probability: float
    delay_s: float


@dataclass(frozen=True)
class DeliveryAttempt:
    """Outcome of one request/response attempt over a path.

    Attributes:
        delivered: True when both directions survived.
        forward_delivered: Whether the request reached the far end.
        round_trip_s: Realized RTT when delivered (propagation + per-hop
            processing, both directions); meaningless otherwise.
    """

    delivered: bool
    forward_delivered: bool
    round_trip_s: float


class LossyControlChannel:
    """Derives per-hop control-message loss and delay from a snapshot.

    Args:
        loss_scale: Peak capacity-derived loss probability — a hop of
            vanishing capacity loses control frames with this probability;
            ``0.0`` restores perfect delivery (the baseline).
        base_loss: Floor loss probability applied to every hop (weather,
            pointing jitter) regardless of capacity.
        capacity_knee_bps: Capacity scale of the loss falloff; hops far
            above it are nearly lossless.
        per_hop_processing_s: Forwarding/queueing delay added per hop in
            each direction.
        seed: Seed for the private delivery-draw generator.
        network: Optional :class:`~repro.core.network.OpenSpaceNetwork`;
            when given, hops touching its *current* fault masks lose
            everything even if the graph being routed over predates the
            fault (stale contact plans meet live outages here).
    """

    def __init__(self, loss_scale: float = 0.0, base_loss: float = 0.0,
                 capacity_knee_bps: float = DEFAULT_CAPACITY_KNEE_BPS,
                 per_hop_processing_s: float = 0.0,
                 seed: int = 0,
                 network=None):
        if not 0.0 <= loss_scale <= 1.0:
            raise ValueError(f"loss_scale must be in [0, 1], got {loss_scale}")
        if not 0.0 <= base_loss <= 1.0:
            raise ValueError(f"base_loss must be in [0, 1], got {base_loss}")
        if capacity_knee_bps <= 0.0:
            raise ValueError(
                f"capacity_knee_bps must be positive, got {capacity_knee_bps}"
            )
        self.loss_scale = loss_scale
        self.base_loss = base_loss
        self.capacity_knee_bps = capacity_knee_bps
        self.per_hop_processing_s = per_hop_processing_s
        self.network = network
        self._rng = np.random.default_rng(seed)
        #: Bumped by the fault injector on every fault-state change; path
        #: models cached by consumers are stale once this moves.
        self.fault_epoch = 0
        self.messages_sent = 0
        self.messages_lost = 0

    # -- fault-mask integration -----------------------------------------

    def on_fault_state_changed(self) -> None:
        """Injector callback: the network's fault masks just changed."""
        self.fault_epoch += 1
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("reliability.channel.fault_epochs")

    def _hop_masked(self, node_a: str, node_b: str) -> bool:
        """Whether the current fault masks sever this hop."""
        if self.network is None:
            return False
        failed_nodes = (self.network.failed_satellites
                        | self.network.failed_stations)
        if node_a in failed_nodes or node_b in failed_nodes:
            return True
        return tuple(sorted((node_a, node_b))) in self.network.failed_links

    # -- models ----------------------------------------------------------

    def hop_model(self, graph, node_a: str, node_b: str) -> HopModel:
        """Loss/delay of one hop from the snapshot edge + fault masks."""
        if self._hop_masked(node_a, node_b):
            return HopModel(loss_probability=1.0, delay_s=float("inf"))
        if not graph.has_edge(node_a, node_b):
            return HopModel(loss_probability=1.0, delay_s=float("inf"))
        data = graph[node_a][node_b]
        capacity = float(data.get("capacity_bps", float("inf")))
        loss = self.base_loss
        if self.loss_scale > 0.0:
            if math.isinf(capacity):
                capacity_loss = 0.0
            else:
                capacity_loss = self.loss_scale * math.exp(
                    -capacity / self.capacity_knee_bps
                )
            loss = min(1.0, loss + capacity_loss)
        delay = (float(data.get("delay_s", 0.0))
                 + float(data.get("queue_delay_s", 0.0))
                 + self.per_hop_processing_s)
        return HopModel(loss_probability=loss, delay_s=delay)

    def path_model(self, graph, path: Sequence[str]) -> Tuple[float, float]:
        """Delivery probability and one-way delay of a multi-hop path.

        Args:
            graph: The snapshot graph the path was computed over.
            path: Node ids, source first.

        Returns:
            ``(delivery_probability, one_way_delay_s)``; a severed path
            yields ``(0.0, inf)``.
        """
        if len(path) < 2:
            return 1.0, 0.0
        probability = 1.0
        delay = 0.0
        for node_a, node_b in zip(path[:-1], path[1:]):
            hop = self.hop_model(graph, node_a, node_b)
            probability *= 1.0 - hop.loss_probability
            delay += hop.delay_s
            if probability == 0.0:
                return 0.0, float("inf")
        return probability, delay

    # -- delivery draws ---------------------------------------------------

    def _deliver(self, probability: float) -> bool:
        """One seeded delivery draw.

        Loss-free probabilities short-circuit without consuming a draw, so
        a zero-loss channel replays byte-identically to no channel at all.
        """
        self.messages_sent += 1
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            self.messages_lost += 1
            return False
        delivered = bool(self._rng.random() < probability)
        if not delivered:
            self.messages_lost += 1
        return delivered

    def attempt_round_trip(self, graph, path: Sequence[str],
                           server_processing_s: float = 0.0) -> DeliveryAttempt:
        """One request/response attempt over a path.

        The request and the response each independently survive every hop
        or die; the realized RTT is twice the one-way delay plus the far
        end's processing time.
        """
        probability, one_way_s = self.path_model(graph, path)
        forward = self._deliver(probability)
        reply = self._deliver(probability) if forward else False
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("reliability.channel.messages",
                           2 if forward else 1)
            if not forward or not reply:
                recorder.count("reliability.channel.losses")
        return DeliveryAttempt(
            delivered=forward and reply,
            forward_delivered=forward,
            round_trip_s=2.0 * one_way_s + server_processing_s,
        )

    def attempt_one_way(self, graph, path: Sequence[str]) -> DeliveryAttempt:
        """One unacknowledged (fire-and-forget) delivery over a path."""
        probability, one_way_s = self.path_model(graph, path)
        delivered = self._deliver(probability)
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("reliability.channel.messages")
            if not delivered:
                recorder.count("reliability.channel.losses")
        return DeliveryAttempt(
            delivered=delivered,
            forward_delivered=delivered,
            round_trip_s=one_way_s,
        )

    @property
    def loss_rate(self) -> float:
        """Observed fraction of sent control messages lost so far."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent


#: A channel that never loses anything — the perfect-delivery baseline.
def perfect_channel(network=None) -> LossyControlChannel:
    """A zero-loss channel (delivery draws short-circuit; no RNG use)."""
    return LossyControlChannel(loss_scale=0.0, base_loss=0.0, network=network)
