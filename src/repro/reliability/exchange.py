"""Reliable request/response exchanges over lossy control channels.

:class:`ReliableExchange` is the generic primitive every control protocol
in the reproduction shares: bounded retransmission with per-attempt
timeouts, exponential backoff with *deterministic* jitter (hash-derived,
never wall-clock or global-RNG), and a per-key circuit breaker that stops
hammering a flapping ISL or an unreachable auth anchor.

The accounting convention: an attempt whose message is **delivered**
completes in its realized round-trip time; an attempt whose message is
**lost** costs the full per-attempt timeout before the next send.  With a
zero-loss channel and retries disabled, one exchange therefore costs
exactly its nominal RTT — byte-identical to the perfect-delivery code
path it replaced.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro import obs as _obs


def deterministic_jitter(key: str, attempt: int) -> float:
    """A stable pseudo-random fraction in ``[0, 1)`` for backoff jitter.

    Derived from a hash of ``(key, attempt)`` so two runs of the same
    scenario back off identically — no global RNG, no wall clock.
    """
    digest = hashlib.sha256(f"{key}#{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission bounds and backoff shape for one exchange class.

    Attributes:
        max_attempts: Total sends allowed (1 = no retries).
        timeout_s: How long a lost attempt waits before the retransmit
            timer fires.
        backoff_base_s: Backoff before the second attempt.
        backoff_factor: Multiplier per further attempt (exponential).
        backoff_max_s: Backoff ceiling.
        jitter_fraction: Extra backoff of up to this fraction, drawn from
            :func:`deterministic_jitter` — decorrelates retry storms
            without sacrificing replayability.
    """

    max_attempts: int = 4
    timeout_s: float = 0.5
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s < 0.0:
            raise ValueError(f"timeout_s must be >= 0, got {self.timeout_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Backoff charged before retransmission number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        nominal = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        return nominal * (1.0 + self.jitter_fraction
                          * deterministic_jitter(key, attempt))


#: Retries disabled: a single attempt, no backoff — the baseline policy.
NO_RETRY = RetryPolicy(max_attempts=1, backoff_base_s=0.0,
                       jitter_fraction=0.0)


class BreakerState(enum.Enum):
    """Circuit-breaker lifecycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-link (or per-anchor) failure gate.

    Closed: traffic flows, consecutive failures are counted.  After
    ``failure_threshold`` consecutive failures the breaker **opens** and
    every exchange is refused on the spot (no attempts, no timeouts) until
    ``recovery_time_s`` of simulated time passes.  The first exchange
    after that runs **half-open**: success re-closes the breaker, failure
    re-opens it for another full recovery period.

    Args:
        key: Identity for telemetry (e.g. the link or anchor name).
        failure_threshold: Consecutive failed exchanges before opening.
        recovery_time_s: Open duration, simulated seconds.
    """

    def __init__(self, key: str, failure_threshold: int = 3,
                 recovery_time_s: float = 60.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time_s < 0.0:
            raise ValueError(
                f"recovery_time_s must be >= 0, got {recovery_time_s}"
            )
        self.key = key
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: Optional[float] = None
        self.open_count = 0
        self.rejected_count = 0

    def _transition(self, state: BreakerState, now_s: float) -> None:
        if state is self.state:
            return
        previous = self.state
        self.state = state
        recorder = _obs.active()
        if recorder.enabled:
            recorder.count("reliability.breaker.transitions",
                           label=state.value)
            recorder.event("breaker.transition", now_s, subject=self.key,
                           state=state.value, previous=previous.value,
                           failures=self.consecutive_failures)

    def allow(self, now_s: float) -> bool:
        """Whether an exchange may run right now (may move OPEN→HALF_OPEN)."""
        if self.state is BreakerState.OPEN:
            if (self.opened_at_s is not None
                    and now_s - self.opened_at_s >= self.recovery_time_s):
                self._transition(BreakerState.HALF_OPEN, now_s)
                return True
            self.rejected_count += 1
            recorder = _obs.active()
            if recorder.enabled:
                recorder.count("reliability.breaker.rejected")
            return False
        return True

    def record_success(self, now_s: float) -> None:
        self.consecutive_failures = 0
        self.opened_at_s = None
        self._transition(BreakerState.CLOSED, now_s)

    def record_failure(self, now_s: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # The trial failed: straight back to open, timer restarted.
            self.opened_at_s = now_s
            self.open_count += 1
            self._transition(BreakerState.OPEN, now_s)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.opened_at_s = now_s
            self.open_count += 1
            self._transition(BreakerState.OPEN, now_s)


class CircuitBreakerRegistry:
    """Lazily creates one breaker per key and mirrors state into obs."""

    def __init__(self, failure_threshold: int = 3,
                 recovery_time_s: float = 60.0):
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        found = self._breakers.get(key)
        if found is None:
            found = CircuitBreaker(
                key, failure_threshold=self.failure_threshold,
                recovery_time_s=self.recovery_time_s,
            )
            self._breakers[key] = found
        return found

    def states(self) -> Dict[str, BreakerState]:
        """Current state per key (sorted for deterministic iteration)."""
        return {key: self._breakers[key].state
                for key in sorted(self._breakers)}

    @property
    def open_keys(self) -> Tuple[str, ...]:
        return tuple(sorted(
            key for key, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
        ))

    def record_gauges(self) -> None:
        """Mirror open-breaker count into the active recorder."""
        recorder = _obs.active()
        if recorder.enabled:
            recorder.gauge("reliability.breaker.open",
                           len(self.open_keys))

    def __len__(self) -> int:
        return len(self._breakers)


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of one reliable exchange.

    Attributes:
        ok: True when some attempt's request and response both landed.
        attempts: Sends performed (0 when the breaker refused outright).
        elapsed_s: Total control-plane time: realized RTTs, lost-attempt
            timeouts, and inter-attempt backoff.
        reason: ``""`` on success; ``"circuit-open"``, ``"exhausted"``,
            or ``"unreachable"`` on failure.
        breaker_state: The key's breaker state after the exchange.
    """

    ok: bool
    attempts: int
    elapsed_s: float
    reason: str = ""
    breaker_state: BreakerState = BreakerState.CLOSED

    @property
    def retried(self) -> bool:
        return self.attempts > 1


#: An attempt callable: ``fn(attempt_index) -> (delivered, round_trip_s)``.
AttemptFn = Callable[[int], Tuple[bool, float]]


class ReliableExchange:
    """Runs request/response exchanges under a retry policy and breakers.

    Args:
        policy: Retransmission policy; :data:`NO_RETRY` disables retries.
        breakers: Shared breaker registry; ``None`` disables breaking
            (every exchange is always allowed).
        name: Telemetry label distinguishing exchange classes
            ("auth", "handover", "dissemination", ...).
    """

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 breakers: Optional[CircuitBreakerRegistry] = None,
                 name: str = "exchange"):
        self.policy = policy or RetryPolicy()
        self.breakers = breakers
        self.name = name
        self.success_count = 0
        self.failure_count = 0

    def run(self, key: str, attempt_fn: AttemptFn,
            now_s: float = 0.0) -> ExchangeResult:
        """Execute one exchange against ``key``.

        Args:
            key: Breaker key — the control-plane resource being exercised
                (a link, an auth anchor, a successor satellite).
            attempt_fn: Performs one send; returns ``(delivered, rtt_s)``.
                A delivered attempt completes in ``rtt_s``; a lost one
                costs the policy timeout.  An infinite ``rtt_s`` on a
                delivered attempt is treated as lost (the reply never
                lands inside any timer).
            now_s: Simulated time the exchange starts (drives breaker
                recovery timers).
        """
        recorder = _obs.active()
        policy = self.policy
        breaker = (self.breakers.breaker(key)
                   if self.breakers is not None else None)
        if breaker is not None and not breaker.allow(now_s):
            self.failure_count += 1
            if recorder.enabled:
                recorder.count("reliability.exchange.failure",
                               label="circuit-open")
            return ExchangeResult(
                ok=False, attempts=0, elapsed_s=0.0, reason="circuit-open",
                breaker_state=breaker.state,
            )

        elapsed = 0.0
        attempts = 0
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                elapsed += policy.backoff_s(attempt, key=key)
                if recorder.enabled:
                    recorder.count("reliability.exchange.retries",
                                   label=self.name)
                    recorder.event("retransmission", now_s + elapsed,
                                   subject=key, attempt=attempt,
                                   exchange=self.name)
            attempts += 1
            if recorder.enabled:
                recorder.count("reliability.exchange.attempts",
                               label=self.name)
            delivered, rtt_s = attempt_fn(attempt)
            if delivered and rtt_s != float("inf"):
                elapsed += rtt_s
                if breaker is not None:
                    breaker.record_success(now_s + elapsed)
                self.success_count += 1
                if recorder.enabled:
                    recorder.count("reliability.exchange.success",
                                   label=self.name)
                    recorder.observe("reliability.exchange.latency_s",
                                     elapsed, label=self.name)
                    if attempts > 1:
                        recorder.observe("reliability.retry_latency_s",
                                         elapsed, label=self.name)
                return ExchangeResult(
                    ok=True, attempts=attempts, elapsed_s=elapsed,
                    breaker_state=(breaker.state if breaker is not None
                                   else BreakerState.CLOSED),
                )
            elapsed += policy.timeout_s

        if breaker is not None:
            breaker.record_failure(now_s + elapsed)
        self.failure_count += 1
        if recorder.enabled:
            recorder.count("reliability.exchange.failure", label="exhausted")
            recorder.observe("reliability.retry_latency_s", elapsed,
                             label=self.name)
        return ExchangeResult(
            ok=False, attempts=attempts, elapsed_s=elapsed,
            reason="exhausted",
            breaker_state=(breaker.state if breaker is not None
                           else BreakerState.CLOSED),
        )
