"""repro.reliability — lossy control signaling, retries, degradation.

The control-plane reliability layer: the association/authentication and
handover story of the paper's Section 2 assumes control messages cross
ISLs that PR 2's fault injector makes flap.  This package supplies the
three pieces that let those protocols survive it:

* :mod:`repro.reliability.channel` — a seeded lossy control-channel
  model deriving per-hop loss and delay from the snapshot link budgets
  and the live fault masks;
* :mod:`repro.reliability.exchange` — the :class:`ReliableExchange`
  primitive (bounded retransmission, exponential backoff with
  deterministic jitter, per-link circuit breakers);
* :mod:`repro.reliability.policy` — graceful degradation: proactive
  routing falls back to on-demand discovery, handover re-selects on the
  masked schedule, and the degraded-mode counters every policy shares.

Everything is seed-deterministic: a zero-loss channel with retries
disabled reproduces the perfect-delivery baseline byte-for-byte.
"""

from repro.reliability.channel import (
    DEFAULT_CAPACITY_KNEE_BPS,
    DeliveryAttempt,
    HopModel,
    LossyControlChannel,
    perfect_channel,
)
from repro.reliability.exchange import (
    NO_RETRY,
    AttemptFn,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRegistry,
    ExchangeResult,
    ReliableExchange,
    RetryPolicy,
    deterministic_jitter,
)
from repro.reliability.policy import (
    DEGRADED_COUNTER,
    ResilientRouter,
    RouteResolution,
    note_degraded,
    reselect_timeline,
)

__all__ = [
    "DEFAULT_CAPACITY_KNEE_BPS", "DeliveryAttempt", "HopModel",
    "LossyControlChannel", "perfect_channel",
    "NO_RETRY", "AttemptFn", "BreakerState", "CircuitBreaker",
    "CircuitBreakerRegistry", "ExchangeResult", "ReliableExchange",
    "RetryPolicy", "deterministic_jitter",
    "DEGRADED_COUNTER", "ResilientRouter", "RouteResolution",
    "note_degraded", "reselect_timeline",
]
