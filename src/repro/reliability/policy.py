"""Graceful-degradation policies over the reliability primitives.

Three control protocols learn to limp instead of crash here:

* **Routing** — :class:`ResilientRouter` serves proactive precomputed
  routes while the contact plan is fresh, and falls back to the
  on-demand distributed scheme (:mod:`repro.routing.distributed`) for
  any satellite whose plan dissemination timed out or whose precomputed
  route was invalidated by faults.
* **Handover** — :func:`reselect_timeline` re-runs successor selection
  against the fault-masked contact schedule instead of letting a dead
  successor raise or strand the user.
* Association's fallback (alternate auth anchors, secondary beacon
  candidates) lives with the protocol itself in
  :class:`repro.core.association.ReliableAssociationProtocol`; it shares
  the degraded-mode counter defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.reliability.channel import LossyControlChannel
from repro.reliability.exchange import ExchangeResult, ReliableExchange
from repro.routing.distributed import OnDemandRouter
from repro.routing.metrics import RouteMetrics

#: Counter every degraded-mode activation increments, labeled by mode.
DEGRADED_COUNTER = "reliability.degraded"


def note_degraded(mode: str, amount: float = 1.0) -> None:
    """Record one degraded-mode activation in the active recorder."""
    recorder = _obs.active()
    if recorder.enabled:
        recorder.count(DEGRADED_COUNTER, amount, label=mode)


@dataclass(frozen=True)
class RouteResolution:
    """How a route request was ultimately served.

    Attributes:
        metrics: The route (None when both schemes failed).
        mode: ``"proactive"``, ``"on_demand_fallback"``, or
            ``"unreachable"``.
        extra_delay_s: Control-plane latency charged beyond a table
            lookup (the on-demand discovery delay when degraded).
    """

    metrics: Optional[RouteMetrics]
    mode: str
    extra_delay_s: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.mode == "on_demand_fallback"


class ResilientRouter:
    """Proactive routing with on-demand fallback and lossy dissemination.

    The proactive table is only as good as its delivery: each satellite
    must *receive* its slice of the contact plan over control links.
    :meth:`disseminate` pushes the plan from an anchor node through a
    :class:`ReliableExchange`; sources whose push failed (timeout,
    breaker open, no path) never got a table and route on demand until a
    later dissemination succeeds.

    Args:
        proactive: The precomputed router (table already built, or built
            later by the caller).
        fallback: On-demand router used when the table cannot answer;
            a default-configured one is created when omitted.
        exchange: Exchange driving dissemination attempts; ``None`` makes
            dissemination instantaneous and lossless (the baseline).
        channel: Lossy channel the dissemination messages traverse.
    """

    def __init__(self, proactive, fallback: Optional[OnDemandRouter] = None,
                 exchange: Optional[ReliableExchange] = None,
                 channel: Optional[LossyControlChannel] = None):
        self.proactive = proactive
        self.fallback = fallback or OnDemandRouter()
        self.exchange = exchange
        self.channel = channel
        #: Sources whose latest contact-plan push failed.
        self.undisseminated: set = set()
        self.fallback_count = 0

    # -- dissemination ---------------------------------------------------

    def disseminate(self, graph, anchor: str, sources: Sequence[str],
                    now_s: float = 0.0) -> Dict[str, ExchangeResult]:
        """Push the contact plan from ``anchor`` to each source node.

        With no exchange/channel configured every push trivially succeeds
        (perfect-delivery baseline).  Otherwise each push is one reliable
        exchange over the anchor→source shortest path; failures put the
        source into degraded on-demand mode.

        Returns:
            Per-source exchange results (an artificial failed result with
            reason ``"unreachable"`` when no path existed).
        """
        from repro.routing.csr import BACKEND_CSR, CsrAdjacency, resolve_backend
        from repro.routing.metrics import PROPAGATION_ONLY, shortest_path

        # One single-source Dijkstra from the anchor covers every push
        # under the CSR backend (dissemination is anchor-rooted).
        anchor_paths = None
        if (self.exchange is not None and self.channel is not None
                and resolve_backend(None) == BACKEND_CSR and anchor in graph):
            adjacency = CsrAdjacency.from_graph(graph,
                                                weight=PROPAGATION_ONLY)
            anchor_paths = adjacency.single_source(anchor)

        results: Dict[str, ExchangeResult] = {}
        for source in sources:
            if self.exchange is None or self.channel is None:
                self.undisseminated.discard(source)
                results[source] = ExchangeResult(ok=True, attempts=1,
                                                 elapsed_s=0.0)
                continue
            if anchor_paths is not None:
                path = anchor_paths.path(anchor, source)
            else:
                path = shortest_path(graph, anchor, source)
            if path is None:
                result = ExchangeResult(ok=False, attempts=0, elapsed_s=0.0,
                                        reason="unreachable")
            else:
                result = self.exchange.run(
                    f"plan:{anchor}->{source}",
                    lambda _attempt, p=path: self._push_attempt(graph, p),
                    now_s=now_s,
                )
            results[source] = result
            if result.ok:
                self.undisseminated.discard(source)
            else:
                self.undisseminated.add(source)
                note_degraded("plan_dissemination")
        return results

    def _push_attempt(self, graph, path) -> Tuple[bool, float]:
        attempt = self.channel.attempt_round_trip(graph, path)
        return attempt.delivered, attempt.round_trip_s

    # -- routing ---------------------------------------------------------

    def route(self, source: str, target: str, time_s: float,
              graph=None) -> RouteResolution:
        """Serve a route: proactive when possible, on-demand when not.

        Args:
            source: Source node id.
            target: Target node id.
            time_s: Lookup time (selects the proactive epoch).
            graph: Live snapshot graph for the fallback discovery; with
                no graph the fallback cannot run and a miss is terminal.
        """
        if source not in self.undisseminated:
            try:
                static = self.proactive.route(source, target, time_s)
            except LookupError:
                static = None
            if static is not None:
                return RouteResolution(metrics=static.metrics,
                                       mode="proactive")
        if graph is None:
            return RouteResolution(metrics=None, mode="unreachable")
        discovery = self.fallback.route(graph, source, target)
        if discovery.metrics is None:
            return RouteResolution(
                metrics=None, mode="unreachable",
                extra_delay_s=discovery.discovery_delay_s,
            )
        self.fallback_count += 1
        note_degraded("routing_fallback")
        return RouteResolution(
            metrics=discovery.metrics,
            mode="on_demand_fallback",
            extra_delay_s=discovery.discovery_delay_s,
        )


def reselect_timeline(simulator, windows, outages, scheme,
                      start_s: float, end_s: float):
    """Handover re-selection against the fault-masked schedule.

    Masks the planned contact schedule with the known outages and re-runs
    the handover simulation over the survivors.  A schedule whose every
    window was consumed by outages degrades to an all-gap timeline (the
    user simply waits) rather than raising.

    Args:
        simulator: A :class:`~repro.core.handover.HandoverSimulator`.
        windows: The originally planned contact windows.
        outages: ``(satellite_index, start_s, end_s)`` outage intervals.
        scheme: Handover scheme to charge.
        start_s: Period start.
        end_s: Period end.

    Returns:
        The re-selected :class:`~repro.core.handover.PassTimeline`.
    """
    return simulator.reselect(windows, outages, scheme, start_s, end_s)
