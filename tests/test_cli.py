"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestFigureCommands:
    def test_figure2a(self, capsys):
        assert main(["figure2a"]) == 0
        out = capsys.readouterr().out
        assert "66 satellites" in out
        assert "connected: True" in out

    def test_figure2b_quick(self, capsys):
        assert main(["figure2b", "--counts", "10", "40",
                     "--trials", "2", "--epochs", "4"]) == 0
        out = capsys.readouterr().out
        assert "reachability" in out
        assert "40" in out

    def test_figure2c_quick(self, capsys):
        assert main(["figure2c", "--counts", "4", "25",
                     "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "union" in out


class TestCatalog:
    def test_emits_parseable_tles(self, capsys):
        assert main(["catalog", "--kind", "star", "--satellites", "4",
                     "--planes", "2", "--prefix", "TEST"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 12  # 4 satellites x 3 lines
        from repro.orbits.tle import parse_tle
        record = parse_tle(lines[:3])
        assert record.name.startswith("TEST-")

    def test_iridium_catalog_size(self, capsys):
        assert main(["catalog"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 66 * 3


class TestLatency:
    def test_served_location(self, capsys):
        assert main(["latency", "--lat", "-1.29", "--lon", "36.82"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out

    def test_requires_coordinates(self):
        with pytest.raises(SystemExit):
            main(["latency", "--lat", "10.0"])


class TestAvailabilityCommand:
    def test_runs_and_reports_both_sweeps(self, capsys):
        assert main(["availability", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "availability vs fleet size" in out
        assert "walker-star" in out
        assert "resilience to failures" in out


class TestReportCommand:
    def test_writes_markdown_report(self, tmp_path, capsys):
        output = tmp_path / "RESULTS.md"
        assert main(["report", "--output", str(output), "--trials", "2"]) == 0
        content = output.read_text()
        assert "# RESULTS" in content
        assert "Figure 2(b)" in content
        assert "Key ablations" in content
        assert "resilience" in content
