"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestFigureCommands:
    def test_figure2a(self, capsys):
        assert main(["figure2a"]) == 0
        out = capsys.readouterr().out
        assert "66 satellites" in out
        assert "connected: True" in out

    def test_figure2b_quick(self, capsys):
        assert main(["figure2b", "--counts", "10", "40",
                     "--trials", "2", "--epochs", "4"]) == 0
        out = capsys.readouterr().out
        assert "reachability" in out
        assert "40" in out

    def test_figure2b_engine_flag_output_identical(self, capsys):
        pytest.importorskip("scipy")
        args = ["figure2b", "--counts", "10", "25", "--trials", "2",
                "--epochs", "3"]
        assert main(args + ["--engine", "batched"]) == 0
        batched = capsys.readouterr().out
        assert main(args + ["--engine", "scalar"]) == 0
        assert capsys.readouterr().out == batched
        assert main(args) == 0  # scalar is the default
        assert capsys.readouterr().out == batched

    def test_faults_sweep_engine_flag_output_identical(self, capsys):
        pytest.importorskip("scipy")
        args = ["faults", "sweep", "--mtbf-hours", "2", "--mttr", "600",
                "--horizon", "1800", "--epochs", "3", "--seed", "7"]
        assert main(args + ["--engine", "batched"]) == 0
        batched = capsys.readouterr().out
        assert main(args + ["--engine", "scalar"]) == 0
        assert capsys.readouterr().out == batched

    def test_figure2c_quick(self, capsys):
        assert main(["figure2c", "--counts", "4", "25",
                     "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "union" in out


class TestCatalog:
    def test_emits_parseable_tles(self, capsys):
        assert main(["catalog", "--kind", "star", "--satellites", "4",
                     "--planes", "2", "--prefix", "TEST"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 12  # 4 satellites x 3 lines
        from repro.orbits.tle import parse_tle
        record = parse_tle(lines[:3])
        assert record.name.startswith("TEST-")

    def test_iridium_catalog_size(self, capsys):
        assert main(["catalog"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 66 * 3


class TestLatency:
    def test_served_location(self, capsys):
        assert main(["latency", "--lat", "-1.29", "--lon", "36.82"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out


class TestDemand:
    def test_sweep_quick(self, capsys):
        assert main(["demand", "sweep", "--satellites", "24",
                     "--hours", "20", "--users", "20000",
                     "--bands", "8", "--equator-columns", "16"]) == 0
        out = capsys.readouterr().out
        assert "served" in out and "revenue_usd" in out
        rows = [line for line in out.strip().splitlines()
                if line.split() and line.split()[0] == "24"]
        assert len(rows) == 1
        assert "True" in rows[0]  # converged

    def test_sweep_rejects_bad_hour(self, capsys):
        assert main(["demand", "sweep", "--satellites", "24",
                     "--hours", "25"]) != 0


class TestObservability:
    def test_trace_covers_engine_routing_and_experiment(self, capsys,
                                                        tmp_path):
        from repro import obs
        from repro.obs.export import read_jsonl

        trace = tmp_path / "out.jsonl"
        metrics = tmp_path / "metrics.csv"
        assert main(["figure2b", "--counts", "10", "25", "--trials", "2",
                     "--epochs", "4", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        # The recorder must not leak past the command.
        assert obs.active() is obs.NULL_RECORDER
        records = read_jsonl(trace)
        assert records[0]["type"] == "manifest"
        assert records[0]["command"] == "figure2b"
        assert records[0]["seed"] == 42
        span_layers = {
            record["name"].split(".")[0]
            for record in records if record["type"] == "span"
        }
        assert {"engine", "routing", "experiment"} <= span_layers
        counters = {
            (record["name"], record["label"])
            for record in records if record["type"] == "counter"
        }
        assert ("engine.events", "figure2b.epoch") in counters
        assert metrics.read_text().startswith("type,name,label")

    def test_same_seed_runs_have_identical_metric_values(self, capsys,
                                                         tmp_path):
        from repro.obs.export import read_jsonl

        def capture(name):
            path = tmp_path / name
            assert main(["figure2b", "--counts", "16", "--trials", "2",
                         "--epochs", "3", "--trace", str(path)]) == 0
            capsys.readouterr()
            # The output path itself lands in the manifest config, so
            # drop config fields along with wall-clock timings.  Phase
            # rows export slowest-first, so their order is wall-clock
            # dependent too — compare records order-insensitively.
            nondeterministic = ("duration_s", "total_s", "max_s",
                                "config", "config_hash")
            return sorted(
                (
                    {k: v for k, v in record.items()
                     if k not in nondeterministic}
                    for record in read_jsonl(path)
                ),
                key=lambda record: sorted(
                    (k, str(v)) for k, v in record.items()
                ),
            )

        assert capture("a.jsonl") == capture("b.jsonl")

    def test_obs_summarize(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        assert main(["figure2a", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "top spans" in out
        assert "experiment.figure2a" in out
        assert "config_hash" in out

    def test_obs_summarize_missing_file(self, capsys, tmp_path):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace file" in capsys.readouterr().err

    def test_obs_summarize_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["obs", "summarize", str(bad)]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_unwritable_trace_path_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "no-such-dir" / "out.jsonl"
        assert main(["figure2a", "--trace", str(bad)]) == 1
        assert "cannot write telemetry" in capsys.readouterr().err

    def test_no_flags_means_null_recorder(self, capsys):
        from repro import obs

        assert main(["figure2a"]) == 0
        assert obs.active() is obs.NULL_RECORDER

    def test_requires_coordinates(self):
        with pytest.raises(SystemExit):
            main(["latency", "--lat", "10.0"])


class TestEventExportFlags:
    QUICK_SWEEP = ["faults", "sweep", "--mtbf-hours", "2",
                   "--horizon", "1200", "--epochs", "2", "--seed", "7"]

    def test_events_out_writes_timeline(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        events = tmp_path / "events.jsonl"
        assert main(self.QUICK_SWEEP + ["--events-out", str(events)]) == 0
        assert "event records)" in capsys.readouterr().out
        records = read_jsonl(events)
        assert records[0]["type"] == "manifest"
        assert records[0]["totals"]["events"] > 0
        kinds = {r["kind"] for r in records if r["type"] == "event"}
        assert "fault.inject" in kinds
        assert {r["type"] for r in records} >= {"health_epochs",
                                                "health_links"}

    def test_events_out_byte_identical_across_runs_and_jobs(self, capsys,
                                                            tmp_path):
        def capture(name, *extra):
            path = tmp_path / name
            assert main(self.QUICK_SWEEP + list(extra)
                        + ["--events-out", str(path)]) == 0
            capsys.readouterr()
            # The manifest embeds the output path and job count; every
            # other record must match byte for byte.
            lines = path.read_text().splitlines()
            assert '"type": "manifest"' in lines[0]
            return lines[1:]

        serial = capture("a.jsonl")
        assert capture("b.jsonl") == serial
        assert capture("p.jsonl", "--jobs", "2") == serial

    def test_prom_out_writes_exposition(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        assert main(["figure2b", "--counts", "10", "--trials", "2",
                     "--epochs", "3", "--prom-out", str(prom)]) == 0
        assert "exposition lines)" in capsys.readouterr().out
        text = prom.read_text()
        assert "# TYPE" in text
        assert "repro_" in text

    def test_flight_recorder_dump_on_crash(self, capsys, tmp_path,
                                           monkeypatch):
        import repro.cli as cli_module

        def exploding(_args):
            from repro import obs
            obs.event("fault.inject", 1.0, subject="f-0")
            obs.event("link.down", 2.0, subject="S1--S2")
            raise RuntimeError("mid-run crash")

        # build_parser resolves command handlers by name at call time, so
        # patching the module global reroutes the figure2a subcommand.
        monkeypatch.setitem(
            cli_module.__dict__, "_cmd_figure2a", exploding)
        with pytest.raises(RuntimeError, match="mid-run crash"):
            cli_module.main(["figure2a", "--flight-recorder", "8",
                             "--events-out", str(tmp_path / "e.jsonl")])
        err = capsys.readouterr().err
        assert "flight recorder: last 2 of 2 events" in err
        assert "fault.inject" in err
        assert "S1--S2" in err

    def test_bad_flight_recorder_size_is_clean_error(self, capsys):
        assert main(["figure2a", "--flight-recorder", "0"]) == 2
        assert "bad observability options" in capsys.readouterr().err


class TestObsReport:
    def test_report_from_events_file(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main(["faults", "sweep", "--mtbf-hours", "2",
                     "--horizon", "1200", "--epochs", "2", "--seed", "7",
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        out = tmp_path / "report.html"
        assert main(["obs", "report", str(events),
                     "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "Event timeline" in html
        assert "fault.inject" in html

    def test_report_missing_file(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace file" in capsys.readouterr().err

    def test_report_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["obs", "report", str(bad), "--out",
                     str(tmp_path / "r.html")]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_summarize_events_file(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main(["faults", "sweep", "--mtbf-hours", "2",
                     "--horizon", "1200", "--epochs", "2", "--seed", "7",
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(events)]) == 0
        out = capsys.readouterr().out
        assert "events (" in out
        assert "lowest-availability links" in out


class TestAvailabilityCommand:
    def test_runs_and_reports_both_sweeps(self, capsys):
        assert main(["availability", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "availability vs fleet size" in out
        assert "walker-star" in out
        assert "resilience to failures" in out


class TestFaultsCommands:
    QUICK_SWEEP = ["faults", "sweep", "--mtbf-hours", "2", "--mttr", "600",
                   "--horizon", "1200", "--epochs", "2", "--seed", "7"]

    def test_sweep_prints_recovery_table(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        out = capsys.readouterr().out
        assert "mtbf_h" in out
        assert "availability" in out

    def test_sweep_same_seed_byte_identical(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        first = capsys.readouterr().out
        assert main(self.QUICK_SWEEP) == 0
        assert capsys.readouterr().out == first

    def test_sweep_requires_faults_subcommand(self):
        with pytest.raises(SystemExit):
            main(["faults"])

    def test_inject_schedule_out_then_replay(self, tmp_path, capsys):
        out_file = tmp_path / "schedule.json"
        assert main(["faults", "inject", "--mtbf-hours", "1",
                     "--mttr", "300", "--horizon", "1200",
                     "--epochs", "2", "--seed", "7",
                     "--schedule-out", str(out_file)]) == 0
        inject_out = capsys.readouterr().out
        assert "faults:" in inject_out
        assert out_file.exists()
        assert main(["faults", "replay", str(out_file),
                     "--epochs", "2"]) == 0
        replay_out = capsys.readouterr().out
        assert "replayed" in replay_out
        # Same schedule, same network: identical recovery summary.
        summary = inject_out[inject_out.index("faults:"):]
        assert replay_out[replay_out.index("faults:"):] == summary

    def test_replay_missing_file(self, capsys, tmp_path):
        assert main(["faults", "replay",
                     str(tmp_path / "nope.json")]) == 1
        assert "no such schedule file" in capsys.readouterr().err

    def test_replay_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["faults", "replay", str(bad)]) == 1
        assert "malformed schedule" in capsys.readouterr().err

    def test_sweep_trace_records_fault_lifecycle(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        trace = tmp_path / "faults.jsonl"
        assert main(self.QUICK_SWEEP + ["--trace", str(trace)]) == 0
        records = read_jsonl(trace)
        span_names = {
            record["name"] for record in records
            if record["type"] == "span"
        }
        assert "faults.apply" in span_names
        assert "experiment.resilience_dynamic.sweep" in span_names


class TestReliabilityCommand:
    QUICK_SWEEP = ["reliability", "sweep", "--loss", "0.0", "0.2",
                   "--mtbf-hours", "0.0", "0.3", "--horizon", "600",
                   "--probes", "2", "--seed", "7"]

    def test_sweep_prints_reliability_table(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        out = capsys.readouterr().out
        assert "auth_ok" in out
        assert "inflation" in out
        assert "breaker_opens" in out

    def test_sweep_same_seed_byte_identical(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        first = capsys.readouterr().out
        assert main(self.QUICK_SWEEP) == 0
        assert capsys.readouterr().out == first

    def test_zero_loss_rows_show_no_inflation(self, capsys):
        assert main(["reliability", "sweep", "--loss", "0.0",
                     "--mtbf-hours", "0.0", "--horizon", "300",
                     "--probes", "1", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        row = out.strip().splitlines()[-1].split()
        assert row[2] == row[3]  # auth_ok == baseline_ok
        assert float(row[4]) == 1.0  # one attempt per association
        assert float(row[5]) == 1.0  # no latency inflation

    def test_requires_reliability_subcommand(self):
        with pytest.raises(SystemExit):
            main(["reliability"])

    def test_sweep_trace_records_exchange_metrics(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        trace = tmp_path / "reliability.jsonl"
        assert main(["reliability", "sweep", "--loss", "0.2",
                     "--mtbf-hours", "0.0", "--horizon", "300",
                     "--probes", "2", "--seed", "7",
                     "--trace", str(trace)]) == 0
        records = read_jsonl(trace)
        span_names = {
            record["name"] for record in records
            if record["type"] == "span"
        }
        assert "experiment.reliability.sweep" in span_names
        counter_names = {
            record["name"] for record in records
            if record["type"] == "counter"
        }
        assert "reliability.exchange.attempts" in counter_names
        assert "reliability.channel.messages" in counter_names


class TestDtnCommand:
    QUICK_SWEEP = ["dtn", "sweep", "--radius", "0", "1500",
                   "--buffer-kb", "64", "--horizon", "3600",
                   "--step", "600", "--loss", "0", "--sensors", "2",
                   "--satellites", "24", "--interval", "600",
                   "--bundle-bytes", "1024", "--seed", "17"]

    def test_sweep_prints_delivery_table(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "replans" in out and "drops" in out
        rows = out.strip().splitlines()[1:]
        assert len(rows) == 2

    def test_sweep_same_seed_byte_identical(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        first = capsys.readouterr().out
        assert main(self.QUICK_SWEEP) == 0
        assert capsys.readouterr().out == first

    def test_sweep_rejects_bad_options(self, capsys):
        assert main(["dtn", "sweep", "--radius", "-5"]) != 0
        assert "bad dtn sweep options" in capsys.readouterr().err

    def test_requires_dtn_subcommand(self):
        with pytest.raises(SystemExit):
            main(["dtn"])

    def test_sweep_trace_records_dtn_metrics(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        trace = tmp_path / "dtn.jsonl"
        events = tmp_path / "events.jsonl"
        assert main(self.QUICK_SWEEP + ["--trace", str(trace),
                                        "--events-out", str(events)]) == 0
        records = read_jsonl(trace)
        span_names = {
            record["name"] for record in records
            if record["type"] == "span"
        }
        assert "experiment.disrupted.sweep" in span_names
        counter_names = {
            record["name"] for record in records
            if record["type"] == "counter"
        }
        assert "dtn.bundles.created" in counter_names
        assert "dtn.custody.transfers" in counter_names
        event_kinds = {
            record["kind"] for record in read_jsonl(events)
            if record["type"] == "event"
        }
        assert "bundle.create" in event_kinds
        assert "bundle.deliver" in event_kinds
        assert "custody.accept" in event_kinds

    def test_sweep_events_identical_across_jobs(self, capsys, tmp_path):
        def capture(name, *extra):
            path = tmp_path / name
            assert main(self.QUICK_SWEEP + list(extra)
                        + ["--events-out", str(path)]) == 0
            capsys.readouterr()
            lines = path.read_text().splitlines()
            assert '"type": "manifest"' in lines[0]
            return lines[1:]

        serial = capture("a.jsonl")
        assert capture("b.jsonl") == serial
        assert capture("p.jsonl", "--jobs", "2") == serial


class TestScaleCommand:
    QUICK_SWEEP = ["scale", "sweep", "--satellites", "48",
                   "--epochs", "3"]

    def test_sweep_prints_scale_table(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        out = capsys.readouterr().out
        assert "churn_mean" in out and "digests" in out
        rows = out.strip().splitlines()[1:]
        assert len(rows) == 1
        assert rows[0].split()[-1] == "ok"

    def test_sweep_byte_identical_across_jobs_and_spatial(self, capsys):
        assert main(self.QUICK_SWEEP) == 0
        first = capsys.readouterr().out
        assert main(self.QUICK_SWEEP + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == first
        for mode in ("on", "off"):
            assert main(self.QUICK_SWEEP + ["--spatial", mode]) == 0
            assert capsys.readouterr().out == first

    def test_no_digest_check_prints_placeholder(self, capsys):
        assert main(self.QUICK_SWEEP + ["--no-digest-check"]) == 0
        rows = capsys.readouterr().out.strip().splitlines()[1:]
        assert rows[0].split()[-1] == "--"

    def test_sweep_rejects_bad_options(self, capsys):
        assert main(["scale", "sweep", "--satellites", "1"]) != 0
        assert "bad scale sweep options" in capsys.readouterr().err

    def test_requires_scale_subcommand(self):
        with pytest.raises(SystemExit):
            main(["scale"])

    def test_sweep_trace_records_epochs(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        trace = tmp_path / "scale.jsonl"
        assert main(self.QUICK_SWEEP + ["--trace", str(trace)]) == 0
        records = read_jsonl(trace)
        span_names = {
            record["name"] for record in records
            if record["type"] == "span"
        }
        assert "experiment.scale.sweep" in span_names
        counter_names = {
            record["name"] for record in records
            if record["type"] == "counter"
        }
        assert "experiment.scale.epochs" in counter_names


class TestReportCommand:
    def test_writes_markdown_report(self, tmp_path, capsys):
        output = tmp_path / "RESULTS.md"
        assert main(["report", "--output", str(output), "--trials", "2"]) == 0
        content = output.read_text()
        assert "# RESULTS" in content
        assert "Figure 2(b)" in content
        assert "Key ablations" in content
        assert "resilience" in content
