"""Edge-case tests for time-expanded store-and-forward routing."""

import networkx as nx
import pytest

from repro.routing.csr import HAVE_SCIPY
from repro.routing.timeexpanded import TimeExpandedRouter

BACKENDS = ["networkx"] + (["csr"] if HAVE_SCIPY else [])


class FakeSnapshot:
    def __init__(self, time_s, edges, nodes=("a", "b", "c")):
        self.time_s = time_s
        self.graph = nx.Graph()
        self.graph.add_nodes_from(nodes)
        for u, v, delay in edges:
            self.graph.add_edge(u, v, delay_s=delay)


@pytest.fixture
def intermittent():
    """a-b contact in epoch 0; b-c contact only in epoch 2."""
    return [
        FakeSnapshot(0.0, [("a", "b", 0.01)]),
        FakeSnapshot(60.0, []),
        FakeSnapshot(120.0, [("b", "c", 0.01)]),
    ]


class TestSnapshotIngestion:
    def test_generator_input_materialized(self, intermittent):
        router = TimeExpandedRouter(snap for snap in intermittent)
        assert len(router.snapshots) == 3
        assert router.earliest_arrival("a", "c", 0.0) is not None

    def test_empty_generator_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TimeExpandedRouter(snap for snap in ())

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TimeExpandedRouter([])


class TestSourceEqualsTarget:
    def test_zero_delay_route(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        route = router.earliest_arrival("b", "b", departure_s=70.0)
        assert route is not None
        assert route.arrival_s == route.departure_s == 70.0
        assert route.delivery_delay_s == 0.0
        assert route.hops == ()
        assert route.epochs_waited == 0

    def test_unknown_entity_still_none(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        assert router.earliest_arrival("ghost", "ghost", 0.0) is None


class TestHorizonClipping:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unreachable_within_horizon(self, backend):
        # c exists but never has a contact: no plan can reach it.
        snaps = [
            FakeSnapshot(0.0, [("a", "b", 0.01)]),
            FakeSnapshot(60.0, [("a", "b", 0.01)]),
        ]
        router = TimeExpandedRouter(snaps, backend=backend)
        assert router.earliest_arrival("a", "c", 0.0) is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_late_departure_clips_past_contacts(self, intermittent, backend):
        router = TimeExpandedRouter(intermittent, backend=backend)
        # The only a-b contact lives in epoch 0: departing in epoch 1 or
        # later, that contact is history and a can no longer reach c.
        assert router.earliest_arrival("a", "c", 60.0) is None
        assert router.earliest_arrival("a", "c", 59.999) is not None

    def test_contact_after_departure_epoch_still_usable(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        # b holds the bundle from epoch 1 until the epoch-2 contact.
        route = router.earliest_arrival("b", "c", 60.0)
        assert route is not None
        assert route.epochs_waited == 1
        assert route.arrival_s == pytest.approx(120.0 + 0.01)


class TestStorageAccounting:
    def test_epochs_waited_counts_storage_edges(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        route = router.earliest_arrival("a", "c", 0.0)
        assert route.epochs_waited == 2
        # Arrival = two 60 s storage waits + both contact delays.
        assert route.arrival_s == pytest.approx(120.0 + 0.02)
        assert route.delivery_delay_s == pytest.approx(120.02)
        assert [(u, v) for _t, u, v in route.hops] == [
            ("a", "b"), ("b", "c"),
        ]

    def test_hop_timestamps_reflect_waits(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        route = router.earliest_arrival("a", "c", 0.0)
        first_hop, second_hop = route.hops
        assert first_hop[0] == pytest.approx(0.01)
        assert second_hop[0] == pytest.approx(120.02)

    def test_no_storage_for_instant_path(self):
        snaps = [FakeSnapshot(0.0, [("a", "b", 0.01), ("b", "c", 0.01)])]
        router = TimeExpandedRouter(snaps)
        route = router.earliest_arrival("a", "c", 0.0)
        assert route.epochs_waited == 0
        assert route.delivery_delay_s == pytest.approx(0.02)


class TestDeliveryRatioDeterminism:
    def test_repeated_calls_identical(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        pairs = [("a", "c"), ("c", "a"), ("a", "b"), ("b", "c")]
        ratios = {router.delivery_ratio(pairs, 0.0) for _ in range(5)}
        assert len(ratios) == 1

    def test_backends_agree(self, intermittent):
        pairs = [("a", "c"), ("c", "a"), ("a", "b"), ("b", "c")]
        ratios = {
            TimeExpandedRouter(intermittent,
                               backend=backend).delivery_ratio(pairs, 0.0)
            for backend in BACKENDS
        }
        assert len(ratios) == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_routes_identical_across_instances(self, intermittent, backend):
        first = TimeExpandedRouter(intermittent, backend=backend)
        second = TimeExpandedRouter(intermittent, backend=backend)
        assert (first.earliest_arrival("a", "c", 0.0)
                == second.earliest_arrival("a", "c", 0.0))
