"""Tests for heterogeneity/QoS-aware routing."""

import networkx as nx
import pytest

from repro.isl.link import LinkTechnology
from repro.routing.qos import (
    BEST_EFFORT,
    PREMIUM,
    QosRequirement,
    QosRouter,
    STANDARD,
)


class FakeLink:
    def __init__(self, technology):
        self.technology = technology


@pytest.fixture
def hetero_graph():
    """Two parallel routes: thin cheap RF and fat expensive optical."""
    g = nx.Graph()
    g.add_edge("src", "rf1", delay_s=0.008, capacity_bps=2e6, owner="op-a",
               tariff_per_gb=0.02, link=FakeLink(LinkTechnology.RF_SBAND))
    g.add_edge("rf1", "dst", delay_s=0.008, capacity_bps=2e6, owner="op-a",
               tariff_per_gb=0.02, link=FakeLink(LinkTechnology.RF_SBAND))
    g.add_edge("src", "opt1", delay_s=0.012, capacity_bps=1e9, owner="op-b",
               tariff_per_gb=0.10, link=FakeLink(LinkTechnology.OPTICAL))
    g.add_edge("opt1", "dst", delay_s=0.012, capacity_bps=1e9, owner="op-b",
               tariff_per_gb=0.10, link=FakeLink(LinkTechnology.OPTICAL))
    return g


class TestRequirement:
    def test_bandwidth_filter(self):
        req = QosRequirement(min_bandwidth_bps=10e6)
        assert not req.admits_edge({"capacity_bps": 2e6})
        assert req.admits_edge({"capacity_bps": 100e6})

    def test_tariff_filter(self):
        req = QosRequirement(max_tariff_per_gb=0.05)
        assert not req.admits_edge({"tariff_per_gb": 0.10})
        assert req.admits_edge({"tariff_per_gb": 0.02})
        assert req.admits_edge({})  # no tariff attribute = free

    def test_forbidden_operator(self):
        req = QosRequirement(forbidden_operators=frozenset({"evil"}))
        assert not req.admits_edge({"owner": "evil"})
        assert req.admits_edge({"owner": "good"})

    def test_optical_only(self):
        req = QosRequirement(require_optical_only=True)
        assert req.admits_edge({"link": FakeLink(LinkTechnology.OPTICAL)})
        assert not req.admits_edge({"link": FakeLink(LinkTechnology.RF_UHF)})
        assert not req.admits_edge({})  # no link info = not provably optical


class TestRouter:
    def test_best_effort_takes_cheapest(self, hetero_graph):
        result = QosRouter().route(hetero_graph, "src", "dst", BEST_EFFORT)
        assert result.admitted
        assert result.metrics.path == ["src", "rf1", "dst"]

    def test_premium_forced_onto_optical(self, hetero_graph):
        result = QosRouter().route(hetero_graph, "src", "dst", PREMIUM)
        assert result.admitted
        assert result.metrics.path == ["src", "opt1", "dst"]
        assert result.metrics.bottleneck_capacity_bps == 1e9

    def test_impossible_bandwidth_rejected(self, hetero_graph):
        req = QosRequirement(min_bandwidth_bps=10e9)
        result = QosRouter().route(hetero_graph, "src", "dst", req)
        assert not result.admitted
        assert "no path satisfies" in result.rejection_reason

    def test_delay_bound_enforced_end_to_end(self, hetero_graph):
        req = QosRequirement(max_end_to_end_delay_s=0.001)
        result = QosRouter().route(hetero_graph, "src", "dst", req)
        assert not result.admitted
        assert "exceeds" in result.rejection_reason
        assert result.metrics is not None  # best path is still reported

    def test_unknown_endpoint(self, hetero_graph):
        result = QosRouter().route(hetero_graph, "src", "ghost", BEST_EFFORT)
        assert not result.admitted
        assert "endpoint" in result.rejection_reason

    def test_forbidden_operator_detours(self, hetero_graph):
        req = QosRequirement(forbidden_operators=frozenset({"op-a"}))
        result = QosRouter().route(hetero_graph, "src", "dst", req)
        assert result.admitted
        assert result.metrics.operators == ["op-b"]

    def test_optical_only_class(self, hetero_graph):
        req = QosRequirement(require_optical_only=True)
        result = QosRouter().route(hetero_graph, "src", "dst", req)
        assert result.admitted
        assert result.metrics.path == ["src", "opt1", "dst"]

    def test_admissible_service_classes(self, hetero_graph):
        router = QosRouter()
        classes = [BEST_EFFORT, STANDARD, PREMIUM,
                   QosRequirement(min_bandwidth_bps=10e9)]
        admitted = router.admissible_service_classes(
            hetero_graph, "src", "dst", classes
        )
        assert BEST_EFFORT in admitted
        assert PREMIUM in admitted
        assert len(admitted) == 3

    def test_tariff_aware_cost_model_avoids_expensive_route(self, hetero_graph):
        from repro.routing.metrics import EdgeCostModel
        router = QosRouter(EdgeCostModel(tariff_weight=1.0))
        result = router.route(hetero_graph, "src", "dst", BEST_EFFORT)
        assert result.metrics.path == ["src", "rf1", "dst"]
