"""Tests for proactive (precomputed) routing."""

import networkx as nx
import pytest

from repro.routing.proactive import ProactiveRouter, RoutingTable


class FakeSnapshot:
    """Minimal stand-in for a TopologySnapshot."""

    def __init__(self, time_s, edges):
        self.time_s = time_s
        self.graph = nx.Graph()
        for u, v, delay in edges:
            self.graph.add_edge(u, v, delay_s=delay, capacity_bps=10e6)


@pytest.fixture
def snapshots():
    """Three epochs; the direct a-c edge exists only in the second."""
    return [
        FakeSnapshot(0.0, [("a", "b", 0.01), ("b", "c", 0.01)]),
        FakeSnapshot(60.0, [("a", "b", 0.01), ("b", "c", 0.01),
                            ("a", "c", 0.005)]),
        FakeSnapshot(120.0, [("a", "b", 0.01), ("b", "c", 0.01)]),
    ]


class TestRoutingTable:
    def test_epochs_must_increase(self):
        table = RoutingTable()
        table.add_epoch(0.0, {})
        with pytest.raises(ValueError, match="strictly increasing"):
            table.add_epoch(0.0, {})

    def test_lookup_before_first_epoch_raises(self):
        table = RoutingTable()
        table.add_epoch(10.0, {})
        with pytest.raises(LookupError, match="precedes"):
            table.epoch_index_at(5.0)

    def test_empty_table_raises(self):
        with pytest.raises(LookupError, match="empty"):
            RoutingTable().epoch_index_at(0.0)


class TestPrecompute:
    def test_routes_follow_topology_changes(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        early = router.route("a", "c", 10.0)
        mid = router.route("a", "c", 70.0)
        late = router.route("a", "c", 130.0)
        assert early.path == ["a", "b", "c"]
        assert mid.path == ["a", "c"]
        assert late.path == ["a", "b", "c"]

    def test_epoch_validity_bounds(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        route = router.route("a", "c", 70.0)
        assert route.valid_from_s == 60.0
        assert route.valid_until_s == 120.0

    def test_all_pairs_by_default(self, snapshots):
        router = ProactiveRouter()
        table = router.precompute(snapshots[:1])
        assert table.lookup("a", "b", 0.0) is not None
        assert table.lookup("b", "a", 0.0) is not None
        assert table.lookup("c", "a", 0.0) is not None

    def test_selected_pairs_only(self, snapshots):
        router = ProactiveRouter()
        table = router.precompute(snapshots[:1], pairs=[("a", "c")])
        assert table.lookup("a", "c", 0.0) is not None
        assert table.lookup("c", "a", 0.0) is None
        assert table.lookup("a", "b", 0.0) is None

    def test_route_count(self, snapshots):
        router = ProactiveRouter()
        table = router.precompute(snapshots)
        # 3 nodes fully connected by paths: 6 directed pairs per epoch.
        assert table.route_count == 18

    def test_metrics_recorded(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        route = router.route("a", "c", 0.0)
        assert route.metrics.propagation_delay_s == pytest.approx(0.02)
        assert route.metrics.hop_count == 2

    def test_rejects_empty_snapshots(self):
        with pytest.raises(ValueError, match="at least one"):
            ProactiveRouter().precompute([])

    def test_rejects_unordered_snapshots(self, snapshots):
        with pytest.raises(ValueError, match="time-ordered"):
            ProactiveRouter().precompute([snapshots[1], snapshots[0]])

    def test_lookup_unknown_pair_returns_none(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        assert router.route("a", "ghost", 0.0) is None

    def test_horizon_extends_last_epoch(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots, horizon_s=1000.0)
        route = router.route("a", "c", 500.0)
        assert route is not None
        assert route.valid_until_s == 1000.0

    def test_disconnected_node_has_no_routes(self):
        snap = FakeSnapshot(0.0, [("a", "b", 0.01)])
        snap.graph.add_node("island")
        router = ProactiveRouter()
        table = router.precompute([snap])
        assert table.lookup("a", "island", 0.0) is None


class TestInvalidation:
    def test_routes_through_failed_node_dropped(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        dropped = router.invalidate_routes_through(["b"], from_time_s=0.0)
        assert dropped > 0
        # Every surviving a->c route avoids b.
        assert router.route("a", "c", 10.0) is None  # only a-b-c existed
        mid = router.route("a", "c", 70.0)
        assert mid is not None and "b" not in mid.path

    def test_earlier_epochs_untouched(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        router.invalidate_routes_through(["b"], from_time_s=60.0)
        # The epoch before the fault keeps its routes.
        assert router.route("a", "c", 10.0) is not None
        assert router.route("a", "c", 130.0) is None

    def test_unaffected_routes_survive(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        router.invalidate_routes_through(["b"], from_time_s=0.0)
        mid = router.route("a", "c", 70.0)
        assert mid.path == ["a", "c"]

    def test_empty_elements_noop(self, snapshots):
        router = ProactiveRouter()
        router.precompute(snapshots)
        before = router.table.route_count
        assert router.invalidate_routes_through([], from_time_s=0.0) == 0
        assert router.table.route_count == before

    def test_empty_table_noop(self):
        assert ProactiveRouter().invalidate_routes_through(["a"]) == 0

def _scan_invalidate(table, elements, from_time_s):
    """Reference implementation: linear scan over materialized routes.

    Mirrors the pre-index behavior so the inverted-index path can be
    checked for identical dropped counts and identical survivors.
    """
    import bisect

    affected = set(elements)
    if not affected or not table.epochs_s:
        return 0
    start = max(0, bisect.bisect_right(table.epochs_s, from_time_s) - 1)
    dropped = 0
    for index in range(start, len(table.routes)):
        epoch = table.routes[index]
        doomed = [
            key for key, route in list(epoch.items())
            if affected.intersection(route.path)
        ]
        for key in doomed:
            del epoch[key]
        dropped += len(doomed)
    return dropped


def _table_as_dicts(router, times, nodes):
    """Materialize every (src, dst) route path for comparison."""
    shape = {}
    for time_s in times:
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                route = router.route(src, dst, time_s)
                shape[(time_s, src, dst)] = (
                    None if route is None
                    else (tuple(route.path), route.metrics.total_delay_s)
                )
    return shape


class TestBackendEquivalence:
    """CSR and networkx epochs answer identically."""

    def test_tables_match_across_backends(self, snapshots):
        pytest.importorskip("scipy")
        csr_router = ProactiveRouter(backend="csr")
        nx_router = ProactiveRouter(backend="networkx")
        csr_router.precompute(snapshots)
        nx_router.precompute(snapshots)
        assert csr_router.table.route_count == nx_router.table.route_count
        times, nodes = (10.0, 70.0, 130.0), ("a", "b", "c")
        assert (_table_as_dicts(csr_router, times, nodes)
                == _table_as_dicts(nx_router, times, nodes))

    def test_routes_from_matches_across_backends(self, snapshots):
        pytest.importorskip("scipy")
        csr_router = ProactiveRouter(backend="csr")
        nx_router = ProactiveRouter(backend="networkx")
        csr_router.precompute(snapshots)
        nx_router.precompute(snapshots)
        for time_s in (0.0, 70.0):
            for source in ("a", "b", "c", "ghost"):
                csr_slice = csr_router.routes_from(source, time_s)
                nx_slice = nx_router.routes_from(source, time_s)
                assert set(csr_slice) == set(nx_slice)
                for target, route in csr_slice.items():
                    assert route.path == nx_slice[target].path

    def test_selected_pairs_csr(self, snapshots):
        pytest.importorskip("scipy")
        router = ProactiveRouter(backend="csr")
        table = router.precompute(snapshots[:1], pairs=[("a", "c")])
        assert table.lookup("a", "c", 0.0) is not None
        assert table.lookup("c", "a", 0.0) is None
        assert table.lookup("a", "b", 0.0) is None
        assert table.route_count == 1


class TestInvalidationIndexMatchesScan:
    """The inverted-index invalidation equals the scan implementation."""

    @pytest.mark.parametrize("elements,from_time_s", [
        (["b"], 0.0),
        (["b"], 60.0),
        (["a"], 0.0),
        (["a", "c"], 0.0),
        (["ghost"], 0.0),
    ])
    def test_dropped_count_and_survivors_match(self, snapshots, elements,
                                               from_time_s):
        indexed = ProactiveRouter(backend="networkx")
        indexed.precompute(snapshots)
        reference = ProactiveRouter(backend="networkx")
        reference.precompute(snapshots)

        dropped_indexed = indexed.invalidate_routes_through(
            elements, from_time_s=from_time_s)
        dropped_scan = _scan_invalidate(reference.table, elements,
                                        from_time_s)
        assert dropped_indexed == dropped_scan
        times, nodes = (10.0, 70.0, 130.0), ("a", "b", "c")
        assert (_table_as_dicts(indexed, times, nodes)
                == _table_as_dicts(reference, times, nodes))

    def test_csr_epoch_invalidation_matches_scan(self, snapshots):
        pytest.importorskip("scipy")
        lazy = ProactiveRouter(backend="csr")
        lazy.precompute(snapshots)
        reference = ProactiveRouter(backend="networkx")
        reference.precompute(snapshots)

        dropped_lazy = lazy.invalidate_routes_through(["b"], from_time_s=0.0)
        dropped_scan = _scan_invalidate(reference.table, ["b"], 0.0)
        assert dropped_lazy == dropped_scan
        assert lazy.table.route_count == reference.table.route_count
        times, nodes = (10.0, 70.0, 130.0), ("a", "b", "c")
        assert (_table_as_dicts(lazy, times, nodes)
                == _table_as_dicts(reference, times, nodes))

    def test_repeated_invalidation_is_idempotent(self, snapshots):
        pytest.importorskip("scipy")
        router = ProactiveRouter(backend="csr")
        router.precompute(snapshots)
        first = router.invalidate_routes_through(["b"], from_time_s=0.0)
        assert first > 0
        assert router.invalidate_routes_through(["b"], from_time_s=0.0) == 0


class TestLazyMaterialization:
    def test_lookup_materializes_once(self, snapshots):
        pytest.importorskip("scipy")
        router = ProactiveRouter(backend="csr")
        router.precompute(snapshots)
        epoch = router.table.routes[0]
        assert not epoch._cache  # nothing materialized yet
        route = router.route("a", "c", 10.0)
        assert route is not None
        assert router.route("a", "c", 10.0) is route  # cached object

    def test_route_count_without_materialization(self, snapshots):
        pytest.importorskip("scipy")
        router = ProactiveRouter(backend="csr")
        table = router.precompute(snapshots)
        assert table.route_count == 18
        assert not any(epoch._cache for epoch in table.routes)


@pytest.fixture
def chain_snapshots():
    """Two epochs of a static a-b-c-d chain."""
    edges = [("a", "b", 0.01), ("b", "c", 0.01), ("c", "d", 0.01)]
    return [FakeSnapshot(0.0, edges), FakeSnapshot(60.0, edges)]


class TestEdgeInvalidation:
    @pytest.mark.parametrize("backend", ["networkx", "csr"])
    def test_only_routes_riding_the_edge_drop(self, chain_snapshots,
                                              backend):
        if backend == "csr":
            pytest.importorskip("scipy")
        router = ProactiveRouter(backend=backend)
        router.precompute(chain_snapshots)
        # Cutting b-c severs every route crossing the middle of the
        # chain (4 ordered pairs x 2 epochs) but leaves a<->b and c<->d.
        dropped = router.invalidate_routes_through_edges([("c", "b")])
        assert dropped == 16
        assert router.route("a", "b", 10.0) is not None
        assert router.route("d", "c", 10.0) is not None
        assert router.route("a", "c", 10.0) is None
        assert router.route("a", "d", 70.0) is None

    @pytest.mark.parametrize("backend", ["networkx", "csr"])
    def test_visiting_both_endpoints_without_edge_survives(self, backend):
        if backend == "csr":
            pytest.importorskip("scipy")
        # The d->e shortest path is d-a-b-c-e: it visits BOTH endpoints
        # of the expensive direct (a, c) edge, but never hops it (a and
        # c are not consecutive). Endpoint-intersection candidates must
        # be path-checked, not dropped wholesale.
        snaps = [FakeSnapshot(0.0, [
            ("d", "a", 0.01), ("a", "b", 0.01), ("b", "c", 0.01),
            ("c", "e", 0.01), ("a", "c", 1.0),
        ])]
        router = ProactiveRouter(backend=backend)
        router.precompute(snaps)
        assert router.route("d", "e", 0.0).path == ["d", "a", "b", "c", "e"]
        dropped = router.invalidate_routes_through_edges([("a", "c")])
        assert dropped == 0  # no shortest path actually rides a-c
        assert router.route("d", "e", 0.0) is not None
        assert router.route("a", "c", 0.0) is not None

    def test_from_time_scopes_to_later_epochs(self, chain_snapshots):
        router = ProactiveRouter(backend="networkx")
        router.precompute(chain_snapshots)
        dropped = router.invalidate_routes_through_edges(
            [("b", "c")], from_time_s=60.0
        )
        assert dropped == 8  # second epoch only
        assert router.route("a", "d", 10.0) is not None
        assert router.route("a", "d", 70.0) is None

    def test_self_pairs_and_empty_input_are_noops(self, chain_snapshots):
        router = ProactiveRouter(backend="networkx")
        router.precompute(chain_snapshots)
        assert router.invalidate_routes_through_edges([]) == 0
        assert router.invalidate_routes_through_edges([("a", "a")]) == 0
        assert router.invalidate_routes_through_edges(
            [("nope", "missing")]
        ) == 0
        assert ProactiveRouter().invalidate_routes_through_edges(
            [("a", "b")]
        ) == 0

    @pytest.mark.parametrize("backend", ["networkx", "csr"])
    def test_edge_order_within_pair_is_ignored(self, chain_snapshots,
                                               backend):
        if backend == "csr":
            pytest.importorskip("scipy")
        forward = ProactiveRouter(backend=backend)
        forward.precompute(chain_snapshots)
        reverse = ProactiveRouter(backend=backend)
        reverse.precompute(chain_snapshots)
        assert forward.invalidate_routes_through_edges([("b", "c")]) == \
            reverse.invalidate_routes_through_edges([("c", "b")])
