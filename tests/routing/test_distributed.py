"""Tests for the on-demand routing baseline."""

import networkx as nx
import pytest

from repro.routing.distributed import OnDemandRouter


@pytest.fixture
def line_graph():
    g = nx.Graph()
    for i in range(4):
        g.add_edge(f"n{i}", f"n{i+1}", delay_s=0.010, capacity_bps=10e6)
    return g


class TestDiscovery:
    def test_finds_path(self, line_graph):
        result = OnDemandRouter().route(line_graph, "n0", "n4")
        assert result.metrics is not None
        assert result.metrics.path == ["n0", "n1", "n2", "n3", "n4"]
        assert not result.from_cache

    def test_discovery_delay_includes_rrep(self, line_graph):
        router = OnDemandRouter(per_hop_processing_s=0.002)
        result = router.route(line_graph, "n0", "n4")
        # RREQ: 4 hops of (10 ms + 2 ms); RREP: 40 ms + 4*2 ms.
        assert result.discovery_delay_s == pytest.approx(0.096, abs=1e-9)

    def test_control_messages_counted(self, line_graph):
        result = OnDemandRouter().route(line_graph, "n0", "n4")
        assert result.control_messages > 0

    def test_unreachable(self, line_graph):
        line_graph.add_node("island")
        result = OnDemandRouter().route(line_graph, "n0", "island")
        assert result.metrics is None

    def test_unknown_node(self, line_graph):
        result = OnDemandRouter().route(line_graph, "n0", "ghost")
        assert result.metrics is None
        assert result.control_messages == 0


class TestCache:
    def test_second_query_cached_and_free(self, line_graph):
        router = OnDemandRouter()
        router.route(line_graph, "n0", "n4")
        second = router.route(line_graph, "n0", "n4")
        assert second.from_cache
        assert second.discovery_delay_s == 0.0
        assert second.control_messages == 0

    def test_broken_link_forces_rediscovery(self, line_graph):
        router = OnDemandRouter()
        router.route(line_graph, "n0", "n4")
        line_graph.remove_edge("n2", "n3")
        line_graph.add_edge("n2", "alt", delay_s=0.01, capacity_bps=1e6)
        line_graph.add_edge("alt", "n4", delay_s=0.01, capacity_bps=1e6)
        result = router.route(line_graph, "n0", "n4")
        assert not result.from_cache
        assert "alt" in result.metrics.path

    def test_invalidate(self, line_graph):
        router = OnDemandRouter()
        router.route(line_graph, "n0", "n4")
        router.invalidate("n0", "n4")
        assert router.cache_size == 0
        result = router.route(line_graph, "n0", "n4")
        assert not result.from_cache

    def test_failed_discovery_clears_stale_cache(self, line_graph):
        router = OnDemandRouter()
        router.route(line_graph, "n0", "n4")
        line_graph.remove_edge("n3", "n4")
        result = router.route(line_graph, "n0", "n4")
        assert result.metrics is None
        assert router.cache_size == 0


class TestFloodShape:
    def test_flood_prefers_fast_path(self):
        g = nx.Graph()
        g.add_edge("s", "m1", delay_s=0.002, capacity_bps=1e6)
        g.add_edge("m1", "t", delay_s=0.002, capacity_bps=1e6)
        g.add_edge("s", "m2", delay_s=0.050, capacity_bps=1e9)
        g.add_edge("m2", "t", delay_s=0.050, capacity_bps=1e9)
        result = OnDemandRouter().route(g, "s", "t")
        # The RREQ through m1 arrives first, so that path is discovered.
        assert result.metrics.path == ["s", "m1", "t"]

    def test_messages_scale_with_degree(self):
        star = nx.star_graph(10)
        g = nx.relabel_nodes(star, {i: f"n{i}" for i in star.nodes})
        for u, v in g.edges:
            g[u][v]["delay_s"] = 0.01
        dense = OnDemandRouter().route(g, "n1", "n2")
        line = nx.Graph()
        line.add_edge("n1", "n0", delay_s=0.01)
        line.add_edge("n0", "n2", delay_s=0.01)
        sparse = OnDemandRouter().route(line, "n1", "n2")
        assert dense.control_messages > sparse.control_messages
