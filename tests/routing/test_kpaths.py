"""Tests for k-shortest-path enumeration."""

import networkx as nx
import pytest

from repro.routing.kpaths import k_shortest_paths
from repro.routing.metrics import EdgeCostModel


@pytest.fixture
def diamond():
    g = nx.Graph()
    g.add_edge("s", "a", delay_s=0.01)
    g.add_edge("a", "t", delay_s=0.01)
    g.add_edge("s", "b", delay_s=0.02)
    g.add_edge("b", "t", delay_s=0.02)
    g.add_edge("s", "t", delay_s=0.10)
    return g


class TestKShortest:
    def test_paths_ordered_by_cost(self, diamond):
        paths = k_shortest_paths(diamond, "s", "t", 3)
        assert paths[0] == ["s", "a", "t"]
        assert paths[1] == ["s", "b", "t"]
        assert paths[2] == ["s", "t"]

    def test_k_limits_output(self, diamond):
        assert len(k_shortest_paths(diamond, "s", "t", 2)) == 2

    def test_fewer_paths_than_k(self, diamond):
        assert len(k_shortest_paths(diamond, "s", "t", 10)) == 3

    def test_unreachable_empty(self, diamond):
        diamond.add_node("island")
        assert k_shortest_paths(diamond, "s", "island", 3) == []

    def test_unknown_node_empty(self, diamond):
        assert k_shortest_paths(diamond, "s", "ghost", 3) == []

    def test_rejects_bad_k(self, diamond):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond, "s", "t", 0)

    def test_custom_cost_model_changes_order(self, diamond):
        diamond["s"]["a"]["tariff_per_gb"] = 100.0
        model = EdgeCostModel(tariff_weight=1.0)
        paths = k_shortest_paths(diamond, "s", "t", 3, model)
        assert paths[0] == ["s", "b", "t"]

    def test_paths_are_simple(self, diamond):
        for path in k_shortest_paths(diamond, "s", "t", 3):
            assert len(path) == len(set(path))
