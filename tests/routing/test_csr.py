"""Tests for the compiled-sparse (CSR) routing backend.

Covers the ISSUE-5 edge cases — disconnected components, single-node and
empty graphs, non-string node ids, fault-masked exclusion — plus backend
registry semantics, in-place weight refresh, and networkx equality on
distances and path costs.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.routing import csr
from repro.routing.csr import (
    BACKEND_CSR,
    BACKEND_NETWORKX,
    CsrAdjacency,
    delay_weight,
    shortest_path_csr,
)
from repro.routing.metrics import EdgeCostModel, shortest_path

pytestmark = pytest.mark.skipif(not csr.HAVE_SCIPY,
                                reason="scipy unavailable")


def line_graph():
    graph = nx.Graph()
    graph.add_edge("a", "b", delay_s=0.01)
    graph.add_edge("b", "c", delay_s=0.02)
    graph.add_edge("a", "c", delay_s=0.05)
    return graph


class TestBackendRegistry:
    def test_available_and_default(self):
        assert csr.available_backends() == (BACKEND_CSR, BACKEND_NETWORKX)
        assert csr.default_backend() in csr.available_backends()

    def test_resolve_none_is_default(self):
        assert csr.resolve_backend(None) == csr.default_backend()

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown routing backend"):
            csr.resolve_backend("quantum")

    def test_set_default_roundtrip(self):
        original = csr.default_backend()
        try:
            csr.set_default_backend(BACKEND_NETWORKX)
            assert csr.default_backend() == BACKEND_NETWORKX
            assert csr.resolve_backend(None) == BACKEND_NETWORKX
        finally:
            csr.set_default_backend(original)

    def test_explicit_csr_without_scipy_raises(self, monkeypatch):
        monkeypatch.setattr(csr, "HAVE_SCIPY", False)
        with pytest.raises(RuntimeError, match="requires scipy"):
            csr.resolve_backend(BACKEND_CSR)


class TestCsrAdjacencyBuild:
    def test_empty_graph(self):
        adjacency = CsrAdjacency.from_graph(nx.Graph(), weight=delay_weight)
        assert adjacency.node_count == 0
        assert adjacency.entry_count == 0

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node("only")
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.shortest_paths(["only"])
        assert paths.path("only", "only") == ["only"]
        assert paths.distance("only", "only") == 0.0
        assert paths.reachable_count("only") == 0

    def test_non_string_node_ids(self):
        graph = nx.Graph()
        graph.add_edge(1, (2, "b"), delay_s=0.5)
        graph.add_edge((2, "b"), 3, delay_s=0.25)
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.single_source(1)
        assert paths.path(1, 3) == [1, (2, "b"), 3]
        assert paths.distance(1, 3) == 0.75

    def test_excluded_nodes_absent_from_index(self):
        graph = line_graph()
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight,
                                            exclude={"b"})
        assert "b" not in adjacency
        assert adjacency.node_count == 2
        # The only a-c connection not through b is the direct edge.
        paths = adjacency.single_source("a")
        assert paths.path("a", "c") == ["a", "c"]
        assert paths.distance("a", "c") == 0.05

    def test_zero_weight_edges_survive(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", delay_s=0.0)
        graph.add_edge("b", "c", delay_s=0.0)
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.single_source("a")
        assert paths.path("a", "c") == ["a", "b", "c"]
        assert paths.distance("a", "c") == 0.0

    def test_weight_callable_none_drops_edge(self):
        graph = line_graph()

        def no_direct(u, v, data):
            if {u, v} == {"a", "c"}:
                return None
            return data["delay_s"]

        adjacency = CsrAdjacency.from_graph(graph, weight=no_direct)
        paths = adjacency.single_source("a")
        assert paths.path("a", "c") == ["a", "b", "c"]

    def test_directed_graph(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", delay_s=1.0)
        graph.add_edge("b", "c", delay_s=1.0)
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        forward = adjacency.single_source("a")
        backward = adjacency.single_source("c")
        assert forward.path("a", "c") == ["a", "b", "c"]
        assert backward.path("c", "a") is None

    def test_deterministic_build(self):
        graph = line_graph()
        one = CsrAdjacency.from_graph(graph, weight=delay_weight)
        two = CsrAdjacency.from_graph(graph, weight=delay_weight)
        assert np.array_equal(one.indptr, two.indptr)
        assert np.array_equal(one.indices, two.indices)
        assert np.array_equal(one.data, two.data)


class TestDisconnected:
    def test_island_matches_networkx_no_path(self):
        graph = line_graph()
        graph.add_node("island")
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.single_source("a")
        assert paths.path("a", "island") is None
        assert math.isinf(paths.distance("a", "island"))
        with pytest.raises(nx.NetworkXNoPath):
            nx.dijkstra_path(graph, "a", "island", weight="delay_s")
        # Both backends of the shared helper agree: None, no exception.
        assert shortest_path(graph, "a", "island", backend="csr") is None
        assert shortest_path(graph, "a", "island", backend="networkx") is None

    def test_two_components(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", delay_s=1.0)
        graph.add_edge("x", "y", delay_s=1.0)
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.shortest_paths(["a", "x"])
        assert paths.path("a", "y") is None
        assert paths.path("x", "y") == ["x", "y"]
        assert paths.reachable_targets("a") == ["b"]

    def test_unknown_endpoints(self):
        graph = line_graph()
        assert shortest_path_csr(graph, "a", "ghost") is None
        assert shortest_path_csr(graph, "ghost", "a") is None


class TestRefreshWeights:
    def test_in_place_refresh_changes_routes(self):
        graph = line_graph()
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        assert adjacency.single_source("a").path("a", "c") == ["a", "b", "c"]
        graph["a"]["b"]["delay_s"] = 1.0
        changed = adjacency.refresh_weights(delay_weight)
        assert changed == 2  # both stored directions of the a-b edge
        paths = adjacency.single_source("a")
        assert paths.path("a", "c") == ["a", "c"]
        assert paths.distance("a", "c") == 0.05

    def test_refresh_noop_returns_zero(self):
        graph = line_graph()
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        assert adjacency.refresh_weights(delay_weight) == 0

    def test_refresh_inadmissible_becomes_unreachable(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", delay_s=1.0, capacity_bps=1e6)

        def admissible(_u, _v, data):
            if data.get("capacity_bps", 0.0) <= 0.0:
                return None
            return data["delay_s"]

        adjacency = CsrAdjacency.from_graph(graph, weight=admissible)
        assert adjacency.single_source("a").path("a", "b") == ["a", "b"]
        graph["a"]["b"]["capacity_bps"] = 0.0
        adjacency.refresh_weights(admissible)
        assert adjacency.single_source("a").path("a", "b") is None


class TestNetworkxEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graph_distances_bit_equal(self, seed):
        rng = np.random.default_rng(seed)
        graph = nx.gnp_random_graph(24, 0.2, seed=seed)
        for _u, _v, data in graph.edges(data=True):
            data["delay_s"] = float(rng.uniform(0.001, 0.1))
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.shortest_paths(list(graph.nodes))
        for source in graph.nodes:
            nx_dist, _nx_paths = nx.single_source_dijkstra(
                graph, source, weight="delay_s"
            )
            for target in graph.nodes:
                expected = nx_dist.get(target, float("inf"))
                assert paths.distance(source, target) == expected

    @pytest.mark.parametrize("seed", [5, 6])
    def test_random_graph_path_costs_equal(self, seed):
        rng = np.random.default_rng(seed)
        graph = nx.gnp_random_graph(18, 0.25, seed=seed)
        for _u, _v, data in graph.edges(data=True):
            data["delay_s"] = float(rng.uniform(0.001, 0.1))

        def path_cost(path):
            return sum(graph[u][v]["delay_s"]
                       for u, v in zip(path[:-1], path[1:]))

        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        paths = adjacency.shortest_paths(list(graph.nodes))
        for source in graph.nodes:
            for target in graph.nodes:
                if source == target:
                    continue
                csr_path = paths.path(source, target)
                try:
                    nx_path = nx.dijkstra_path(graph, source, target,
                                               weight="delay_s")
                except nx.NetworkXNoPath:
                    assert csr_path is None
                    continue
                assert csr_path is not None
                # Equal-cost paths may differ; their costs may not.
                assert path_cost(csr_path) == pytest.approx(
                    path_cost(nx_path), abs=0.0, rel=1e-12)

    def test_cost_model_weights(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", delay_s=0.01, queue_delay_s=0.5,
                       tariff_per_gb=2.0, capacity_bps=1e9)
        graph.add_edge("b", "c", delay_s=0.01, capacity_bps=1e9)
        graph.add_edge("a", "c", delay_s=0.018, capacity_bps=1e9)
        model = EdgeCostModel(queue_weight=1.0, tariff_weight=0.002)
        assert (shortest_path(graph, "a", "c", model, backend="csr")
                == shortest_path(graph, "a", "c", model, backend="networkx"))

    def test_multi_source_matches_single_source(self):
        graph = line_graph()
        adjacency = CsrAdjacency.from_graph(graph, weight=delay_weight)
        multi = adjacency.shortest_paths(["a", "b"])
        for source in ("a", "b"):
            single = adjacency.single_source(source)
            for target in graph.nodes:
                assert (multi.distance(source, target)
                        == single.distance(source, target))
                assert (multi.path(source, target)
                        == single.path(source, target))

    def test_single_source_memoized(self):
        adjacency = CsrAdjacency.from_graph(line_graph(),
                                            weight=delay_weight)
        assert adjacency.single_source("a") is adjacency.single_source("a")
