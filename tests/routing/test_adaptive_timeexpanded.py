"""Tests for load-adaptive routing and time-expanded store-and-forward."""

import networkx as nx
import pytest

from repro.routing.adaptive import (
    LoadAdaptiveRouter,
    StaticNearestRouter,
    gateway_load_profile,
)
from repro.routing.timeexpanded import TimeExpandedRouter
from repro.simulation.flowsim import FlowSimulator
from repro.simulation.traffic import FlowSpec


@pytest.fixture
def two_gateway_graph():
    """Near-thin gateway g1 vs far-fat gateway g2."""
    g = nx.Graph()
    g.add_node("u", kind="user")
    g.add_node("s", kind="satellite")
    g.add_node("g1", kind="ground_station")
    g.add_node("g2", kind="ground_station")
    g.add_edge("u", "s", delay_s=0.003, capacity_bps=1e9)
    g.add_edge("s", "g1", delay_s=0.003, capacity_bps=20e6)
    g.add_edge("s", "g2", delay_s=0.020, capacity_bps=1e9)
    return g


class TestStaticNearestRouter:
    def test_always_nearest(self, two_gateway_graph):
        router = StaticNearestRouter()
        flow = FlowSpec("f1", "u", 0.0, 1e6)
        path = router(two_gateway_graph, flow, [])
        assert path == ["u", "s", "g1"]

    def test_unknown_user(self, two_gateway_graph):
        flow = FlowSpec("f1", "ghost", 0.0, 1e6)
        assert StaticNearestRouter()(two_gateway_graph, flow, []) is None

    def test_no_gateways(self):
        g = nx.Graph()
        g.add_node("u", kind="user")
        flow = FlowSpec("f1", "u", 0.0, 1e6)
        assert StaticNearestRouter()(g, flow, []) is None


class TestLoadAdaptiveRouter:
    def test_idle_network_takes_nearest(self, two_gateway_graph):
        router = LoadAdaptiveRouter()
        flow = FlowSpec("f1", "u", 0.0, 1e6)
        path = router(two_gateway_graph, flow, [])
        assert path == ["u", "s", "g1"]
        assert router.diversions == 0

    def test_diverts_under_load(self, two_gateway_graph):
        """The paper's Q2 behaviour: re-route to a farther idle gateway."""
        router = LoadAdaptiveRouter(assumed_flow_rate_bps=10e6)
        sim = FlowSimulator(two_gateway_graph, router)
        flows = [FlowSpec(f"f{i}", "u", i * 0.01, 40e6) for i in range(12)]
        result = sim.run(flows)
        profile = gateway_load_profile(result.completed, two_gateway_graph)
        assert profile.get("g2", 0) > 0, "no flow diverted to the idle gateway"
        assert router.diversions > 0

    def test_adaptive_beats_static_under_congestion(self, two_gateway_graph):
        flows = [FlowSpec(f"f{i}", "u", i * 0.01, 40e6) for i in range(12)]
        static = FlowSimulator(
            two_gateway_graph, StaticNearestRouter()
        ).run(flows)
        adaptive = FlowSimulator(
            two_gateway_graph, LoadAdaptiveRouter()
        ).run(flows)
        assert (adaptive.mean_completion_time_s()
                < static.mean_completion_time_s())

    def test_unknown_user_returns_none(self, two_gateway_graph):
        flow = FlowSpec("f1", "ghost", 0.0, 1e6)
        assert LoadAdaptiveRouter()(two_gateway_graph, flow, []) is None


class FakeSnapshot:
    def __init__(self, time_s, edges):
        self.time_s = time_s
        self.graph = nx.Graph()
        self.graph.add_nodes_from(["a", "b", "c"])
        for u, v, delay in edges:
            self.graph.add_edge(u, v, delay_s=delay)


class TestTimeExpandedRouter:
    @pytest.fixture
    def intermittent(self):
        """a-b contact in epoch 0; b-c contact only in epoch 2."""
        return [
            FakeSnapshot(0.0, [("a", "b", 0.01)]),
            FakeSnapshot(60.0, []),
            FakeSnapshot(120.0, [("b", "c", 0.01)]),
        ]

    def test_store_and_forward_delivery(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        route = router.earliest_arrival("a", "c", departure_s=0.0)
        assert route is not None
        # Bundle hops a->b at epoch 0, waits 2 epochs, hops b->c.
        assert route.epochs_waited == 2
        assert route.arrival_s == pytest.approx(120.0 + 0.02)
        hop_pairs = [(u, v) for _t, u, v in route.hops]
        assert hop_pairs == [("a", "b"), ("b", "c")]

    def test_instantaneous_path_when_available(self):
        snaps = [FakeSnapshot(0.0, [("a", "b", 0.01), ("b", "c", 0.01)])]
        router = TimeExpandedRouter(snaps)
        route = router.earliest_arrival("a", "c", 0.0)
        assert route.epochs_waited == 0
        assert route.delivery_delay_s == pytest.approx(0.02)

    def test_undeliverable_within_horizon(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        # c never hears from anyone before epoch 2; departing from c,
        # nothing reaches a... actually c-b at epoch 2 then b cannot reach
        # a (a-b contact was epoch 0 only).
        assert router.earliest_arrival("c", "a", 0.0) is None

    def test_departure_in_later_epoch(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        # Departing after the a-b contact epoch has passed: undeliverable.
        assert router.earliest_arrival("a", "c", 125.0) is None

    def test_departure_before_plan_rejected(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        with pytest.raises(ValueError, match="precedes"):
            router.earliest_arrival("a", "c", -5.0)

    def test_unknown_entities(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        assert router.earliest_arrival("ghost", "c", 0.0) is None
        assert router.earliest_arrival("a", "ghost", 0.0) is None

    def test_delivery_ratio(self, intermittent):
        router = TimeExpandedRouter(intermittent)
        ratio = router.delivery_ratio(
            [("a", "c"), ("c", "a"), ("a", "b")], 0.0
        )
        assert ratio == pytest.approx(2 / 3)

    def test_unordered_snapshots_rejected(self, intermittent):
        with pytest.raises(ValueError, match="time-ordered"):
            TimeExpandedRouter([intermittent[2], intermittent[0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TimeExpandedRouter([])
