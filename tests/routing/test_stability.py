"""Tests for route-churn analysis."""

import networkx as nx
import pytest

from repro.routing.stability import StabilityReport, route_churn


class FakeSnapshot:
    def __init__(self, time_s, edges):
        self.time_s = time_s
        self.graph = nx.Graph()
        self.graph.add_nodes_from(["a", "b", "c", "d"])
        for u, v, delay in edges:
            self.graph.add_edge(u, v, delay_s=delay)


BASE = [("a", "b", 0.01), ("b", "d", 0.01), ("a", "c", 0.02),
        ("c", "d", 0.02)]


class TestRouteChurn:
    def test_stable_topology_zero_churn(self):
        snaps = [FakeSnapshot(t, BASE) for t in (0.0, 60.0, 120.0)]
        report = route_churn(snaps, [("a", "d")])
        assert report.mean_churn == 0.0
        assert all(e.pairs_lost == 0 for e in report.epochs)
        assert report.epoch_length_s == 60.0

    def test_path_change_detected(self):
        snaps = [
            FakeSnapshot(0.0, BASE),
            # b goes away: route must detour through c.
            FakeSnapshot(60.0, [("a", "c", 0.02), ("c", "d", 0.02)]),
        ]
        report = route_churn(snaps, [("a", "d")])
        assert report.epochs[0].pairs_changed == 1
        assert report.epochs[0].churn_fraction == 1.0
        assert report.epochs[0].mean_latency_delta_ms == pytest.approx(20.0)

    def test_lost_route_counted_separately(self):
        snaps = [
            FakeSnapshot(0.0, BASE),
            FakeSnapshot(60.0, []),  # everything breaks
        ]
        report = route_churn(snaps, [("a", "d")])
        assert report.epochs[0].pairs_lost == 1
        assert report.epochs[0].pairs_evaluated == 0
        assert report.epochs[0].churn_fraction == 0.0

    def test_unroutable_origin_ignored(self):
        snaps = [
            FakeSnapshot(0.0, []),
            FakeSnapshot(60.0, BASE),
        ]
        report = route_churn(snaps, [("a", "d")])
        # Nothing to churn: the pair had no route in epoch 0.
        assert report.epochs[0].pairs_evaluated == 0
        assert report.epochs[0].pairs_lost == 0

    def test_validation(self):
        snaps = [FakeSnapshot(0.0, BASE)]
        with pytest.raises(ValueError, match="two snapshots"):
            route_churn(snaps, [("a", "d")])
        with pytest.raises(ValueError, match="pair"):
            route_churn([FakeSnapshot(0.0, BASE),
                         FakeSnapshot(60.0, BASE)], [])

    def test_report_aggregates(self):
        report = StabilityReport(epoch_length_s=60.0)
        assert report.mean_churn == 0.0
        assert report.worst_churn == 0.0
        assert report.refresh_budget_per_orbit() == pytest.approx(
            6027.0 / 60.0
        )

    def test_real_constellation_churn_grows_with_epoch_length(self, iridium):
        from repro.isl.topology import IslNode, IslTopologyBuilder
        from repro.phy.rf import standard_sband_isl_terminal
        ids = [f"s{i}" for i in range(30)]
        nodes = [
            IslNode(sat_id, [standard_sband_isl_terminal()], max_degree=3)
            for sat_id in ids
        ]
        builder = IslTopologyBuilder(nodes)
        subset = iridium.subset(30)

        def snaps(step):
            return [
                builder.snapshot(t, dict(zip(ids, subset.positions_at(t))))
                for t in (0.0, step, 2 * step)
            ]

        pairs = [("s0", "s15"), ("s3", "s20"), ("s7", "s25")]
        fine = route_churn(snaps(30.0), pairs)
        coarse = route_churn(snaps(600.0), pairs)
        assert coarse.mean_churn >= fine.mean_churn
