"""Tests for edge cost models and route metrics."""

import networkx as nx
import pytest

from repro.routing.metrics import (
    EdgeCostModel,
    PROPAGATION_ONLY,
    path_metrics,
    shortest_path,
)


@pytest.fixture
def toy_graph():
    """A 4-node graph with a fast-direct and a cheap-detour path."""
    g = nx.Graph()
    g.add_edge("a", "b", delay_s=0.010, capacity_bps=100e6, owner="op1")
    g.add_edge("b", "d", delay_s=0.010, capacity_bps=100e6, owner="op1")
    g.add_edge("a", "c", delay_s=0.005, capacity_bps=1e6, owner="op2",
               tariff_per_gb=10.0, queue_delay_s=0.050)
    g.add_edge("c", "d", delay_s=0.005, capacity_bps=1e6, owner="op2")
    return g


class TestEdgeCostModel:
    def test_propagation_only_uses_delay(self):
        data = {"delay_s": 0.02, "queue_delay_s": 5.0, "tariff_per_gb": 9.0}
        assert PROPAGATION_ONLY.edge_cost(data) == pytest.approx(0.02 + 5.0)

    def test_queue_weight(self):
        model = EdgeCostModel(queue_weight=2.0)
        assert model.edge_cost({"delay_s": 0.01, "queue_delay_s": 0.1}) == (
            pytest.approx(0.21)
        )

    def test_tariff_weight(self):
        model = EdgeCostModel(tariff_weight=0.01)
        assert model.edge_cost({"delay_s": 0.0, "tariff_per_gb": 5.0}) == (
            pytest.approx(0.05)
        )

    def test_bottleneck_penalty(self):
        model = EdgeCostModel(min_capacity_bps=10e6, bottleneck_penalty_s=1.0)
        assert model.edge_cost({"delay_s": 0.0, "capacity_bps": 1e6}) == 1.0
        assert model.edge_cost({"delay_s": 0.0, "capacity_bps": 50e6}) == 0.0

    def test_missing_attributes_default_sanely(self):
        assert EdgeCostModel().edge_cost({}) == 0.0


class TestPathMetrics:
    def test_aggregates_along_path(self, toy_graph):
        metrics = path_metrics(toy_graph, ["a", "c", "d"])
        assert metrics.propagation_delay_s == pytest.approx(0.010)
        assert metrics.queue_delay_s == pytest.approx(0.050)
        assert metrics.total_tariff_per_gb == pytest.approx(10.0)
        assert metrics.bottleneck_capacity_bps == 1e6
        assert metrics.hop_count == 2
        assert metrics.total_delay_ms == pytest.approx(60.0)

    def test_operators_deduplicated_in_order(self, toy_graph):
        metrics = path_metrics(toy_graph, ["a", "c", "d"])
        assert metrics.operators == ["op2"]
        cross = path_metrics(toy_graph, ["a", "b", "d"])
        assert cross.operators == ["op1"]

    def test_rejects_short_path(self, toy_graph):
        with pytest.raises(ValueError, match="at least two"):
            path_metrics(toy_graph, ["a"])

    def test_rejects_missing_edge(self, toy_graph):
        with pytest.raises(ValueError, match="not present"):
            path_metrics(toy_graph, ["a", "d"])


class TestShortestPath:
    def test_picks_lowest_total_cost(self, toy_graph):
        # Under propagation+queue cost, the b-route (20 ms) beats the
        # c-route (10 ms prop + 50 ms queue).
        path = shortest_path(toy_graph, "a", "d")
        assert path == ["a", "b", "d"]

    def test_pure_delay_model_prefers_detour(self, toy_graph):
        model = EdgeCostModel(queue_weight=0.0)
        path = shortest_path(toy_graph, "a", "d", model)
        assert path == ["a", "c", "d"]

    def test_unreachable_returns_none(self, toy_graph):
        toy_graph.add_node("island")
        assert shortest_path(toy_graph, "a", "island") is None

    def test_unknown_node_returns_none(self, toy_graph):
        assert shortest_path(toy_graph, "a", "ghost") is None
