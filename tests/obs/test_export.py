"""Tests for JSONL/CSV export, the run manifest, and trace summaries."""

import csv
import json

import pytest

import networkx as nx

from repro import obs
from repro.obs.export import (
    atomic_write,
    config_hash,
    event_rows,
    manifest_totals,
    prometheus_text,
    read_jsonl,
    run_manifest,
    summarize_file,
    summarize_records,
    trace_rows,
    write_events_jsonl,
    write_metrics_csv,
    write_prometheus_text,
    write_trace_jsonl,
)


@pytest.fixture
def recorder():
    instance = obs.Recorder()
    with obs.use(instance):
        with obs.span("experiment.demo", satellites=66):
            with obs.span("routing.demo"):
                obs.count("events", 3, label="tick")
                obs.observe("latency_ms", 31.0)
                obs.observe("latency_ms", 45.0)
        with obs.phase("build"):
            pass
        obs.gauge("queue_depth", 4)
    return instance


class TestManifest:
    def test_contains_identity_fields(self):
        manifest = run_manifest({"trials": 4, "seed": 42}, seed=42,
                                command="figure2b")
        assert manifest["type"] == "manifest"
        assert manifest["command"] == "figure2b"
        assert manifest["seed"] == 42
        assert len(manifest["config_hash"]) == 16
        for package in ("python", "repro", "numpy", "networkx"):
            assert manifest["versions"][package]

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_config_hash_distinguishes_configs(self):
        assert config_hash({"trials": 4}) != config_hash({"trials": 5})

    def test_unserializable_values_stringified(self):
        assert config_hash({"path": object()})  # must not raise


class TestJsonlRoundTrip:
    def test_round_trip(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_trace_jsonl(
            recorder, path, run_manifest({"x": 1}, seed=7, command="demo"))
        records = read_jsonl(path)
        assert len(records) == written
        kinds = {record["type"] for record in records}
        assert kinds == {"manifest", "counter", "gauge", "histogram",
                         "phase", "span"}
        spans = [r for r in records if r["type"] == "span"]
        assert {s["name"] for s in spans} == {"experiment.demo",
                                              "routing.demo"}
        inner = next(s for s in spans if s["name"] == "routing.demo")
        outer = next(s for s in spans if s["name"] == "experiment.demo")
        assert inner["parent_id"] == outer["span_id"]

    def test_manifest_is_first_record(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(recorder, path)
        assert read_jsonl(path)[0]["type"] == "manifest"

    def test_metric_values_deterministic_across_runs(self, tmp_path):
        def capture(path):
            recorder = obs.Recorder()
            with obs.use(recorder):
                for value in range(200):
                    obs.observe("h", float(value % 17), label="x")
                    obs.count("c", label="x")
            write_trace_jsonl(recorder, path,
                              run_manifest({"seed": 1}, seed=1))

        capture(tmp_path / "a.jsonl")
        capture(tmp_path / "b.jsonl")
        strip = {"versions"}  # identical here, but keep the check focused

        def comparable(path):
            return [
                {k: v for k, v in record.items() if k not in strip}
                for record in read_jsonl(path)
            ]

        assert comparable(tmp_path / "a.jsonl") == comparable(
            tmp_path / "b.jsonl")

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_jsonl(path)

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="JSON object"):
            read_jsonl(path)


class TestAtomicWrite:
    def test_writes_through_temp_and_renames(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as handle:
            handle.write("content")
            # Mid-write, the destination must not exist yet.
            assert not path.exists()
        assert path.read_text() == "content"
        assert list(tmp_path.iterdir()) == [path]  # temp file cleaned up

    def test_failure_preserves_previous_contents(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("previous")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("partial garbage")
                raise RuntimeError("simulated crash mid-write")
        assert path.read_text() == "previous"
        assert list(tmp_path.iterdir()) == [path]

    def test_failure_with_no_previous_file_leaves_nothing(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("doomed")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_trace_export_is_atomic(self, recorder, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(recorder, path, run_manifest({}, seed=1))
        before = path.read_text()

        import json as json_module

        def exploding_dumps(*_args, **_kwargs):
            raise RuntimeError("serializer died")

        monkeypatch.setattr(json_module, "dumps", exploding_dumps)
        with pytest.raises(RuntimeError):
            write_trace_jsonl(recorder, path, run_manifest({}, seed=1))
        assert path.read_text() == before

    def test_metrics_export_is_atomic(self, recorder, tmp_path):
        path = tmp_path / "metrics.csv"
        write_metrics_csv(recorder, path)
        before = path.read_text()
        broken = obs.Recorder()
        broken.metrics.rows = lambda: (_ for _ in ()).throw(
            RuntimeError("rows died"))
        with pytest.raises(RuntimeError):
            write_metrics_csv(broken, path)
        assert path.read_text() == before


class TestCsv:
    def test_metrics_csv(self, recorder, tmp_path):
        path = tmp_path / "metrics.csv"
        rows_written = write_metrics_csv(recorder, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == rows_written
        counter = next(r for r in rows if r["type"] == "counter")
        assert counter["name"] == "events"
        assert float(counter["value"]) == 3.0
        histogram = next(r for r in rows if r["type"] == "histogram")
        assert histogram["name"] == "latency_ms"
        assert int(histogram["count"]) == 2


class TestSummarize:
    def test_summary_sections(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(recorder, path,
                          run_manifest({}, seed=3, command="demo"))
        summary = summarize_file(path)
        assert "seed=3" in summary
        assert "top spans" in summary
        assert "experiment.demo" in summary
        assert "top counters" in summary
        assert "events" in summary
        assert "histograms" in summary

    def test_empty_trace(self):
        assert summarize_records([]) == "empty trace"

    def test_top_limits_rows(self, tmp_path):
        recorder = obs.Recorder()
        with obs.use(recorder):
            for index in range(20):
                obs.count(f"counter_{index:02d}")
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(recorder, path)
        summary = summarize_file(path, top=3)
        assert summary.count("counter_") == 3
        assert "(20 total)" in summary

    def test_trace_rows_include_everything(self, recorder):
        rows = trace_rows(recorder)
        assert rows[0]["type"] == "manifest"
        assert sum(1 for r in rows if r["type"] == "span") == 2


@pytest.fixture
def event_recorder():
    graph = nx.Graph()
    graph.add_edge("S1", "S2")
    graph.add_edge("G1", "S1")
    instance = obs.Recorder()
    with obs.use(instance):
        obs.sample_health(0.0, graph, reset=True)
        obs.event("handover", 30.0, subject="sat:2", user="u-1")
        obs.event("handover", 60.0, subject="sat:2", user="u-1")
        obs.event("session.drop", 90.0, subject="u-2", reason="no-route")
        obs.observe("latency_ms", 42.0)
        obs.count("flows", 3, label="completed")
    return instance


class TestEventExport:
    def test_record_order_manifest_health_events(self, event_recorder,
                                                 tmp_path):
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(
            event_recorder, path, run_manifest({}, seed=5, command="demo"))
        records = read_jsonl(path)
        assert len(records) == written
        assert [r["type"] for r in records] == [
            "manifest", "health_epochs", "health_links", "health_nodes",
            "event", "event", "event"]
        assert [r["kind"] for r in records if r["type"] == "event"] == [
            "handover", "handover", "session.drop"]

    def test_manifest_totals_folded_in(self, event_recorder, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(event_recorder, path,
                           run_manifest({}, seed=5, command="demo"))
        totals = read_jsonl(path)[0]["totals"]
        assert totals["events"] == 3
        assert totals["health_epochs"] == 1
        assert "snapshot_cache_hits" in totals
        assert "snapshot_cache_misses" in totals

    def test_manifest_totals_does_not_create_counters(self, event_recorder):
        before = event_recorder.metrics.instrument_count
        manifest_totals(event_recorder)
        assert event_recorder.metrics.instrument_count == before

    def test_event_rows_without_manifest(self, event_recorder):
        rows = event_rows(event_recorder)
        assert rows[0]["type"] == "manifest"  # synthesized

    def test_events_write_is_atomic(self, event_recorder, tmp_path,
                                    monkeypatch):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(event_recorder, path)
        before = path.read_text()

        import json as json_module

        def exploding_dumps(*_args, **_kwargs):
            raise RuntimeError("serializer died")

        monkeypatch.setattr(json_module, "dumps", exploding_dumps)
        with pytest.raises(RuntimeError):
            write_events_jsonl(event_recorder, path)
        assert path.read_text() == before

    def test_summarize_covers_events_and_health(self, event_recorder):
        summary = summarize_records(
            event_rows(event_recorder, run_manifest({}, seed=5)))
        assert "events (3 total):" in summary
        assert "handover" in summary
        assert "noisiest subjects" in summary
        assert "sat:2" in summary
        assert "health:" in summary
        assert "totals:" in summary


class TestPrometheus:
    def test_exposition_format(self, event_recorder):
        text = prometheus_text(event_recorder)
        lines = text.splitlines()
        assert any(line.startswith("# TYPE repro_flows_total counter")
                   for line in lines)
        assert 'repro_flows_total{label="completed"} 3' in text
        assert "# TYPE repro_latency_ms histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_latency_ms_sum 42" in text
        assert "repro_latency_ms_count 1" in text
        assert text.endswith("\n")

    def test_metric_names_sanitized(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            obs.count("network.snapshot_cache.hit")
        text = prometheus_text(recorder)
        assert "repro_network_snapshot_cache_hit_total" in text
        assert "." not in text.split()[-2]

    def test_write_returns_line_count(self, event_recorder, tmp_path):
        path = tmp_path / "metrics.prom"
        lines = write_prometheus_text(event_recorder, path)
        assert lines == len(path.read_text().splitlines())
