"""Tests for the metric instruments and registry."""

import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_tracks_envelope(self):
        gauge = Gauge("g")
        for value in (5.0, 1.0, 9.0):
            gauge.set(value)
        assert gauge.value == 9.0
        assert gauge.minimum == 1.0
        assert gauge.maximum == 9.0
        assert gauge.updates == 3

    def test_empty_row_is_zeroed(self):
        row = Gauge("g").as_row()
        assert row["min"] == 0.0 and row["max"] == 0.0


class TestHistogram:
    def test_bucket_counts(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.total == 555.5

    def test_bucket_upper_bound_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0, 0]

    def test_percentiles_exact_under_reservoir_size(self):
        hist = Histogram("h", buckets=(1000.0,))
        for value in range(101):  # 0..100
            hist.observe(float(value))
        assert hist.percentile(50.0) == pytest.approx(50.0)
        assert hist.percentile(95.0) == pytest.approx(95.0)
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(100.0) == 100.0

    def test_percentiles_approximate_beyond_reservoir(self):
        hist = Histogram("h", buckets=(10_000.0,), reservoir_size=256)
        for value in range(10_000):
            hist.observe(float(value))
        # Uniform input: the reservoir median should land near 5000.
        assert hist.percentile(50.0) == pytest.approx(5000.0, rel=0.15)

    def test_reservoir_is_deterministic(self):
        def build():
            hist = Histogram("h", buckets=(10_000.0,), reservoir_size=64)
            for value in range(5_000):
                hist.observe(float((value * 37) % 1000))
            return hist

        first, second = build(), build()
        assert first.percentile(50.0) == second.percentile(50.0)
        assert first.percentile(95.0) == second.percentile(95.0)
        assert first.as_row() == second.as_row()

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram("h").percentile(50.0))
        assert math.isnan(Histogram("h").mean)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ValueError, match="reservoir"):
            Histogram("h", reservoir_size=0)
        with pytest.raises(ValueError, match="percentile"):
            Histogram("h").percentile(101.0)


class TestRegistry:
    def test_same_key_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("events", label="a").inc()
        registry.counter("events", label="a").inc()
        registry.counter("events", label="b").inc()
        assert registry.counter("events", "a").value == 2
        assert registry.counter("events", "b").value == 1
        assert registry.instrument_count == 2

    def test_rows_sorted_regardless_of_creation_order(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.counter("a").inc()
        forward.gauge("b").set(1.0)
        backward.gauge("b").set(1.0)
        backward.counter("a").inc()
        assert forward.rows() == backward.rows()

    def test_kinds_do_not_collide(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x").set(2.0)
        registry.histogram("x").observe(3.0)
        assert registry.instrument_count == 3
