"""The default recorder must be a no-op and leave no trace anywhere."""

from repro import obs
from repro.simulation.engine import SimulationEngine


class TestDefault:
    def test_null_recorder_is_default(self):
        assert obs.active() is obs.NULL_RECORDER
        assert not obs.active().enabled

    def test_null_operations_are_silent(self):
        recorder = obs.NullRecorder()
        recorder.count("c")
        recorder.gauge("g", 1.0)
        recorder.observe("h", 1.0)
        with recorder.span("s", attr=1):
            with recorder.phase("p"):
                pass
        # NullRecorder holds no state at all.
        assert not hasattr(recorder, "metrics")

    def test_instrumented_engine_records_nothing_by_default(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule(float(t), lambda: None, label="tick")
        engine.run()
        assert engine.processed_count == 10
        assert obs.active() is obs.NULL_RECORDER


class TestInstall:
    def test_use_scopes_the_recorder(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            assert obs.active() is recorder
            obs.count("scoped")
        assert obs.active() is obs.NULL_RECORDER
        assert recorder.metrics.counter("scoped").value == 1.0

    def test_use_restores_on_exception(self):
        recorder = obs.Recorder()
        try:
            with obs.use(recorder):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.active() is obs.NULL_RECORDER

    def test_install_and_reset(self):
        recorder = obs.Recorder()
        obs.install(recorder)
        try:
            assert obs.active() is recorder
        finally:
            obs.reset()
        assert obs.active() is obs.NULL_RECORDER

    def test_nested_use_restores_outer(self):
        outer, inner = obs.Recorder(), obs.Recorder()
        with obs.use(outer):
            with obs.use(inner):
                obs.count("deep")
            assert obs.active() is outer
        assert inner.metrics.counter("deep").value == 1.0
        assert outer.metrics.instrument_count == 0


class TestEngineInstrumentation:
    def test_engine_counts_per_label(self):
        recorder = obs.Recorder(obs.ObsConfig(queue_sample_interval=1))
        with obs.use(recorder):
            engine = SimulationEngine()
            for t in range(4):
                engine.schedule(float(t), lambda: None, label="beacon")
            engine.schedule(9.0, lambda: None)  # unlabeled
            engine.run()
        assert recorder.metrics.counter("engine.events", "beacon").value == 4
        assert recorder.metrics.counter(
            "engine.events", "unlabeled").value == 1
        assert recorder.metrics.histogram("engine.queue_depth").count == 5
        spans = [row["name"] for row in recorder.tracer.rows()]
        assert "engine.run" in spans

    def test_event_timing_is_opt_in(self):
        with obs.use(obs.Recorder()) as recorder:
            engine = SimulationEngine()
            engine.schedule(0.0, lambda: None, label="tick")
            engine.run()
        assert recorder.metrics.histogram(
            "engine.event_duration_s", "tick").count == 0

        with obs.use(obs.Recorder(obs.ObsConfig(time_events=True))) as recorder:
            engine = SimulationEngine()
            engine.schedule(0.0, lambda: None, label="tick")
            engine.run()
        assert recorder.metrics.histogram(
            "engine.event_duration_s", "tick").count == 1
