"""Tests for the self-contained HTML timeline/health report."""

import networkx as nx
import pytest

from repro import obs
from repro.obs.export import event_rows, run_manifest, write_events_jsonl
from repro.obs.report import (
    _MAX_MARKS_PER_LANE,
    render_report,
    report_file,
    write_report,
)


def _graph(*edges):
    graph = nx.Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


@pytest.fixture
def records():
    recorder = obs.Recorder()
    with obs.use(recorder):
        obs.sample_health(0.0, _graph(("A", "B"), ("B", "C")), reset=True)
        obs.event("handover", 30.0, subject="sat:9", user="u-1")
        obs.event("fault.inject", 45.0, subject="f-0", fault_kind="satellite")
        obs.sample_health(60.0, _graph(("A", "B")))
    return event_rows(
        recorder, run_manifest({"epochs": 2}, seed=7, command="demo"))


class TestRender:
    def test_standalone_html_document(self, records):
        html = render_report(records, title="demo run")
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "<script" not in html  # self-contained, no JS
        assert "<title>demo run</title>" in html

    def test_sections_present(self, records):
        html = render_report(records)
        assert "Event timeline" in html
        assert "Health plane" in html
        assert "Lowest-availability links" in html
        assert "Events by kind" in html
        assert "handover" in html and "fault.inject" in html
        assert "B--C" in html  # the flapped link is ranked

    def test_manifest_meta_line(self, records):
        html = render_report(records)
        assert "seed 7" in html
        assert "<code>demo</code>" in html

    def test_title_escaped(self, records):
        html = render_report(records, title="<img src=x>")
        assert "<img" not in html
        assert "&lt;img" in html

    def test_empty_records(self):
        html = render_report([])
        assert "no events in this file" in html

    def test_rendering_is_deterministic(self, records):
        assert render_report(records) == render_report(records)

    def test_timeline_downsampled_past_cap(self):
        rows = [
            {"type": "event", "seq": i, "t": float(i), "kind": "handover",
             "subject": "", "attrs": {}}
            for i in range(_MAX_MARKS_PER_LANE * 2)
        ]
        html = render_report(rows)
        assert "down-sampled" in html
        assert html.count("<circle") <= _MAX_MARKS_PER_LANE + 10


class TestFiles:
    def test_write_report_returns_byte_count(self, records, tmp_path):
        path = tmp_path / "report.html"
        written = write_report(records, path)
        assert written == len(path.read_bytes())

    def test_report_file_end_to_end(self, tmp_path):
        recorder = obs.Recorder()
        with obs.use(recorder):
            obs.event("handover", 1.0, subject="sat:1")
        trace = tmp_path / "events.jsonl"
        write_events_jsonl(recorder, trace,
                           run_manifest({}, seed=1, command="demo"))
        out = tmp_path / "report.html"
        assert report_file(trace, out) > 0
        assert "handover" in out.read_text()

    def test_report_file_missing_input(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            report_file(tmp_path / "nope.jsonl", tmp_path / "out.html")

    def test_write_is_atomic_on_render_failure(self, records, tmp_path,
                                               monkeypatch):
        path = tmp_path / "report.html"
        write_report(records, path)
        before = path.read_text()
        import repro.obs.report as report_module

        def exploding(*_args, **_kwargs):
            raise RuntimeError("renderer died")

        monkeypatch.setattr(report_module, "_svg_timeline", exploding)
        with pytest.raises(RuntimeError):
            write_report(records, path)
        assert path.read_text() == before
