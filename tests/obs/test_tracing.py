"""Tests for span tracing, the phase profiler, and the recorder surface."""

import pytest

from repro import obs
from repro.obs.profile import PhaseProfiler
from repro.obs.tracing import Tracer


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.end_s is not None
        assert span.duration_s >= 0.0
        assert tracer.rows()[0]["name"] == "work"

    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert tracer.open_depth == 0

    def test_sequential_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.span_id for s in tracer.spans] == [0, 1]

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.spans[0].end_s is not None
        assert tracer.open_depth == 0

    def test_attrs_exported(self):
        tracer = Tracer()
        with tracer.span("job", satellites=66, seed=42):
            pass
        row = tracer.rows()[0]
        assert row["attrs"] == {"satellites": 66, "seed": 42}

    def test_by_name_aggregates(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeat"):
                pass
        aggregated = tracer.by_name()
        assert aggregated["repeat"]["count"] == 3
        assert aggregated["repeat"]["total_s"] >= 0.0


class TestPhaseProfiler:
    def test_accumulates_calls(self):
        profiler = PhaseProfiler()
        for _ in range(5):
            with profiler.phase("stage"):
                pass
        assert profiler.calls("stage") == 5
        assert profiler.total_s("stage") >= 0.0
        assert profiler.phase_count == 1

    def test_unknown_phase_zero(self):
        profiler = PhaseProfiler()
        assert profiler.total_s("never") == 0.0
        assert profiler.calls("never") == 0

    def test_report_renders(self):
        profiler = PhaseProfiler()
        with profiler.phase("alpha"):
            pass
        report = profiler.report()
        assert "alpha" in report
        assert "calls" in report

    def test_empty_report(self):
        assert PhaseProfiler().report() == "no phases recorded"


class TestRecorderSurface:
    def test_recorder_collects_all_kinds(self):
        recorder = obs.Recorder()
        recorder.count("c", 2.0, label="x")
        recorder.gauge("g", 7.0)
        recorder.observe("h", 0.5)
        with recorder.span("s"):
            pass
        with recorder.phase("p"):
            pass
        assert recorder.metrics.counter("c", "x").value == 2.0
        assert recorder.metrics.gauge("g").value == 7.0
        assert recorder.metrics.histogram("h").count == 1
        assert len(recorder.tracer.rows()) == 1
        assert recorder.profiler.calls("p") == 1

    def test_obs_config_validation(self):
        with pytest.raises(ValueError, match="queue_sample_interval"):
            obs.ObsConfig(queue_sample_interval=0)
