"""Tests for the per-link / per-node health plane."""

import networkx as nx

from repro import obs
from repro.obs.health import HealthPlane, link_key


def _graph(*edges, satellites=()):
    graph = nx.Graph()
    for node in satellites:
        graph.add_node(node, kind="satellite")
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestLinkKey:
    def test_order_independent(self):
        assert link_key("S2", "S1") == link_key("S1", "S2") == "S1--S2"


class TestSampling:
    def test_epoch_aggregates(self):
        plane = HealthPlane()
        plane.sample(0.0, _graph(("A", "B"), ("B", "C")),
                     route_churn=2, faults_active=1)
        assert len(plane) == 1
        assert plane.links_up[0] == 2
        assert plane.nodes_up[0] == 3
        assert plane.route_churn[0] == 2
        assert plane.faults_active[0] == 1

    def test_diff_reports_appeared_and_vanished(self):
        plane = HealthPlane()
        appeared, vanished = plane.sample(0.0, _graph(("A", "B"), ("B", "C")))
        assert (appeared, vanished) == ([], [])  # baseline
        appeared, vanished = plane.sample(60.0, _graph(("A", "B"), ("C", "D")))
        assert appeared == ["C--D"]
        assert vanished == ["B--C"]

    def test_reset_starts_fresh_baseline(self):
        plane = HealthPlane()
        plane.sample(0.0, _graph(("A", "B")))
        appeared, vanished = plane.sample(60.0, _graph(("C", "D")),
                                          reset=True)
        assert (appeared, vanished) == ([], [])

    def test_isl_counts_only_satellite_neighbors(self):
        graph = _graph(("S1", "S2"), ("S1", "G1"),
                       satellites=("S1", "S2"))
        plane = HealthPlane()
        plane.sample(0.0, graph)
        # Two satellite rows; S1 has one satellite neighbor (G1 excluded).
        assert list(plane._node_isls) == [1, 1]
        assert plane._node_ids == ["S1", "S2"]

    def test_utilization_samples_interned(self):
        plane = HealthPlane()
        plane.sample(0.0, _graph(("A", "B")),
                     utilization={("B", "A"): 0.5})
        assert list(plane._link_util) == [0.5]
        assert plane._link_ids[plane._link_index[0]] == "A--B"


class TestAvailability:
    def test_fraction_of_epochs_present(self):
        plane = HealthPlane()
        plane.sample(0.0, _graph(("A", "B"), ("B", "C")))
        plane.sample(60.0, _graph(("A", "B")))
        assert plane.link_availability() == {"A--B": 1.0, "B--C": 0.5}

    def test_worst_links_ascending(self):
        plane = HealthPlane()
        plane.sample(0.0, _graph(("A", "B"), ("B", "C")))
        plane.sample(60.0, _graph(("A", "B")))
        assert plane.worst_links(top=1) == [("B--C", 0.5)]

    def test_empty_plane(self):
        assert HealthPlane().link_availability() == {}
        assert HealthPlane().rows() == []


class TestExportReplay:
    def test_rows_are_columnar_and_typed(self):
        plane = HealthPlane()
        plane.sample(0.0, _graph(("S1", "S2"), satellites=("S1", "S2")),
                     utilization={("S1", "S2"): 0.25})
        rows = plane.rows()
        assert [row["type"] for row in rows] == [
            "health_epochs", "health_links", "health_nodes"]
        assert rows[0]["t"] == [0.0]
        assert rows[1]["ids"] == ["S1--S2"]
        assert rows[1]["utilization"] == [0.25]
        assert rows[2]["isl_count"] == [1, 1]

    def test_replay_merges_and_remaps(self):
        worker = HealthPlane()
        worker.sample(0.0, _graph(("A", "B")))
        worker.sample(60.0, _graph(("A", "B"), ("B", "C")))
        parent = HealthPlane()
        parent.sample(0.0, _graph(("B", "C")))
        assert parent.replay_rows(worker.rows()) == 2
        assert len(parent) == 3
        assert list(parent.epoch_t) == [0.0, 0.0, 60.0]
        # Presence accumulates across the merge: B--C up in 1 parent epoch
        # + 1 worker epoch out of 3 total.
        availability = parent.link_availability()
        assert availability["B--C"] == 2 / 3
        assert availability["A--B"] == 2 / 3

    def test_replay_equals_serial(self):
        graphs = [
            _graph(("A", "B"), ("B", "C")),
            _graph(("A", "B")),
            _graph(("A", "B"), ("C", "D")),
        ]
        serial = HealthPlane()
        for index, graph in enumerate(graphs):
            serial.sample(float(index), graph, reset=index == 0)
        split = HealthPlane()
        for index, graph in enumerate(graphs):
            worker = HealthPlane()
            worker.sample(float(index), graph, reset=True)
            split.replay_rows(worker.rows())
        assert split.rows() == serial.rows()


class TestRecorderIntegration:
    def test_sample_health_emits_link_events_and_churn(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            obs.sample_health(0.0, _graph(("A", "B")), reset=True)
            obs.event("route.invalidated", 30.0, subject="S1", routes=4)
            obs.sample_health(60.0, _graph(("C", "D")))
        kinds = recorder.events.counts_by_kind()
        assert kinds["link.up"] == 1
        assert kinds["link.down"] == 1
        # The second epoch picks up the invalidation emitted between them.
        assert list(recorder.health.route_churn) == [0, 1]
