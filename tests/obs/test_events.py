"""Tests for the structured event bus and the flight recorder."""

import pytest

from repro import obs
from repro.obs.events import (
    DEFAULT_CAPACITY,
    KINDS,
    Event,
    EventLog,
    format_events,
)


class TestEvent:
    def test_as_row_shape(self):
        event = Event(seq=3, time_s=12.5, kind="handover", subject="sat:9",
                      attrs=(("scheme", "predictive"), ("user", "u-1")))
        row = event.as_row()
        assert row == {
            "type": "event", "seq": 3, "t": 12.5, "kind": "handover",
            "subject": "sat:9",
            "attrs": {"scheme": "predictive", "user": "u-1"},
        }

    def test_canonical_kinds_are_distinct(self):
        assert len(set(KINDS)) == len(KINDS) == 17


class TestEmission:
    def test_seq_is_monotone_from_zero(self):
        log = EventLog()
        for index in range(5):
            assert log.emit("link.up", float(index)).seq == index
        assert len(log) == 5
        assert log.next_seq == 5

    def test_attrs_sorted_by_key(self):
        log = EventLog()
        event = log.emit("fault.inject", 1.0, subject="f-1",
                         zeta=1, alpha=2, mid=3)
        assert event.attrs == (("alpha", 2), ("mid", 3), ("zeta", 1))

    def test_time_coerced_to_float(self):
        assert EventLog().emit("link.up", 3).time_s == 3.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)


class TestRetention:
    def test_full_stream_retained_by_default(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.emit("handover", float(index))
        assert len(log.events) == 10
        assert len(log) == 10

    def test_ring_only_when_retain_all_off(self):
        log = EventLog(capacity=4, retain_all=False)
        for index in range(10):
            log.emit("handover", float(index))
        assert [e.seq for e in log.events] == [6, 7, 8, 9]
        # Counts still cover the whole run, not just the ring.
        assert len(log) == 10
        assert log.count_of("handover") == 10

    def test_tail_is_bounded_by_capacity(self):
        log = EventLog(capacity=3)
        for index in range(8):
            log.emit("link.down", float(index))
        assert [e.seq for e in log.tail()] == [5, 6, 7]
        assert [e.seq for e in log.tail(2)] == [6, 7]
        assert log.tail(0) == []
        assert [e.seq for e in log.tail(99)] == [5, 6, 7]

    def test_default_capacity(self):
        assert EventLog().capacity == DEFAULT_CAPACITY


class TestRollups:
    def test_counts_by_kind_sorted(self):
        log = EventLog()
        log.emit("session.drop", 0.0)
        log.emit("handover", 1.0)
        log.emit("handover", 2.0)
        assert log.counts_by_kind() == {"handover": 2, "session.drop": 1}
        assert log.count_of("handover") == 2
        assert log.count_of("never.emitted") == 0

    def test_noisiest_subjects_ranked_then_alphabetical(self):
        log = EventLog()
        for _ in range(3):
            log.emit("link.down", 0.0, subject="S1--S2")
        for subject in ("A--B", "C--D"):
            log.emit("link.down", 0.0, subject=subject)
        log.emit("handover", 0.0)  # no subject: excluded
        assert log.noisiest_subjects(top=2) == [("S1--S2", 3), ("A--B", 1)]

    def test_noisiest_subjects_kind_filter(self):
        log = EventLog()
        log.emit("link.down", 0.0, subject="S1--S2")
        log.emit("handover", 0.0, subject="sat:9")
        assert log.noisiest_subjects(kinds=["handover"]) == [("sat:9", 1)]


class TestReplay:
    def test_round_trip_re_sequences(self):
        source = EventLog()
        source.emit("link.up", 1.0, subject="A--B", extra=7)
        source.emit("handover", 2.0, subject="sat:3")
        target = EventLog()
        target.emit("fault.inject", 0.5, subject="f-0")
        assert target.replay_rows(source.rows()) == 2
        events = target.events
        assert [e.seq for e in events] == [0, 1, 2]
        assert [e.kind for e in events] == ["fault.inject", "link.up",
                                            "handover"]
        assert events[1].attrs == (("extra", 7),)

    def test_replay_ignores_non_event_rows(self):
        log = EventLog()
        rows = [{"type": "manifest"}, {"type": "health_epochs"},
                {"type": "event", "kind": "link.up", "t": 1.0}]
        assert log.replay_rows(rows) == 1
        assert log.count_of("link.up") == 1


class TestFormat:
    def test_empty(self):
        assert format_events([]) == "(no events recorded)"

    def test_one_line_per_event(self):
        log = EventLog()
        log.emit("handover", 120.0, subject="sat:9", user="u-1")
        log.emit("link.down", 130.5)
        text = format_events(log.events)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "#0" in lines[0] and "handover" in lines[0]
        assert "sat:9" in lines[0] and "user=u-1" in lines[0]
        assert "t=     130.500" in lines[1]


class TestRecorderIntegration:
    def test_recorder_event_forwards_to_log(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            obs.event("handover", 5.0, subject="sat:1", scheme="predictive")
        assert len(recorder.events) == 1
        assert recorder.events.events[0].kind == "handover"

    def test_null_recorder_event_is_silent(self):
        obs.event("handover", 5.0, subject="sat:1")  # must not raise
        obs.sample_health(0.0, None)  # graph never touched when disabled
        assert obs.active() is obs.NULL_RECORDER
        assert not hasattr(obs.NULL_RECORDER, "events")

    def test_flight_recorder_size_config(self):
        recorder = obs.Recorder(obs.ObsConfig(flight_recorder_size=2))
        with obs.use(recorder):
            for index in range(5):
                obs.event("link.up", float(index))
        assert [e.seq for e in recorder.events.tail()] == [3, 4]
        assert len(recorder.events.events) == 5  # full stream still kept

    def test_config_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="flight_recorder_size"):
            obs.ObsConfig(flight_recorder_size=0)
