"""Tests for the availability and resilience experiment drivers."""

import pytest

from repro.experiments.availability import (
    SAMPLE_SITES,
    availability_sweep,
    resilience_sweep,
)


class TestAvailabilitySweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return availability_sweep(fleet_sizes=(12, 66), epochs=4, seed=37)

    def test_row_per_size_plus_structured(self, rows):
        assert len(rows) == 3
        assert rows[-1]["layout"] == "walker-star"

    def test_site_columns_present(self, rows):
        for name, _site in SAMPLE_SITES:
            assert f"{name}_availability" in rows[0]

    def test_bigger_fleet_more_available(self, rows):
        assert rows[1]["mean"] >= rows[0]["mean"]

    def test_structured_fleet_near_total(self, rows):
        assert rows[-1]["mean"] > 0.9

    def test_availability_bounded(self, rows):
        for row in rows:
            assert 0.0 <= row["mean"] <= 1.0

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            availability_sweep(fleet_sizes=(5,), epochs=0)

    def test_structured_row_optional(self):
        rows = availability_sweep(fleet_sizes=(12,), epochs=2,
                                  include_structured=False)
        assert len(rows) == 1
        assert rows[0]["layout"] == "random"


class TestResilienceSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return resilience_sweep(failure_fractions=(0.0, 0.2, 0.5), epochs=3)

    def test_baseline_fully_available(self, rows):
        assert rows[0]["mean_availability"] == 1.0
        assert rows[0]["surviving"] == 66

    def test_monotone_degradation(self, rows):
        values = [row["mean_availability"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_survivor_counts(self, rows):
        assert [row["surviving"] for row in rows] == [66, 53, 33]

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            resilience_sweep(failure_fractions=(1.0,), epochs=2)

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            resilience_sweep(failure_fractions=(0.0,), epochs=0)


class TestSweepDeterminism:
    def test_availability_sweep_same_seed_same_rows(self):
        first = availability_sweep(fleet_sizes=(12,), epochs=2, seed=37,
                                   include_structured=False)
        second = availability_sweep(fleet_sizes=(12,), epochs=2, seed=37,
                                    include_structured=False)
        assert first == second

    def test_resilience_sweep_same_seed_same_rows(self):
        first = resilience_sweep(failure_fractions=(0.0, 0.3), epochs=2,
                                 seed=41)
        second = resilience_sweep(failure_fractions=(0.0, 0.3), epochs=2,
                                  seed=41)
        assert first == second

    def test_resilience_sweep_seed_changes_draw(self):
        first = resilience_sweep(failure_fractions=(0.5,), epochs=2,
                                 seed=41)
        second = resilience_sweep(failure_fractions=(0.5,), epochs=2,
                                  seed=42)
        # Same survivor count, but a different random half of the fleet.
        assert first[0]["surviving"] == second[0]["surviving"]
