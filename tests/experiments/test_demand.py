"""Tests for the diurnal demand sweep."""

import pytest

from repro.experiments.demand import (
    demand_sweep,
    plane_count_for,
    scale_access_capacity,
)

SMALL = dict(satellite_counts=(24,), hours_utc=(4.0, 20.0),
             total_users=50_000, bands=8, equator_columns=16)


@pytest.fixture(scope="module")
def rows():
    return demand_sweep(**SMALL)


class TestDemandSweep:
    def test_row_grid_shape(self, rows):
        assert len(rows) == 2
        assert [row["hour_utc"] for row in rows] == [4.0, 20.0]
        assert all(row["satellites"] == 24 for row in rows)

    def test_users_conserved(self, rows):
        assert all(row["users"] == 50_000 for row in rows)

    def test_fixed_point_converges(self, rows):
        assert all(row["converged"] for row in rows)
        assert all(row["iterations"] >= 1 for row in rows)

    def test_diurnal_variation_visible(self, rows):
        # Global offered load is nearly flat across UTC hours (the load
        # follows the sun around the globe), but *where* it lands moves,
        # so the congestion outcome differs between hours.
        predawn, evening = rows
        assert evening["served_fraction"] != predawn["served_fraction"]
        assert evening["revenue_usd"] != predawn["revenue_usd"]

    def test_revenue_under_load(self, rows):
        assert all(row["revenue_usd"] > 0.0 for row in rows)
        assert all(row["carried_gb"] > 0.0 for row in rows)

    def test_sane_fractions(self, rows):
        for row in rows:
            assert 0.0 <= row["served_fraction"] <= 1.0
            assert 0.0 <= row["peak_utilization"] <= 1.0 + 1e-9
            assert row["p95_delay_inflation"] >= 1.0
            assert 0 <= row["routed_cells"] <= row["cells"]

    def test_deterministic_per_seed(self, rows):
        again = demand_sweep(**SMALL)
        assert again == rows
        different = demand_sweep(**SMALL, seed=8)
        assert different != rows

    def test_jobs_equivalence(self, rows):
        parallel = demand_sweep(**SMALL, jobs=2)
        assert parallel == rows

    def test_validation(self):
        with pytest.raises(ValueError, match="satellite"):
            demand_sweep(satellite_counts=(0,))
        with pytest.raises(ValueError, match="hour"):
            demand_sweep(hours_utc=(24.5,))


class TestHelpers:
    def test_plane_count_deterministic_and_bounded(self):
        assert plane_count_for(24) >= 3
        assert plane_count_for(66) == plane_count_for(66)
        assert plane_count_for(400) > plane_count_for(66)

    def test_scale_access_capacity_idempotent(self):
        import networkx as nx
        g = nx.Graph()
        g.add_edge("cell-00000", "sat", kind="access_link",
                   capacity_bps=10e6, delay_s=0.004)
        g.add_edge("sat", "gw", kind="ground_link", capacity_bps=1e9)
        assert scale_access_capacity(g, {"cell-00000": 100}) == 1
        assert g["cell-00000"]["sat"]["capacity_bps"] == 10e6 * 100
        # Second call must not double-scale.
        assert scale_access_capacity(g, {"cell-00000": 100}) == 0
        assert g["cell-00000"]["sat"]["capacity_bps"] == 10e6 * 100
        # Non-access links untouched.
        assert g["sat"]["gw"]["capacity_bps"] == 1e9

    def test_scale_skips_singleton_cells(self):
        import networkx as nx
        g = nx.Graph()
        g.add_edge("cell-00001", "sat", kind="access_link",
                   capacity_bps=10e6)
        assert scale_access_capacity(g, {"cell-00001": 1}) == 0
        assert g["cell-00001"]["sat"]["capacity_bps"] == 10e6
