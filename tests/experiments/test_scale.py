"""Tests for the mega-constellation scale sweep."""

import json
import math

import pytest

from repro.experiments.scale import plane_count_for, scale_sweep

SMALL = dict(satellite_counts=(48,), epochs=3)


def canonical(rows):
    """JSON-serialized rows: NaN-safe equality (NaN != NaN in python,
    but both serialize to the same token)."""
    return json.dumps(rows, sort_keys=True)


@pytest.fixture(scope="module")
def rows():
    return scale_sweep(**SMALL)


class TestScaleSweep:
    def test_row_fields(self, rows):
        assert len(rows) == 1
        row = rows[0]
        assert row["satellites"] == 48
        assert row["planes"] == plane_count_for(48)
        assert row["epochs"] == 3
        assert row["period_s"] > 0.0
        assert row["mean_isl_edges"] > 0.0
        assert row["mean_degree"] > 0.0
        assert 0.0 <= row["churn_mean"] <= 1.0
        assert row["churn_mean"] <= row["churn_max"] <= 1.0
        assert row["full_builds"] == 1
        assert row["delta_builds"] == 2
        assert row["edges_appeared"] >= 0
        assert row["edges_disappeared"] >= 0
        assert 0 <= row["probe_reachable_epochs"] <= 3
        assert row["digests_match"] is True

    def test_delta_disabled_builds_full_every_epoch(self):
        rows = scale_sweep(**SMALL, delta=False)
        assert rows[0]["full_builds"] == 3
        assert rows[0]["delta_builds"] == 0
        assert rows[0]["digests_match"] is True

    def test_spatial_flag_does_not_change_results(self, rows):
        forced_on = scale_sweep(**SMALL, spatial=True)
        forced_off = scale_sweep(**SMALL, spatial=False)
        assert canonical(forced_on) == canonical(rows)
        assert canonical(forced_off) == canonical(rows)

    def test_jobs_equivalence(self, rows):
        two_counts = scale_sweep(satellite_counts=(48, 60), epochs=2)
        parallel = scale_sweep(satellite_counts=(48, 60), epochs=2,
                               jobs=2)
        assert canonical(parallel) == canonical(two_counts)

    def test_skipping_digest_check_reports_none(self):
        rows = scale_sweep(**SMALL, compare_digests=False)
        assert rows[0]["digests_match"] is None
        # Everything else is unchanged by skipping the reference build.
        full = scale_sweep(**SMALL)
        for key, value in rows[0].items():
            if key == "digests_match":
                continue
            reference = full[0][key]
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(reference)
            else:
                assert value == reference

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            scale_sweep(satellite_counts=())
        with pytest.raises(ValueError):
            scale_sweep(satellite_counts=(1,))
        with pytest.raises(ValueError):
            scale_sweep(satellite_counts=(48,), epochs=0)
        with pytest.raises(ValueError):
            scale_sweep(satellite_counts=(48,), max_range_km=0.0)


class TestPlaneCountFor:
    @pytest.mark.parametrize("satellites", [2, 6, 24, 48, 60, 180, 360,
                                            1440, 2880, 10_000])
    def test_divides_evenly(self, satellites):
        planes = plane_count_for(satellites)
        assert planes >= 1
        assert satellites % planes == 0

    def test_known_fleets(self):
        assert plane_count_for(48) == 4
        assert plane_count_for(10_000) == 80

    def test_prime_fleet_degrades_to_one_plane(self):
        assert plane_count_for(97) == 1
