"""Tests for the control-plane reliability sweep."""

import pytest

from repro import obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.reliability import (
    PROVIDER,
    _flap_links,
    _make_users,
    reliability_sweep,
    run_reliability_scenario,
)
from repro.faults.model import FaultSchedule
from repro.faults.schedule import link_flap_schedule
from repro.ground.station import default_station_network
from repro.orbits.walker import iridium_like
from repro.reliability.exchange import RetryPolicy


@pytest.fixture(scope="module")
def relia_network():
    fleet = build_fleet(iridium_like(), PROVIDER, SizeClass.MEDIUM)
    return OpenSpaceNetwork(fleet, default_station_network())


class TestSweep:
    def test_deterministic_per_seed(self):
        kwargs = dict(loss_rates=(0.0, 0.15), flap_mtbf_hours=(0.2,),
                      horizon_s=600.0, probes=2, seed=21)
        assert reliability_sweep(**kwargs) == reliability_sweep(**kwargs)

    def test_zero_loss_row_matches_baseline(self):
        rows = reliability_sweep(loss_rates=(0.0,), flap_mtbf_hours=(0.0,),
                                 horizon_s=600.0, probes=2, seed=5)
        (row,) = rows
        assert row["auth_success_rate"] == row["baseline_success_rate"]
        assert row["mean_attempts"] == 1.0
        assert row["latency_inflation"] == 1.0
        assert row["degraded_associations"] == 0
        assert row["exchange_failures"] == 0

    def test_loss_inflates_attempts_and_latency(self):
        rows = reliability_sweep(loss_rates=(0.0, 0.25),
                                 flap_mtbf_hours=(0.0,),
                                 horizon_s=600.0, probes=2, seed=5)
        clean, lossy = rows
        assert lossy["mean_attempts"] > clean["mean_attempts"]
        assert lossy["latency_inflation"] > clean["latency_inflation"]

    def test_grid_order_and_coordinates(self):
        rows = reliability_sweep(loss_rates=(0.0, 0.1),
                                 flap_mtbf_hours=(0.0, 0.5),
                                 horizon_s=300.0, probes=1, seed=5)
        assert [(r["loss"], r["flap_mtbf_h"]) for r in rows] == [
            (0.0, 0.0), (0.0, 0.5), (0.1, 0.0), (0.1, 0.5)
        ]

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError, match="loss rate"):
            reliability_sweep(loss_rates=(1.5,))

    def test_rejects_bad_mtbf(self):
        with pytest.raises(ValueError, match="MTBF"):
            reliability_sweep(flap_mtbf_hours=(-1.0,))


class TestScenario:
    def test_rejects_bad_probes(self, relia_network):
        with pytest.raises(ValueError, match="probe"):
            run_reliability_scenario(
                relia_network, FaultSchedule(horizon_s=60.0),
                _make_users()[:1], horizon_s=60.0, probes=0, loss=0.0,
                policy=RetryPolicy(),
            )

    def test_rejects_bad_horizon(self, relia_network):
        with pytest.raises(ValueError, match="horizon"):
            run_reliability_scenario(
                relia_network, FaultSchedule(horizon_s=0.0),
                _make_users()[:1], horizon_s=0.0, probes=1, loss=0.0,
                policy=RetryPolicy(),
            )

    def test_flaps_with_total_loss_open_breakers(self, relia_network):
        # Acceptance scenario: an ISL-flap schedule plus a dead control
        # channel — breakers open, degraded-mode counters land in
        # repro.obs, and nothing raises.
        links = _flap_links(relia_network, 0.25)
        schedule = link_flap_schedule(links, 60.0, mtbf_s=120.0,
                                      mttr_s=30.0, seed=3)
        recorder = obs.Recorder()
        with obs.use(recorder):
            result = run_reliability_scenario(
                relia_network, schedule, _make_users()[:2],
                horizon_s=60.0, probes=3, loss=1.0,
                policy=RetryPolicy(max_attempts=2, timeout_s=0.1,
                                   jitter_fraction=0.0),
                breaker_threshold=2, breaker_recovery_s=1e6,
            )
        assert result["auth_success_rate"] == 0.0
        assert result["exchange_failures"] > 0
        assert result["breaker_opens"] > 0
        metric_names = {row["name"] for row in recorder.metrics.rows()}
        assert "reliability.degraded" in metric_names
        assert "reliability.exchange.failure" in metric_names
        assert "reliability.breaker.transitions" in metric_names

    def test_fault_state_cleared_after_run(self, relia_network):
        links = _flap_links(relia_network, 0.5)
        schedule = link_flap_schedule(links, 60.0, mtbf_s=60.0,
                                      mttr_s=None, seed=4)
        run_reliability_scenario(
            relia_network, schedule, _make_users()[:1], horizon_s=60.0,
            probes=1, loss=0.0, policy=RetryPolicy(),
        )
        assert not relia_network.failed_links
        assert not relia_network.failed_satellites


class TestFlapLinks:
    def test_deterministic_sample(self, relia_network):
        assert (_flap_links(relia_network, 0.25)
                == _flap_links(relia_network, 0.25))

    def test_fraction_scales_sample(self, relia_network):
        quarter = _flap_links(relia_network, 0.25)
        half = _flap_links(relia_network, 0.5)
        assert len(half) > len(quarter) > 0

    def test_zero_fraction_empty(self, relia_network):
        assert _flap_links(relia_network, 0.0) == []
