"""Tests for the dynamic resilience (fault churn) experiment driver."""

import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.availability import SAMPLE_SITES, resilience_sweep
from repro.experiments.resilience_dynamic import (
    dynamic_resilience_sweep,
    run_fault_scenario,
)
from repro.faults.model import FaultSchedule
from repro.faults.schedule import (
    satellite_mtbf_schedule,
    satellite_outage_event,
)
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.walker import walker_star


@pytest.fixture()
def small_network():
    fleet = build_fleet(walker_star(12, 3), "acme", SizeClass.SMALL)
    network = OpenSpaceNetwork(fleet, default_station_network())
    yield network
    network.clear_fault_state()


@pytest.fixture()
def users():
    name, site = SAMPLE_SITES[0]
    return [UserTerminal(f"u-{name}", site, "acme", min_elevation_deg=10.0)]


class TestRunFaultScenario:
    def test_empty_schedule_clean_summary(self, small_network, users):
        result = run_fault_scenario(
            small_network, FaultSchedule(events=[]), users,
            horizon_s=600.0, epochs=3)
        assert result["faults_injected"] == 0
        assert result["flows_rerouted"] == 0
        assert result["flows_dropped"] == 0
        assert result["probes"] == 3

    def test_faults_applied_and_repaired(self, small_network, users):
        sats = [s.satellite_id for s in small_network.satellites]
        schedule = satellite_mtbf_schedule(
            sats, 1800.0, mtbf_s=1200.0, mttr_s=300.0, seed=5)
        assert len(schedule) > 0
        result = run_fault_scenario(small_network, schedule, users,
                                    horizon_s=1800.0, epochs=3)
        assert result["faults_injected"] == len(schedule)
        assert (result["faults_absorbed"]
                + result["faults_user_affecting"]
                == result["faults_injected"])
        # Faults whose repair lands within the horizon heal; the rest
        # stay applied, which is exactly the residual network state.
        healed = [e for e in schedule.events
                  if e.end_s is not None and e.end_s <= 1800.0]
        assert result["faults_repaired"] == len(healed)
        lingering = {e.targets[0] for e in schedule.events
                     if e.end_s is None or e.end_s > 1800.0}
        assert small_network.failed_satellites == frozenset(lingering)

    def test_validates_epochs_and_horizon(self, small_network, users):
        empty = FaultSchedule(events=[])
        with pytest.raises(ValueError):
            run_fault_scenario(small_network, empty, users,
                               horizon_s=600.0, epochs=0)
        with pytest.raises(ValueError):
            run_fault_scenario(small_network, empty, users,
                               horizon_s=0.0, epochs=2)

    def test_leaves_no_residual_fault_state_on_repairing_schedule(
            self, small_network, users):
        schedule = FaultSchedule(events=[satellite_outage_event(
            [small_network.satellites[0].satellite_id],
            start_s=100.0, duration_s=200.0, fault_id="blip")])
        run_fault_scenario(small_network, schedule, users,
                           horizon_s=600.0, epochs=2)
        assert not small_network.has_faults

    def test_returns_raw_tracker_and_injector(self, small_network, users):
        result = run_fault_scenario(
            small_network, FaultSchedule(events=[]), users,
            horizon_s=600.0, epochs=2)
        assert result["_tracker"].probe_count == 2
        assert result["_injector"].applied_count == 0


class TestDynamicResilienceSweep:
    def test_same_seed_same_rows(self):
        kwargs = dict(mtbf_hours=(2.0,), mttr_s=600.0, horizon_s=1800.0,
                      epochs=3, seed=7)
        assert (dynamic_resilience_sweep(**kwargs)
                == dynamic_resilience_sweep(**kwargs))

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ValueError):
            dynamic_resilience_sweep(mtbf_hours=(0.0,), horizon_s=600.0,
                                     epochs=2)

    def test_mttr_zero_matches_static_baseline(self):
        # Acceptance criterion: with instant repair no fault has any
        # positive-duration effect, so the dynamic sweep must reproduce
        # the static resilience_sweep's zero-loss availability exactly.
        dynamic = dynamic_resilience_sweep(
            mtbf_hours=(2.0,), mttr_s=0.0, horizon_s=1800.0, epochs=3,
            seed=7)
        static = resilience_sweep(failure_fractions=(0.0,), epochs=3)
        assert dynamic[0]["mean_availability"] == pytest.approx(
            static[0]["mean_availability"])
        assert dynamic[0]["flows_rerouted"] == 0
        assert dynamic[0]["flows_dropped"] == 0


class TestEngineEquality:
    """`--engine batched` probes must leave every row untouched."""

    KWARGS = dict(mtbf_hours=(2.0,), mttr_s=600.0, horizon_s=1800.0,
                  epochs=3, seed=7)

    def test_sweep_rows_identical_across_engines(self):
        pytest.importorskip("scipy")
        assert (dynamic_resilience_sweep(**self.KWARGS, engine="scalar")
                == dynamic_resilience_sweep(**self.KWARGS, engine="batched"))

    def test_scenario_identical_across_engines(self, small_network, users):
        pytest.importorskip("scipy")
        satellite_ids = [
            s.satellite_id for s in small_network.satellites
        ]
        schedule = satellite_mtbf_schedule(
            satellite_ids, 1200.0, mtbf_s=1800.0, mttr_s=300.0, seed=3)

        def run(engine):
            result = run_fault_scenario(
                small_network, schedule, users, horizon_s=1200.0,
                epochs=4, engine=engine)
            return {k: v for k, v in result.items()
                    if not k.startswith("_")}

        assert run("scalar") == run("batched")

    def test_unknown_engine_rejected(self, small_network, users):
        with pytest.raises(ValueError, match="unknown engine"):
            run_fault_scenario(small_network, FaultSchedule(events=[]),
                               users, horizon_s=600.0, epochs=2,
                               engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            dynamic_resilience_sweep(mtbf_hours=(2.0,), horizon_s=600.0,
                                     epochs=2, engine="warp")
