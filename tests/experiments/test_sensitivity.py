"""Tests for the Figure-2 sensitivity sweeps and the CBO cross-check."""

import pytest

from repro.experiments.sensitivity import (
    coverage_altitude_sensitivity,
    coverage_mask_sensitivity,
    latency_site_sensitivity,
)
from repro.orbits.constants import CBO_EXPECTED_COVERAGE
from repro.orbits.visibility import coverage_fraction
from repro.orbits.walker import cbo_reference


class TestCboCrossCheck:
    def test_cbo_reference_hits_cited_coverage(self):
        """The paper cites CBO: 72 sats, 12x6 planes at 80 deg give ~95%.

        Our independent geometry should land close to that figure — a
        validation of the whole coverage pipeline against an external
        number.
        """
        constellation = cbo_reference()
        coverage = coverage_fraction(
            constellation.positions_at(0.0), 780.0,
            min_elevation_deg=10.0, grid_resolution=36,
        )
        assert coverage == pytest.approx(CBO_EXPECTED_COVERAGE, abs=0.06)


class TestMaskSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return coverage_mask_sensitivity(masks_deg=(0.0, 10.0, 25.0),
                                         trials=3)

    def test_coverage_falls_with_mask(self, rows):
        coverages = [row["coverage"] for row in rows]
        assert coverages == sorted(coverages, reverse=True)

    def test_headline_robust_at_moderate_mask(self, rows):
        by_mask = {row["mask_deg"]: row["coverage"] for row in rows}
        # The 50-satellite near-total-coverage claim holds at the horizon
        # mask the paper's geometry implies, degrades to ~0.7 at a 10 deg
        # user mask, and collapses at 25 deg — the claim is
        # mask-sensitive, which EXPERIMENTS.md documents.
        assert by_mask[0.0] > 0.85
        assert 0.5 < by_mask[10.0] < 0.85
        assert by_mask[25.0] < 0.5


class TestAltitudeSensitivity:
    def test_coverage_grows_with_altitude(self):
        rows = coverage_altitude_sensitivity(
            altitudes_km=(400.0, 780.0, 1200.0), trials=3,
        )
        coverages = [row["coverage"] for row in rows]
        assert coverages == sorted(coverages)


class TestSiteSensitivity:
    def test_plateau_tracks_site_distance(self):
        rows = latency_site_sensitivity(trials=2, epochs=5)
        by_name = {row["sites"]: row for row in rows}
        near = by_name["nairobi->nairobi-gw"]["latency_mean_ms"]
        far = by_name["sydney->frankfurt"]["latency_mean_ms"]
        default = by_name["nairobi->frankfurt"]["latency_mean_ms"]
        # Latency ordering follows great-circle distance.
        assert near < default < far
