"""Tests for the regional-blackout DTN sweep driver."""

import pytest

from repro.experiments.disrupted import disrupted_sweep

# One tiny-but-real grid, shared by the shape and parallelism tests so
# the (~seconds) scenario simulation only runs a few times.
QUICK = dict(radii_km=(0.0, 1500.0), durations_s=(900.0,),
             buffer_kb=(64.0,), horizon_s=3600.0, step_s=600.0,
             loss=0.0, sensors=2, satellites=24, bundle_interval_s=600.0,
             bundle_bytes=1024, ttl_s=3600.0, seed=17)

ROW_KEYS = {
    "radius_km", "blackout_s", "buffer_kb", "stations_down", "created",
    "delivered", "delivery_ratio", "mean_delay_s", "max_delay_s",
    "custody_retx", "custody_failures", "buffer_drops", "ttl_expired",
    "replans", "backlog", "faults_injected",
}


def _rows_equal(first, second):
    """Row-list equality that treats NaN as equal to NaN."""
    if len(first) != len(second):
        return False
    for row_a, row_b in zip(first, second):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            a, b = row_a[key], row_b[key]
            if a != b and not (a != a and b != b):
                return False
    return True


class TestDisruptedSweep:
    def test_rows_shape_and_grid_order(self):
        rows = disrupted_sweep(**QUICK)
        assert len(rows) == 2
        assert all(set(row) == ROW_KEYS for row in rows)
        assert all(row["created"] > 0 for row in rows)
        assert all(row["delivered"] > 0 for row in rows)
        assert [row["radius_km"] for row in rows] == [0.0, 1500.0]
        # The zero-radius control injects nothing and never replans.
        assert rows[0]["stations_down"] == 0
        assert rows[0]["faults_injected"] == 0
        assert rows[0]["replans"] == 0
        # The regional blackout takes down exactly the Nairobi gateway.
        assert rows[1]["stations_down"] == 1
        assert rows[1]["faults_injected"] == 1

    def test_jobs_do_not_change_rows(self):
        serial = disrupted_sweep(**QUICK)
        pooled = disrupted_sweep(**{**QUICK, "jobs": 2})
        assert _rows_equal(serial, pooled)

    def test_same_seed_same_rows(self):
        assert _rows_equal(disrupted_sweep(**QUICK),
                           disrupted_sweep(**QUICK))

    def test_validation(self):
        with pytest.raises(ValueError, match="radius"):
            disrupted_sweep(**{**QUICK, "radii_km": (-1.0,)})
        with pytest.raises(ValueError, match="duration"):
            disrupted_sweep(**{**QUICK, "durations_s": (0.0,)})
        with pytest.raises(ValueError, match="buffer"):
            disrupted_sweep(**{**QUICK, "buffer_kb": (0.0,)})
        with pytest.raises(ValueError, match="step"):
            disrupted_sweep(**{**QUICK, "step_s": 7200.0})
        with pytest.raises(ValueError, match="sensor"):
            disrupted_sweep(**{**QUICK, "sensors": 0})
        with pytest.raises(ValueError, match="interval"):
            disrupted_sweep(**{**QUICK, "bundle_interval_s": 0.0})
