"""Tests for the Figure 2 experiment drivers (shape assertions).

These assert the qualitative claims of the paper's evaluation, not exact
numbers: the reproduction runs on a synthetic substrate, so who-wins and
where the curves bend is what must hold (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.figure2 import (
    figure_2a_constellation,
    figure_2b_latency,
    figure_2c_coverage,
)


class TestFigure2a:
    @pytest.fixture(scope="class")
    def report(self):
        return figure_2a_constellation()

    def test_constellation_parameters_match_paper(self, report):
        assert report.satellite_count == 66
        assert report.plane_count == 6
        assert report.altitude_km == pytest.approx(780.0)
        assert report.inclination_deg == pytest.approx(86.4)

    def test_global_coverage(self, report):
        assert report.coverage_union > 0.99

    def test_isl_graph_connected_and_sustained(self, report):
        assert report.connected
        assert report.isl_count >= 66
        # ISL distances must stay within what S-band budgets close at.
        assert report.max_isl_distance_km < 6000.0


class TestFigure2b:
    @pytest.fixture(scope="class")
    def result(self):
        return figure_2b_latency(
            satellite_counts=[4, 10, 25, 45, 70], trials=3, epochs=6, seed=7,
        )

    def test_reachability_increases_with_fleet_size(self, result):
        reach = result["reachability"]
        assert reach[70] > reach[25] > reach[4]
        assert reach[70] > 0.5

    def test_minimum_fleet_mostly_unreachable(self, result):
        # The paper: ~4 satellites are the bare minimum; a 4-sat random
        # fleet rarely yields a relay path at any instant.
        assert result["reachability"][4] < 0.3

    def test_latency_plateau_for_large_fleets(self, result):
        rows = {row["x"]: row for row in result["series"]}
        assert 70 in rows
        # The paper's plateau is ~30 ms; anything in the same band passes.
        assert 20.0 < rows[70]["mean"] < 70.0

    def test_large_fleet_latency_not_worse_than_mid(self, result):
        rows = {row["x"]: row["mean"] for row in result["series"]}
        if 25 in rows and 70 in rows:
            assert rows[70] <= rows[25] * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            figure_2b_latency(trials=0)
        with pytest.raises(ValueError):
            figure_2b_latency(epochs=0)


class TestFigure2c:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure_2c_coverage(
            satellite_counts=[1, 4, 12, 25, 50, 80], trials=6, seed=7,
        )

    def test_union_coverage_monotone(self, rows):
        unions = [row["union"] for row in rows]
        for earlier, later in zip(unions[:-1], unions[1:]):
            assert later >= earlier - 0.02  # trial noise allowance

    def test_total_coverage_around_fifty(self, rows):
        by_count = {row["satellites"]: row for row in rows}
        # The paper: total earth coverage by about 50 satellites.
        assert by_count[50]["union"] > 0.90
        assert by_count[80]["union"] > 0.95

    def test_single_satellite_small_coverage(self, rows):
        assert rows[0]["union"] < 0.10

    def test_worst_case_bounded_by_union(self, rows):
        for row in rows:
            assert row["worst_case"] <= row["union"] + 0.05
            assert row["cluster"] <= row["worst_case"] + 1e-9

    def test_worst_case_saturates_at_packing_limit(self, rows):
        by_count = {row["satellites"]: row for row in rows}
        # The pairwise rule cannot exceed the disjoint-cap packing bound.
        assert by_count[80]["worst_case"] < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            figure_2c_coverage(trials=0)


class TestRelayBackendEquality:
    """The batched CSR relay path is bit-identical to the scalar one."""

    def test_batch_matches_scalar_per_epoch(self):
        pytest.importorskip("scipy")
        import math

        import numpy as np

        from repro.experiments.figure2 import (
            DEFAULT_GATEWAY_SITE,
            DEFAULT_USER_SITE,
            _relay_latency_batch_s,
            _relay_latency_s,
        )
        from repro.orbits.coordinates import ecef_to_eci
        from repro.orbits.walker import random_constellation

        rng = np.random.default_rng(99)
        times = np.linspace(0.0, 86400.0, 5, endpoint=False)
        for count in (1, 4, 25):
            constellation = random_constellation(count, rng)
            positions_all = constellation.positions_over(times)
            user_ecis = np.stack([
                ecef_to_eci(DEFAULT_USER_SITE.ecef(), float(t))
                for t in times
            ])
            gateway_ecis = np.stack([
                ecef_to_eci(DEFAULT_GATEWAY_SITE.ecef(), float(t))
                for t in times
            ])
            batch = _relay_latency_batch_s(positions_all, user_ecis,
                                           gateway_ecis,
                                           min_elevation_deg=0.0)
            for k in range(len(times)):
                scalar = _relay_latency_s(positions_all[:, k, :],
                                          user_ecis[k], gateway_ecis[k],
                                          min_elevation_deg=0.0)
                if scalar is None:
                    assert math.isinf(batch[k])
                else:
                    assert batch[k] == scalar  # bit-identical, not approx

    def test_sweep_output_identical_across_backends(self):
        pytest.importorskip("scipy")
        import json

        kwargs = dict(satellite_counts=[4, 16, 30], trials=2, epochs=3,
                      seed=13)
        csr_result = figure_2b_latency(**kwargs, backend="csr")
        nx_result = figure_2b_latency(**kwargs, backend="networkx")
        assert (json.dumps(csr_result, sort_keys=True)
                == json.dumps(nx_result, sort_keys=True))


class TestEngineEquality:
    """`--engine batched` is a pure speedup: identical sweep output."""

    def test_sweep_output_identical_across_engines(self):
        pytest.importorskip("scipy")
        import json

        kwargs = dict(satellite_counts=[4, 16, 30], trials=2, epochs=3,
                      seed=13)
        scalar = figure_2b_latency(**kwargs, engine="scalar")
        batched = figure_2b_latency(**kwargs, engine="batched")
        assert (json.dumps(scalar, sort_keys=True)
                == json.dumps(batched, sort_keys=True))

    def test_batched_engine_identical_across_job_counts(self):
        pytest.importorskip("scipy")
        kwargs = dict(satellite_counts=[4, 16], trials=2, epochs=3,
                      seed=13, engine="batched")
        assert (figure_2b_latency(**kwargs, jobs=1)
                == figure_2b_latency(**kwargs, jobs=2))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            figure_2b_latency(satellite_counts=[4], trials=1, epochs=2,
                              engine="turbo")

    def test_batched_engine_requires_csr_backend(self):
        pytest.importorskip("scipy")
        with pytest.raises(ValueError, match="batched"):
            figure_2b_latency(satellite_counts=[4], trials=1, epochs=2,
                              engine="batched", backend="networkx")
