"""Tests for the ablation experiment drivers."""


import pytest

from repro.experiments.ablations import (
    _size_mix_for_fraction,
    ablation_economics,
    ablation_federation,
    ablation_handover,
    ablation_isl_mix,
    ablation_mac,
)


class TestSizeMix:
    def test_endpoints(self):
        from repro.core.interop import SizeClass
        assert all(s is SizeClass.SMALL for s in _size_mix_for_fraction(0.0))
        assert all(s is SizeClass.MEDIUM for s in _size_mix_for_fraction(1.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _size_mix_for_fraction(1.5)


class TestIslMix:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_isl_mix(laser_fractions=(0.0, 0.5, 1.0),
                                satellite_count=36)

    def test_premium_admission_grows_with_lasers(self, rows):
        by_fraction = {row["laser_fraction"]: row for row in rows}
        assert (by_fraction[1.0]["premium_admission"]
                >= by_fraction[0.0]["premium_admission"])
        assert by_fraction[0.0]["premium_admission"] < 0.5
        assert by_fraction[1.0]["premium_admission"] > 0.5

    def test_capex_grows_with_lasers(self, rows):
        capex = [row["fleet_capex_musd"] for row in rows]
        assert capex == sorted(capex)

    def test_laser_capex_delta_reflects_terminal_price(self, rows):
        by_fraction = {row["laser_fraction"]: row for row in rows}
        delta_musd = (by_fraction[1.0]["fleet_capex_musd"]
                      - by_fraction[0.0]["fleet_capex_musd"])
        # 36 laser terminals at $0.5M each are part of the delta.
        assert delta_musd > 36 * 0.5


class TestMacAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_mac(station_counts=(2, 8), duration_s=200.0)

    def test_rows_cover_requested_counts(self, rows):
        assert [row["stations"] for row in rows] == [2, 8]

    def test_csma_delivery_degrades_with_contention(self, rows):
        assert rows[1]["csma_delivery"] <= rows[0]["csma_delivery"] + 0.02

    def test_tdma_never_collides_so_delivery_high_at_low_load(self, rows):
        assert rows[0]["tdma_delivery"] > 0.9


class TestHandoverAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_handover(duration_s=3600.0)

    def test_predictive_wins(self, result):
        assert (result["predictive"]["total_interruption_s"]
                < result["reauthenticate"]["total_interruption_s"])
        assert result["interruption_ratio"] > 2.0

    def test_handover_happens(self, result):
        # LEO passes are minutes long: an hour forces several handovers.
        assert result["handover_count"] >= 3

    def test_availability_high_for_both(self, result):
        assert result["predictive"]["availability"] > 0.99
        assert result["reauthenticate"]["availability"] > 0.9


class TestEconomicsAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_economics(transfer_count=150, seed=5)

    def test_all_fraud_caught(self, result):
        assert result["mismatches_caught"] == result["fraud_injected"]
        assert result["fraud_injected"] > 0

    def test_symmetric_pair_peers(self, result):
        assert ("isp-a", "isp-b") in result["peering_recommended"]

    def test_net_positions_balance(self, result):
        assert sum(result["net_positions"].values()) == pytest.approx(0.0)


class TestFederationAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_federation(operator_counts=(1, 3), seed=2)

    def test_federated_reachability_independent_of_fragmentation(self, rows):
        values = [row["federated_reachability"] for row in rows]
        assert max(values) - min(values) < 0.15

    def test_solo_worse_than_federated_when_fragmented(self, rows):
        fragmented = rows[-1]
        assert (fragmented["solo_reachability"]
                < fragmented["federated_reachability"])

    def test_per_operator_capex_falls_with_collaboration(self, rows):
        assert (rows[-1]["per_operator_capex_musd"]
                < rows[0]["per_operator_capex_musd"])
