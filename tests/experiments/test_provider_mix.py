"""Tests for the provider-mix experiment (paper open question 1)."""

import pytest

from repro.experiments.provider_mix import QOS_CLASSES, provider_mix_sweep


@pytest.fixture(scope="module")
def sweep():
    return provider_mix_sweep(
        mixes=((3, 0), (1, 2), (0, 3)), satellite_count=36, flow_count=30,
        seed=29,
    )


class TestProviderMix:
    def test_qos_classes_cover_traffic_mix(self):
        assert set(QOS_CLASSES) == {"best_effort", "standard", "premium"}

    def test_one_result_per_mix(self, sweep):
        assert [r.mix_name for r in sweep] == [
            "3 small + 0 medium", "1 small + 2 medium", "0 small + 3 medium",
        ]

    def test_best_effort_always_served(self, sweep):
        # The unit sweep runs a 36-satellite partial fleet, so coverage
        # gaps make many flows unroutable regardless of QoS; a meaningful
        # fraction must still be served (the full-fleet behaviour is
        # asserted by the benchmark at 66 satellites).
        for result in sweep:
            assert result.admission_by_class.get("best_effort", 1.0) > 0.3

    def test_premium_improves_with_medium_operators(self, sweep):
        all_small = sweep[0]
        all_medium = sweep[-1]
        assert (all_medium.admission_by_class.get("premium", 0.0)
                >= all_small.admission_by_class.get("premium", 0.0))

    def test_capex_grows_with_medium_share(self, sweep):
        capex = [r.capex_musd for r in sweep]
        assert capex == sorted(capex)

    def test_cost_effectiveness_reported(self, sweep):
        for result in sweep:
            assert result.premium_capacity_per_musd >= 0.0

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="at least one operator"):
            provider_mix_sweep(mixes=((0, 0),), satellite_count=12,
                               flow_count=5)
