"""Tests for classical orbital elements."""

import math

import pytest

from repro.orbits.constants import EARTH_RADIUS_KM
from repro.orbits.elements import OrbitalElements


class TestConstruction:
    def test_circular_factory_sets_semi_major_axis(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.5)
        assert el.semi_major_axis_km == pytest.approx(EARTH_RADIUS_KM + 780.0)
        assert el.eccentricity == 0.0

    def test_circular_rejects_nonpositive_altitude(self):
        with pytest.raises(ValueError, match="altitude"):
            OrbitalElements.circular(0.0, inclination_rad=0.0)
        with pytest.raises(ValueError, match="altitude"):
            OrbitalElements.circular(-100.0, inclination_rad=0.0)

    def test_rejects_nonpositive_semi_major_axis(self):
        with pytest.raises(ValueError, match="semi-major"):
            OrbitalElements(semi_major_axis_km=-1.0)

    def test_rejects_eccentricity_out_of_range(self):
        with pytest.raises(ValueError, match="eccentricity"):
            OrbitalElements(semi_major_axis_km=7000.0, eccentricity=1.0)
        with pytest.raises(ValueError, match="eccentricity"):
            OrbitalElements(semi_major_axis_km=7000.0, eccentricity=-0.1)

    def test_circular_wraps_angles(self):
        el = OrbitalElements.circular(
            780.0, inclination_rad=1.0,
            raan_rad=3.0 * math.pi, mean_anomaly_rad=-math.pi,
        )
        assert 0.0 <= el.raan_rad < 2.0 * math.pi
        assert 0.0 <= el.mean_anomaly_rad < 2.0 * math.pi


class TestDerivedQuantities:
    def test_altitude_round_trips(self):
        el = OrbitalElements.circular(780.0, inclination_rad=0.0)
        assert el.altitude_km == pytest.approx(780.0)

    def test_iridium_period_is_about_100_minutes(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.5)
        assert el.period_s == pytest.approx(6027.0, rel=0.01)

    def test_higher_orbit_has_longer_period(self):
        low = OrbitalElements.circular(400.0, inclination_rad=0.0)
        high = OrbitalElements.circular(1200.0, inclination_rad=0.0)
        assert high.period_s > low.period_s

    def test_perigee_apogee_for_eccentric_orbit(self):
        el = OrbitalElements(
            semi_major_axis_km=EARTH_RADIUS_KM + 1000.0, eccentricity=0.1
        )
        assert el.perigee_altitude_km < 1000.0 < el.apogee_altitude_km

    def test_mean_motion_matches_period(self):
        el = OrbitalElements.circular(780.0, inclination_rad=0.2)
        assert el.mean_motion_rad_s * el.period_s == pytest.approx(
            2.0 * math.pi
        )


class TestCopies:
    def test_with_mean_anomaly_replaces_only_anomaly(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0, raan_rad=0.5)
        moved = el.with_mean_anomaly(2.0)
        assert moved.mean_anomaly_rad == pytest.approx(2.0)
        assert moved.raan_rad == el.raan_rad
        assert moved.semi_major_axis_km == el.semi_major_axis_km

    def test_with_raan_wraps(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0)
        moved = el.with_raan(7.0)
        assert moved.raan_rad == pytest.approx(7.0 - 2.0 * math.pi)

    def test_elements_are_frozen(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0)
        with pytest.raises(Exception):
            el.eccentricity = 0.5
