"""Tests for contact-window prediction."""

import math

import pytest

from repro.orbits.contact import ContactWindow, contact_windows, isl_feasibility_schedule
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator


@pytest.fixture(scope="module")
def equatorial_prop():
    """An equatorial orbit passing over the (0, 0) ground point at epoch."""
    el = OrbitalElements.circular(780.0, inclination_rad=0.0)
    return KeplerPropagator(el)


class TestContactWindow:
    def test_duration_and_contains(self):
        w = ContactWindow(0, 100.0, 400.0, 1.0)
        assert w.duration_s == 300.0
        assert w.contains(100.0)
        assert w.contains(250.0)
        assert not w.contains(401.0)


class TestContactWindows:
    def test_equatorial_pass_detected(self, equatorial_prop):
        ground = GeodeticPoint(0.0, 0.0, 0.0)
        windows = contact_windows(
            ground, [equatorial_prop], 0.0, 3000.0,
            step_s=10.0, min_elevation_deg=10.0,
        )
        assert len(windows) >= 1
        first = windows[0]
        # The satellite starts overhead, so the first window starts at 0.
        assert first.start_s == pytest.approx(0.0, abs=1.0)
        assert first.max_elevation_rad > math.radians(60.0)

    def test_window_durations_are_minutes_scale(self, equatorial_prop):
        ground = GeodeticPoint(0.0, 0.0, 0.0)
        windows = contact_windows(
            ground, [equatorial_prop], 0.0, 12000.0, step_s=10.0,
        )
        for w in windows:
            assert 60.0 < w.duration_s < 1500.0

    def test_polar_ground_station_never_sees_equatorial_orbit(self, equatorial_prop):
        ground = GeodeticPoint(85.0, 0.0, 0.0)
        windows = contact_windows(
            ground, [equatorial_prop], 0.0, 6100.0, step_s=30.0,
        )
        assert windows == []

    def test_higher_mask_gives_shorter_windows(self, equatorial_prop):
        ground = GeodeticPoint(0.0, 0.0, 0.0)
        loose = contact_windows(ground, [equatorial_prop], 0.0, 3000.0,
                                min_elevation_deg=5.0)
        tight = contact_windows(ground, [equatorial_prop], 0.0, 3000.0,
                                min_elevation_deg=40.0)
        assert sum(w.duration_s for w in tight) < sum(
            w.duration_s for w in loose
        )

    def test_windows_sorted_by_start(self, iridium):
        ground = GeodeticPoint(-1.29, 36.82, 0.0)
        windows = contact_windows(
            ground, iridium.propagators()[:20], 0.0, 4000.0, step_s=20.0,
        )
        starts = [w.start_s for w in windows]
        assert starts == sorted(starts)

    def test_rejects_bad_interval(self, equatorial_prop):
        ground = GeodeticPoint(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            contact_windows(ground, [equatorial_prop], 100.0, 100.0)
        with pytest.raises(ValueError):
            contact_windows(ground, [equatorial_prop], 0.0, 100.0, step_s=0.0)

    def test_iridium_gives_frequent_contacts(self, iridium):
        # The full reference fleet should serve a mid-latitude user with
        # several windows within one orbit.
        ground = GeodeticPoint(45.0, 10.0, 0.0)
        windows = contact_windows(
            ground, iridium.propagators(), 0.0, 6100.0,
            step_s=30.0, min_elevation_deg=25.0,
        )
        assert len(windows) >= 3


class TestIslFeasibility:
    def test_adjacent_iridium_satellites_always_feasible(self, iridium):
        props = iridium.propagators()
        # Same plane, adjacent slots.
        schedule = isl_feasibility_schedule(
            [props[0], props[1]], 0.0, 3000.0, step_s=300.0,
        )
        assert schedule[(0, 1)] == pytest.approx(1.0)

    def test_range_limit_prunes(self, iridium):
        props = iridium.propagators()
        schedule = isl_feasibility_schedule(
            [props[0], props[5]], 0.0, 3000.0, step_s=300.0,
            max_range_km=100.0,
        )
        assert schedule[(0, 1)] == 0.0
