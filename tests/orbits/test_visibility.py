"""Tests for visibility, footprints, and coverage estimators."""

import math

import numpy as np
import pytest

from repro.orbits.constants import EARTH_RADIUS_KM, EARTH_SURFACE_AREA_KM2
from repro.orbits.coordinates import GeodeticPoint, geodetic_to_ecef
from repro.orbits.visibility import (
    cluster_coverage_fraction,
    coverage_fraction,
    elevation_angle,
    footprint_area_km2,
    footprint_half_angle,
    has_line_of_sight,
    is_visible,
    slant_range,
    surface_grid,
    visible_satellites,
    worst_case_coverage_fraction,
)

R = EARTH_RADIUS_KM
ALT = 780.0


def sat_at(lat_deg, lon_deg, altitude_km=ALT):
    """Position vector over a given ground point."""
    return geodetic_to_ecef(GeodeticPoint(lat_deg, lon_deg, altitude_km))


class TestSlantRange:
    def test_simple_distance(self):
        assert slant_range([0, 0, 0], [3, 4, 0]) == pytest.approx(5.0)

    def test_symmetric(self):
        a, b = np.array([1.0, 2, 3]), np.array([4.0, 5, 6])
        assert slant_range(a, b) == slant_range(b, a)


class TestLineOfSight:
    def test_adjacent_satellites_have_los(self):
        # 40 degrees apart at 780 km: the chord stays above the atmosphere
        # (the LOS limit at this altitude is ~51 degrees of separation).
        a = np.array([R + ALT, 0.0, 0.0])
        theta = math.radians(40.0)
        b = (R + ALT) * np.array([math.cos(theta), math.sin(theta), 0.0])
        assert has_line_of_sight(a, b)

    def test_quarter_orbit_separation_blocked(self):
        # 90 degrees apart the chord dips to (R+ALT)/sqrt(2) < R: blocked.
        a = np.array([R + ALT, 0.0, 0.0])
        b = np.array([0.0, R + ALT, 0.0])
        assert not has_line_of_sight(a, b)

    def test_antipodal_satellites_blocked(self):
        a = np.array([R + ALT, 0.0, 0.0])
        b = np.array([-(R + ALT), 0.0, 0.0])
        assert not has_line_of_sight(a, b)

    def test_grazing_altitude_tightens_the_test(self):
        # A pair whose ray grazes just above the default limit fails a
        # stricter limit.
        a = np.array([R + ALT, 0.0, 0.0])
        theta = 2.0 * math.acos((R + 100.0) / (R + ALT))
        b = (R + ALT) * np.array([math.cos(theta), math.sin(theta), 0.0])
        assert has_line_of_sight(a, b, grazing_altitude_km=80.0)
        assert not has_line_of_sight(a, b, grazing_altitude_km=150.0)

    def test_same_position(self):
        a = np.array([R + ALT, 0.0, 0.0])
        assert has_line_of_sight(a, a)


class TestElevation:
    def test_zenith(self):
        ground = geodetic_to_ecef(GeodeticPoint(10.0, 20.0, 0.0))
        sat = sat_at(10.0, 20.0)
        assert elevation_angle(ground, sat) == pytest.approx(
            math.pi / 2, abs=0.01
        )

    def test_far_satellite_below_horizon(self):
        ground = geodetic_to_ecef(GeodeticPoint(0.0, 0.0, 0.0))
        sat = sat_at(0.0, 120.0)
        assert elevation_angle(ground, sat) < 0.0

    def test_is_visible_mask(self):
        ground = geodetic_to_ecef(GeodeticPoint(0.0, 0.0, 0.0))
        overhead = sat_at(2.0, 2.0)
        assert is_visible(ground, overhead, min_elevation_deg=10.0)
        low = sat_at(0.0, 24.0)
        assert not is_visible(ground, low, min_elevation_deg=10.0)
        assert is_visible(ground, low, min_elevation_deg=0.0)


class TestFootprint:
    def test_half_angle_at_zero_elevation(self):
        lam = footprint_half_angle(ALT, 0.0)
        assert lam == pytest.approx(math.acos(R / (R + ALT)))

    def test_half_angle_shrinks_with_mask(self):
        assert footprint_half_angle(ALT, 25.0) < footprint_half_angle(ALT, 0.0)

    def test_higher_altitude_bigger_footprint(self):
        assert footprint_half_angle(1200.0) > footprint_half_angle(400.0)

    def test_rejects_nonpositive_altitude(self):
        with pytest.raises(ValueError):
            footprint_half_angle(0.0)

    def test_area_formula(self):
        lam = footprint_half_angle(ALT)
        expected = 2 * math.pi * R * R * (1 - math.cos(lam))
        assert footprint_area_km2(ALT) == pytest.approx(expected)

    def test_iridium_footprint_about_five_percent(self):
        assert footprint_area_km2(ALT) / EARTH_SURFACE_AREA_KM2 == pytest.approx(
            0.0545, abs=0.005
        )


class TestWorstCaseCoverage:
    def test_single_satellite(self):
        pos = np.array([[R + ALT, 0.0, 0.0]])
        expected = footprint_area_km2(ALT) / EARTH_SURFACE_AREA_KM2
        assert worst_case_coverage_fraction(pos, ALT) == pytest.approx(expected)

    def test_two_identical_positions_count_once(self):
        p = np.array([R + ALT, 0.0, 0.0])
        single = worst_case_coverage_fraction(np.array([p]), ALT)
        double = worst_case_coverage_fraction(np.array([p, p]), ALT)
        assert double == pytest.approx(single)

    def test_two_antipodal_count_twice(self):
        p = np.array([R + ALT, 0.0, 0.0])
        both = worst_case_coverage_fraction(np.array([p, -p]), ALT)
        one = worst_case_coverage_fraction(np.array([p]), ALT)
        assert both == pytest.approx(2 * one)

    def test_empty_fleet(self):
        assert worst_case_coverage_fraction(np.zeros((0, 3)), ALT) == 0.0

    def test_never_exceeds_one(self, rng):
        from repro.orbits.walker import random_constellation
        c = random_constellation(100, rng)
        assert worst_case_coverage_fraction(c.positions_at(0.0), ALT) <= 1.0

    def test_cluster_reading_lower_bounds_greedy(self, rng):
        from repro.orbits.walker import random_constellation
        c = random_constellation(30, rng)
        pos = c.positions_at(0.0)
        assert (cluster_coverage_fraction(pos, ALT)
                <= worst_case_coverage_fraction(pos, ALT) + 1e-12)


class TestUnionCoverage:
    def test_empty_fleet(self):
        assert coverage_fraction(np.zeros((0, 3)), ALT) == 0.0

    def test_single_satellite_close_to_cap_fraction(self):
        pos = np.array([[R + ALT, 0.0, 0.0]])
        expected = footprint_area_km2(ALT) / EARTH_SURFACE_AREA_KM2
        assert coverage_fraction(pos, ALT, grid_resolution=48) == pytest.approx(
            expected, abs=0.01
        )

    def test_iridium_constellation_covers_earth(self, iridium):
        cov = coverage_fraction(iridium.positions_at(0.0), ALT)
        assert cov > 0.99

    def test_coverage_monotone_in_fleet_size(self, rng):
        from repro.orbits.walker import random_constellation
        c = random_constellation(60, rng)
        pos = c.positions_at(0.0)
        cov_small = coverage_fraction(pos[:10], ALT)
        cov_large = coverage_fraction(pos, ALT)
        assert cov_large >= cov_small

    def test_union_at_least_worst_case(self, rng):
        from repro.orbits.walker import random_constellation
        c = random_constellation(40, rng)
        pos = c.positions_at(0.0)
        assert (coverage_fraction(pos, ALT, grid_resolution=48)
                >= worst_case_coverage_fraction(pos, ALT) - 0.05)


class TestSurfaceGrid:
    def test_weights_sum_to_one(self):
        _points, weights = surface_grid(24)
        assert weights.sum() == pytest.approx(1.0)

    def test_points_are_unit_vectors(self):
        points, _weights = surface_grid(16)
        assert np.allclose(np.linalg.norm(points, axis=1), 1.0)

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            surface_grid(1)


class TestVisibleSatellites:
    def test_orders_nearest_first(self):
        ground = geodetic_to_ecef(GeodeticPoint(0.0, 0.0, 0.0))
        sats = [sat_at(10.0, 0.0), sat_at(2.0, 0.0), sat_at(5.0, 0.0)]
        order = visible_satellites(ground, sats, min_elevation_deg=5.0)
        assert order == [1, 2, 0]

    def test_filters_below_mask(self):
        ground = geodetic_to_ecef(GeodeticPoint(0.0, 0.0, 0.0))
        sats = [sat_at(0.0, 90.0)]
        assert visible_satellites(ground, sats) == []
