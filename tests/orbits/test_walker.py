"""Tests for Walker constellation generators."""

import math

import numpy as np
import pytest

from repro.orbits.constants import (
    EARTH_RADIUS_KM,
    IRIDIUM_ALTITUDE_KM,
    IRIDIUM_SATELLITE_COUNT,
)
from repro.orbits.walker import (
    cbo_reference,
    iridium_like,
    merge_constellations,
    random_constellation,
    walker_delta,
    walker_star,
)


class TestWalkerStar:
    def test_counts(self):
        c = walker_star(66, 6)
        assert len(c) == 66
        assert c.plane_count == 6
        assert c.satellites_per_plane == 11

    def test_raans_span_half_circle(self):
        c = walker_star(12, 4)
        raans = sorted({el.raan_rad for el in c})
        assert max(raans) < math.pi
        assert len(raans) == 4

    def test_rejects_uneven_planes(self):
        with pytest.raises(ValueError, match="evenly divide"):
            walker_star(10, 3)

    def test_rejects_zero_satellites(self):
        with pytest.raises(ValueError):
            walker_star(0, 1)

    def test_rejects_bad_phasing(self):
        with pytest.raises(ValueError, match="phasing"):
            walker_star(12, 4, phasing=4)

    def test_in_plane_satellites_evenly_spaced(self):
        c = walker_star(12, 2, phasing=0)
        plane0 = [el for el in c.elements[:6]]
        anomalies = sorted(el.mean_anomaly_rad for el in plane0)
        gaps = np.diff(anomalies)
        assert np.allclose(gaps, 2.0 * math.pi / 6.0)

    def test_plane_and_slot_helpers(self):
        c = walker_star(12, 4)
        assert c.plane_of(0) == 0
        assert c.plane_of(3) == 1
        assert c.slot_of(4) == 1


class TestWalkerDelta:
    def test_raans_span_full_circle(self):
        c = walker_delta(12, 4)
        raans = sorted({el.raan_rad for el in c})
        assert max(raans) > math.pi

    def test_phasing_offsets_adjacent_planes(self):
        aligned = walker_delta(12, 4, phasing=0)
        phased = walker_delta(12, 4, phasing=1)
        assert aligned.elements[3].mean_anomaly_rad != pytest.approx(
            phased.elements[3].mean_anomaly_rad
        )


class TestReferenceConstellations:
    def test_iridium_like_matches_paper(self):
        c = iridium_like()
        assert len(c) == IRIDIUM_SATELLITE_COUNT
        assert c.plane_count == 6
        el = c.elements[0]
        assert el.altitude_km == pytest.approx(IRIDIUM_ALTITUDE_KM)
        assert math.degrees(el.inclination_rad) == pytest.approx(86.4)

    def test_cbo_reference_matches_paper(self):
        c = cbo_reference()
        assert len(c) == 72
        assert c.plane_count == 6
        assert c.satellites_per_plane == 12
        assert math.degrees(c.elements[0].inclination_rad) == pytest.approx(80.0)

    def test_positions_at_epoch_have_correct_radius(self):
        c = iridium_like()
        pos = c.positions_at(0.0)
        radii = np.linalg.norm(pos, axis=1)
        assert np.allclose(radii, EARTH_RADIUS_KM + IRIDIUM_ALTITUDE_KM)

    def test_propagators_cached(self):
        c = iridium_like()
        assert c.propagators() is c.propagators()


class TestSubset:
    def test_subset_takes_prefix(self):
        c = iridium_like()
        sub = c.subset(10)
        assert len(sub) == 10
        assert sub.elements == c.elements[:10]

    def test_subset_rejects_out_of_range(self):
        c = iridium_like()
        with pytest.raises(ValueError):
            c.subset(0)
        with pytest.raises(ValueError):
            c.subset(67)


class TestRandomConstellation:
    def test_count_and_altitude(self, rng):
        c = random_constellation(25, rng)
        assert len(c) == 25
        assert all(
            el.altitude_km == pytest.approx(IRIDIUM_ALTITUDE_KM) for el in c
        )

    def test_reproducible_with_seed(self):
        a = random_constellation(10, np.random.default_rng(5))
        b = random_constellation(10, np.random.default_rng(5))
        assert all(
            x.raan_rad == y.raan_rad and x.mean_anomaly_rad == y.mean_anomaly_rad
            for x, y in zip(a, b)
        )

    def test_fixed_inclination_respected(self, rng):
        c = random_constellation(8, rng, inclination_deg=53.0)
        assert all(
            math.degrees(el.inclination_rad) == pytest.approx(53.0) for el in c
        )

    def test_default_inclination_near_polar(self, rng):
        c = random_constellation(40, rng)
        degs = [math.degrees(el.inclination_rad) for el in c]
        assert all(70.0 <= d <= 100.0 for d in degs)

    def test_rejects_zero_count(self, rng):
        with pytest.raises(ValueError):
            random_constellation(0, rng)


class TestMerge:
    def test_merge_concatenates(self, rng):
        a = random_constellation(5, rng)
        b = random_constellation(7, rng)
        merged = merge_constellations([a, b], name="fleet")
        assert len(merged) == 12
        assert merged.name == "fleet"

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_constellations([])
