"""Tests for the TLE codec."""

import math

import pytest

from repro.orbits.elements import OrbitalElements
from repro.orbits.tle import (
    catalog_from_constellation,
    elements_from_tle,
    emit_tle,
    parse_tle,
    tle_from_elements,
)

#: The canonical ISS TLE example (checksums valid).
ISS_TLE = [
    "ISS (ZARYA)",
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537",
]


class TestParse:
    def test_parses_iss_record(self):
        tle = parse_tle(ISS_TLE)
        assert tle.name == "ISS (ZARYA)"
        assert tle.catalog_number == 25544
        assert tle.inclination_deg == pytest.approx(51.6416)
        assert tle.eccentricity == pytest.approx(0.0006703)
        assert tle.mean_motion_rev_day == pytest.approx(15.72125391)

    def test_parses_without_title_line(self):
        tle = parse_tle(ISS_TLE[1:])
        assert tle.name == "UNKNOWN"
        assert tle.catalog_number == 25544

    def test_rejects_wrong_line_count(self):
        with pytest.raises(ValueError, match="expected 2 or 3"):
            parse_tle(["only one line"])

    def test_rejects_bad_prefix(self):
        bad = ["X" + ISS_TLE[1][1:], ISS_TLE[2]]
        with pytest.raises(ValueError, match="must start"):
            parse_tle(bad)

    def test_rejects_checksum_mismatch(self):
        corrupted = ISS_TLE[1][:20] + "9" + ISS_TLE[1][21:]
        with pytest.raises(ValueError, match="checksum"):
            parse_tle([corrupted, ISS_TLE[2]])

    def test_rejects_short_line(self):
        with pytest.raises(ValueError, match="too short"):
            parse_tle(["1 25544U", ISS_TLE[2]])

    def test_iss_elements_are_leo(self):
        elements = parse_tle(ISS_TLE).to_elements()
        assert 300.0 < elements.altitude_km < 450.0
        assert math.degrees(elements.inclination_rad) == pytest.approx(51.64, abs=0.01)


class TestEmit:
    def test_emitted_record_parses_back(self):
        original = parse_tle(ISS_TLE)
        lines = emit_tle(original)
        recovered = parse_tle(lines)
        assert recovered.inclination_deg == pytest.approx(
            original.inclination_deg, abs=1e-3
        )
        assert recovered.mean_motion_rev_day == pytest.approx(
            original.mean_motion_rev_day, abs=1e-6
        )
        assert recovered.eccentricity == pytest.approx(
            original.eccentricity, abs=1e-6
        )

    def test_emitted_lines_have_valid_length(self):
        lines = emit_tle(parse_tle(ISS_TLE))
        assert len(lines[1]) == 69
        assert len(lines[2]) == 69


class TestElementsRoundTrip:
    def test_orbital_geometry_preserved(self):
        elements = OrbitalElements.circular(
            780.0, inclination_rad=math.radians(86.4),
            raan_rad=1.0, mean_anomaly_rad=2.0,
        )
        lines = tle_from_elements(elements, name="TEST")
        recovered = elements_from_tle(lines)
        assert recovered.semi_major_axis_km == pytest.approx(
            elements.semi_major_axis_km, abs=0.01
        )
        assert recovered.inclination_rad == pytest.approx(
            elements.inclination_rad, abs=1e-5
        )
        assert recovered.raan_rad == pytest.approx(elements.raan_rad, abs=1e-4)
        assert recovered.mean_anomaly_rad == pytest.approx(
            elements.mean_anomaly_rad, abs=1e-4
        )

    def test_eccentric_orbit_round_trip(self):
        elements = OrbitalElements(
            semi_major_axis_km=7500.0, eccentricity=0.02,
            inclination_rad=1.0, arg_perigee_rad=0.5,
        )
        recovered = elements_from_tle(tle_from_elements(elements))
        assert recovered.eccentricity == pytest.approx(0.02, abs=1e-6)
        assert recovered.arg_perigee_rad == pytest.approx(0.5, abs=1e-4)


class TestCatalog:
    def test_catalog_covers_whole_fleet(self, iridium):
        records = catalog_from_constellation(iridium)
        assert len(records) == len(iridium)
        # Every record must parse with a distinct catalog number.
        numbers = {parse_tle(r).catalog_number for r in records}
        assert len(numbers) == len(iridium)

    def test_catalog_names_carry_prefix(self, iridium):
        records = catalog_from_constellation(iridium, name_prefix="ACME")
        assert records[0][0].startswith("ACME-")
