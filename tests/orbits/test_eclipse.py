"""Tests for eclipse geometry and orbit-average power."""

import math

import numpy as np
import pytest

from repro.orbits.constants import EARTH_RADIUS_KM
from repro.orbits.eclipse import (
    eclipse_fraction,
    eclipse_windows,
    in_eclipse,
    orbit_average_generation_w,
    sun_direction,
)
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator

R_ORBIT = EARTH_RADIUS_KM + 780.0


class TestSunDirection:
    def test_unit_vector(self):
        for t in (0.0, 1e6, 1e7):
            assert np.linalg.norm(sun_direction(t)) == pytest.approx(1.0)

    def test_equinox_along_x(self):
        sun = sun_direction(0.0)
        assert sun[0] == pytest.approx(1.0)
        assert abs(sun[1]) < 1e-9
        assert abs(sun[2]) < 1e-9

    def test_half_year_reverses(self):
        from repro.orbits.eclipse import YEAR_S
        sun = sun_direction(YEAR_S / 2.0)
        assert sun[0] == pytest.approx(-1.0, abs=1e-9)

    def test_solstice_out_of_equator(self):
        from repro.orbits.eclipse import YEAR_S
        sun = sun_direction(YEAR_S / 4.0)
        assert abs(sun[2]) > 0.3  # tilted by the obliquity


class TestInEclipse:
    def test_sunward_side_lit(self):
        # At t=0 the sun is along +x; a satellite at +x is lit.
        assert not in_eclipse(np.array([R_ORBIT, 0.0, 0.0]), 0.0)

    def test_antisun_side_dark(self):
        assert in_eclipse(np.array([-R_ORBIT, 0.0, 0.0]), 0.0)

    def test_antisun_but_outside_cylinder_lit(self):
        # Behind the Earth but displaced beyond one Earth radius.
        position = np.array([-R_ORBIT, EARTH_RADIUS_KM + 1000.0, 0.0])
        assert not in_eclipse(position, 0.0)

    def test_terminator_side_lit(self):
        assert not in_eclipse(np.array([0.0, R_ORBIT, 0.0]), 0.0)


class TestEclipseFraction:
    def test_equatorial_orbit_at_equinox_sees_canonical_fraction(self):
        # Shadow half-angle = asin(R / r): fraction = angle / pi.
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        fraction = eclipse_fraction(KeplerPropagator(element), samples=720)
        expected = math.asin(EARTH_RADIUS_KM / R_ORBIT) / math.pi
        assert fraction == pytest.approx(expected, abs=0.01)

    def test_higher_orbit_less_eclipse(self):
        low = OrbitalElements.circular(400.0, inclination_rad=0.0)
        high = OrbitalElements.circular(1400.0, inclination_rad=0.0)
        assert (eclipse_fraction(KeplerPropagator(high))
                < eclipse_fraction(KeplerPropagator(low)))

    def test_dawn_dusk_orbit_nearly_eclipse_free(self):
        # Polar orbit whose plane contains the terminator (RAAN 90 deg at
        # equinox): the orbit normal points at the sun.
        element = OrbitalElements.circular(
            780.0, inclination_rad=math.pi / 2.0,
            raan_rad=math.pi / 2.0,
        )
        fraction = eclipse_fraction(KeplerPropagator(element), samples=720)
        assert fraction < 0.05

    def test_sample_validation(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        with pytest.raises(ValueError):
            eclipse_fraction(KeplerPropagator(element), samples=1)

    def test_fraction_bounded(self):
        element = OrbitalElements.circular(780.0, inclination_rad=1.0)
        fraction = eclipse_fraction(KeplerPropagator(element))
        assert 0.0 <= fraction <= 0.5


class TestGenerationAndWindows:
    def test_generation_scales_with_lit_fraction(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        propagator = KeplerPropagator(element)
        fraction = eclipse_fraction(propagator)
        average = orbit_average_generation_w(100.0, propagator)
        assert average == pytest.approx(100.0 * (1.0 - fraction))

    def test_generation_validation(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        with pytest.raises(ValueError):
            orbit_average_generation_w(-1.0, KeplerPropagator(element))

    def test_windows_cover_eclipse_fraction(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        propagator = KeplerPropagator(element)
        period = propagator.period_s
        windows = eclipse_windows(propagator, 0.0, period, step_s=10.0)
        assert len(windows) >= 1
        dark_time = sum(end - start for start, end in windows)
        fraction = eclipse_fraction(propagator, samples=720)
        assert dark_time / period == pytest.approx(fraction, abs=0.05)

    def test_windows_validation(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        with pytest.raises(ValueError):
            eclipse_windows(KeplerPropagator(element), 10.0, 10.0)
