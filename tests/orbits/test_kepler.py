"""Tests for Kepler propagation."""

import math

import numpy as np
import pytest

from repro.orbits.constants import EARTH_MU_KM3_S2, EARTH_RADIUS_KM
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import (
    KeplerPropagator,
    batch_positions,
    mean_motion,
    orbital_period,
    solve_kepler,
    solve_kepler_array,
    true_anomaly_from_eccentric,
)


class TestKeplerEquation:
    def test_circular_orbit_identity(self):
        # For e = 0, E = M exactly.
        for m in (0.0, 0.5, math.pi, 5.0):
            assert solve_kepler(m, 0.0) == pytest.approx(m % (2 * math.pi))

    def test_solution_satisfies_equation(self):
        for e in (0.01, 0.3, 0.7, 0.95):
            for m in (0.1, 1.0, 2.5, 4.0, 6.0):
                big_e = solve_kepler(m, e)
                assert big_e - e * math.sin(big_e) == pytest.approx(
                    m % (2 * math.pi), abs=1e-9
                )

    def test_rejects_hyperbolic_eccentricity(self):
        with pytest.raises(ValueError, match="eccentricity"):
            solve_kepler(1.0, 1.0)

    def test_true_anomaly_equals_eccentric_for_circular(self):
        assert true_anomaly_from_eccentric(1.2, 0.0) == pytest.approx(1.2)


class TestMeanMotion:
    def test_mean_motion_formula(self):
        a = EARTH_RADIUS_KM + 780.0
        assert mean_motion(a) == pytest.approx(math.sqrt(EARTH_MU_KM3_S2 / a**3))

    def test_rejects_nonpositive_axis(self):
        with pytest.raises(ValueError):
            mean_motion(0.0)

    def test_period_times_motion_is_two_pi(self):
        a = 7000.0
        assert mean_motion(a) * orbital_period(a) == pytest.approx(2 * math.pi)


class TestPropagation:
    def test_radius_constant_for_circular_orbit(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.2)
        prop = KeplerPropagator(el)
        radii = [
            np.linalg.norm(prop.position_at(t))
            for t in np.linspace(0, el.period_s, 17)
        ]
        assert max(radii) - min(radii) < 1e-6
        assert radii[0] == pytest.approx(EARTH_RADIUS_KM + 780.0)

    def test_position_repeats_after_one_period(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0,
                                      mean_anomaly_rad=0.7)
        prop = KeplerPropagator(el)
        p0 = prop.position_at(0.0)
        p1 = prop.position_at(el.period_s)
        assert np.allclose(p0, p1, atol=1e-6)

    def test_velocity_magnitude_is_circular_speed(self):
        el = OrbitalElements.circular(780.0, inclination_rad=0.5)
        _, vel = KeplerPropagator(el).state_at(100.0)
        expected = math.sqrt(EARTH_MU_KM3_S2 / el.semi_major_axis_km)
        assert np.linalg.norm(vel) == pytest.approx(expected, rel=1e-9)

    def test_velocity_perpendicular_to_position_for_circular(self):
        el = OrbitalElements.circular(780.0, inclination_rad=0.9)
        pos, vel = KeplerPropagator(el).state_at(42.0)
        assert abs(float(pos @ vel)) < 1e-6

    def test_equatorial_orbit_stays_in_equator(self):
        el = OrbitalElements.circular(780.0, inclination_rad=0.0)
        prop = KeplerPropagator(el)
        for t in np.linspace(0, el.period_s, 9):
            assert abs(prop.position_at(float(t))[2]) < 1e-9

    def test_polar_orbit_reaches_high_z(self):
        el = OrbitalElements.circular(780.0, inclination_rad=math.pi / 2)
        prop = KeplerPropagator(el)
        z_max = max(
            abs(prop.position_at(float(t))[2])
            for t in np.linspace(0, el.period_s, 33)
        )
        assert z_max == pytest.approx(EARTH_RADIUS_KM + 780.0, rel=1e-3)

    def test_epoch_offset_shifts_phase(self):
        el0 = OrbitalElements.circular(780.0, inclination_rad=1.0, epoch_s=0.0)
        el1 = OrbitalElements.circular(780.0, inclination_rad=1.0, epoch_s=100.0)
        p0 = KeplerPropagator(el0).position_at(0.0)
        p1 = KeplerPropagator(el1).position_at(100.0)
        assert np.allclose(p0, p1)

    def test_positions_at_returns_matrix(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0)
        out = KeplerPropagator(el).positions_at(np.array([0.0, 10.0, 20.0]))
        assert out.shape == (3, 3)


class TestJ2:
    def test_j2_polar_orbit_has_no_raan_drift(self):
        # cos(90 deg) = 0 -> no nodal regression for a perfectly polar orbit.
        el = OrbitalElements.circular(780.0, inclination_rad=math.pi / 2)
        prop = KeplerPropagator(el, include_j2=True)
        assert prop._raan_dot == pytest.approx(0.0, abs=1e-15)

    def test_j2_prograde_orbit_regresses_westward(self):
        el = OrbitalElements.circular(780.0, inclination_rad=math.radians(53.0))
        prop = KeplerPropagator(el, include_j2=True)
        assert prop._raan_dot < 0.0

    def test_j2_retrograde_orbit_precesses_eastward(self):
        el = OrbitalElements.circular(780.0, inclination_rad=math.radians(98.0))
        prop = KeplerPropagator(el, include_j2=True)
        assert prop._raan_dot > 0.0

    def test_sun_synchronous_rate_is_about_one_degree_per_day(self):
        # A ~98 deg orbit at ~780 km precesses close to 0.9856 deg/day.
        el = OrbitalElements.circular(780.0, inclination_rad=math.radians(98.5))
        prop = KeplerPropagator(el, include_j2=True)
        deg_per_day = math.degrees(prop._raan_dot) * 86400.0
        assert 0.5 < deg_per_day < 1.5

    def test_j2_preserves_orbit_radius(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0)
        prop = KeplerPropagator(el, include_j2=True)
        r = np.linalg.norm(prop.position_at(5000.0))
        assert r == pytest.approx(el.semi_major_axis_km, rel=1e-9)


class TestShapeContracts:
    """The (T, 3) contract: positions_at always returns a matrix."""

    def _prop(self):
        el = OrbitalElements.circular(780.0, inclination_rad=1.0)
        return KeplerPropagator(el)

    def test_scalar_time_yields_one_row(self):
        out = self._prop().positions_at(120.0)
        assert out.shape == (1, 3)
        assert np.allclose(out[0], self._prop().position_at(120.0))

    def test_python_int_time_yields_one_row(self):
        assert self._prop().positions_at(0).shape == (1, 3)

    def test_empty_time_array_yields_zero_rows(self):
        out = self._prop().positions_at(np.array([]))
        assert out.shape == (0, 3)

    def test_list_input_matches_array_input(self):
        prop = self._prop()
        from_list = prop.positions_at([0.0, 60.0])
        from_array = prop.positions_at(np.array([0.0, 60.0]))
        assert from_list.shape == (2, 3)
        assert np.array_equal(from_list, from_array)

    def test_multidimensional_times_rejected(self):
        with pytest.raises(ValueError, match="scalar or 1-D"):
            self._prop().positions_at(np.zeros((2, 2)))

    def test_batch_positions_shape_and_agreement(self):
        props = [self._prop(), self._prop()]
        times = np.array([0.0, 300.0, 600.0])
        batched = batch_positions(props, times)
        assert batched.shape == (2, 3, 3)
        for i, prop in enumerate(props):
            assert np.allclose(batched[i], prop.positions_at(times),
                               atol=1e-9)

    def test_batch_positions_empty_fleet(self):
        assert batch_positions([], np.array([0.0, 1.0])).shape == (0, 2, 3)

    def test_solve_kepler_array_matches_scalar(self):
        mean_anomalies = np.linspace(0.0, 2.0 * math.pi, 17)
        for ecc in (0.0, 0.01, 0.3, 0.85):
            vectorized = solve_kepler_array(mean_anomalies, ecc)
            scalar = np.array([solve_kepler(m, ecc) for m in mean_anomalies])
            assert np.allclose(vectorized, scalar, atol=1e-9)

    def test_solve_kepler_array_preserves_input_shape(self):
        grid = np.linspace(0.0, 6.0, 12).reshape(3, 4)
        assert solve_kepler_array(grid, 0.1).shape == (3, 4)


class TestBitwiseShapeIndependence:
    """Grid width must not change a single bit of any solved state.

    The batched epoch engine concatenates trials and primes whole grids,
    so the same (satellite, time) pair gets solved through 1-wide,
    T-wide, and fleet-flattened paths — all of which must agree exactly
    (elementwise ufuncs are exactly rounded and the frame rotation runs
    through a materialized-contiguous matrix; see ``_batch_states_flat``).
    """

    def _props(self, count=5):
        return [
            KeplerPropagator(OrbitalElements.circular(
                500.0 + 60.0 * i, inclination_rad=0.3 + 0.2 * i,
                raan_rad=0.5 * i, mean_anomaly_rad=0.9 * i,
            ))
            for i in range(count)
        ]

    def test_grid_solve_bitwise_equals_per_time(self):
        times = np.linspace(0.0, 7200.0, 9)
        for prop in self._props():
            grid = prop.positions_at(times)
            for k, t in enumerate(times):
                assert np.array_equal(grid[k], prop.positions_at(float(t))[0])

    def test_batch_positions_bitwise_equals_per_satellite(self):
        props = self._props()
        times = np.linspace(0.0, 7200.0, 6)
        batched = batch_positions(props, times)
        for i, prop in enumerate(props):
            assert np.array_equal(batched[i], prop.positions_at(times))

    def test_batch_positions_bitwise_independent_of_fleet_size(self):
        # The flat path lumps every (satellite, time) pair into one array;
        # slicing a bigger fleet must reproduce a smaller one's bits.
        props = self._props(7)
        times = np.linspace(0.0, 3600.0, 4)
        full = batch_positions(props, times)
        subset = batch_positions(props[:3], times)
        assert np.array_equal(full[:3], subset)

    def test_states_at_velocities_bitwise_stable(self):
        prop = self._props(1)[0]
        times = np.linspace(0.0, 5400.0, 5)
        _, velocities = prop.states_at(times)
        for k, t in enumerate(times):
            _, single = prop.states_at(float(t))
            assert np.array_equal(velocities[k], single[0])
