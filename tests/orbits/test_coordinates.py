"""Tests for coordinate transforms."""

import math

import numpy as np
import pytest

from repro.orbits.constants import EARTH_POLAR_RADIUS_KM, EARTH_RADIUS_KM
from repro.orbits.coordinates import (
    GeodeticPoint,
    ecef_to_eci,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    look_angles,
    subsatellite_point,
)


class TestGeodeticPoint:
    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError, match="latitude"):
            GeodeticPoint(91.0, 0.0)
        with pytest.raises(ValueError, match="latitude"):
            GeodeticPoint(-90.5, 0.0)

    def test_radian_properties(self):
        p = GeodeticPoint(45.0, -90.0)
        assert p.latitude_rad == pytest.approx(math.pi / 4)
        assert p.longitude_rad == pytest.approx(-math.pi / 2)


class TestGeodeticEcef:
    def test_equator_prime_meridian(self):
        ecef = geodetic_to_ecef(GeodeticPoint(0.0, 0.0, 0.0))
        assert ecef[0] == pytest.approx(EARTH_RADIUS_KM)
        assert abs(ecef[1]) < 1e-9
        assert abs(ecef[2]) < 1e-9

    def test_north_pole(self):
        ecef = geodetic_to_ecef(GeodeticPoint(90.0, 0.0, 0.0))
        assert abs(ecef[0]) < 1e-6
        assert ecef[2] == pytest.approx(EARTH_POLAR_RADIUS_KM, rel=1e-6)

    def test_altitude_extends_radially(self):
        low = geodetic_to_ecef(GeodeticPoint(30.0, 40.0, 0.0))
        high = geodetic_to_ecef(GeodeticPoint(30.0, 40.0, 100.0))
        assert np.linalg.norm(high) > np.linalg.norm(low)

    @pytest.mark.parametrize("lat,lon,alt", [
        (0.0, 0.0, 0.0),
        (45.0, 45.0, 10.0),
        (-33.9, 151.2, 0.5),
        (78.2, 15.6, 0.0),
        (-89.0, -170.0, 2.0),
    ])
    def test_round_trip(self, lat, lon, alt):
        point = GeodeticPoint(lat, lon, alt)
        recovered = ecef_to_geodetic(geodetic_to_ecef(point))
        assert recovered.latitude_deg == pytest.approx(lat, abs=1e-6)
        assert recovered.longitude_deg == pytest.approx(lon, abs=1e-6)
        assert recovered.altitude_km == pytest.approx(alt, abs=1e-6)

    def test_polar_axis_degenerate_case(self):
        point = ecef_to_geodetic(np.array([0.0, 0.0, 7000.0]))
        assert point.latitude_deg == pytest.approx(90.0)


class TestEciEcef:
    def test_identity_at_epoch(self):
        vec = np.array([7000.0, 100.0, -300.0])
        assert np.allclose(eci_to_ecef(vec, 0.0), vec)

    def test_round_trip(self):
        vec = np.array([7000.0, 100.0, -300.0])
        t = 4321.0
        assert np.allclose(ecef_to_eci(eci_to_ecef(vec, t), t), vec)

    def test_rotation_preserves_norm(self):
        vec = np.array([5000.0, 3000.0, 2000.0])
        assert np.linalg.norm(eci_to_ecef(vec, 1234.0)) == pytest.approx(
            np.linalg.norm(vec)
        )

    def test_z_axis_invariant(self):
        vec = np.array([0.0, 0.0, 7000.0])
        assert np.allclose(eci_to_ecef(vec, 5000.0), vec)

    def test_quarter_sidereal_day_rotates_90_degrees(self):
        from repro.orbits.constants import SIDEREAL_DAY_S
        vec = np.array([7000.0, 0.0, 0.0])
        rotated = eci_to_ecef(vec, SIDEREAL_DAY_S / 4.0)
        assert rotated[0] == pytest.approx(0.0, abs=1e-6)
        assert rotated[1] == pytest.approx(-7000.0, rel=1e-9)


class TestLookAngles:
    def test_satellite_at_zenith(self):
        observer = GeodeticPoint(0.0, 0.0, 0.0)
        target = geodetic_to_ecef(GeodeticPoint(0.0, 0.0, 780.0))
        _az, el, rng = look_angles(observer, target)
        assert el == pytest.approx(math.pi / 2, abs=1e-6)
        assert rng == pytest.approx(780.0, rel=1e-6)

    def test_satellite_due_north_has_zero_azimuth(self):
        observer = GeodeticPoint(0.0, 0.0, 0.0)
        target = geodetic_to_ecef(GeodeticPoint(5.0, 0.0, 780.0))
        az, el, _rng = look_angles(observer, target)
        assert az == pytest.approx(0.0, abs=1e-6)
        assert 0 < el < math.pi / 2

    def test_satellite_due_east(self):
        observer = GeodeticPoint(0.0, 0.0, 0.0)
        target = geodetic_to_ecef(GeodeticPoint(0.0, 5.0, 780.0))
        az, _el, _rng = look_angles(observer, target)
        assert az == pytest.approx(math.pi / 2, abs=1e-6)

    def test_below_horizon_negative_elevation(self):
        observer = GeodeticPoint(0.0, 0.0, 0.0)
        target = geodetic_to_ecef(GeodeticPoint(0.0, 170.0, 780.0))
        _az, el, _rng = look_angles(observer, target)
        assert el < 0.0

    def test_coincident_points(self):
        observer = GeodeticPoint(10.0, 20.0, 0.0)
        az, el, rng = look_angles(observer, observer.ecef())
        assert rng == 0.0
        assert el == pytest.approx(math.pi / 2)


class TestSubsatellitePoint:
    def test_equatorial_satellite_at_epoch(self):
        eci = np.array([EARTH_RADIUS_KM + 780.0, 0.0, 0.0])
        point = subsatellite_point(eci, 0.0)
        assert point.latitude_deg == pytest.approx(0.0, abs=1e-6)
        assert point.longitude_deg == pytest.approx(0.0, abs=1e-6)
        assert point.altitude_km == pytest.approx(780.0, rel=1e-3)
