"""Golden-value regression tests.

Every experiment flows through explicitly seeded generators, so headline
numbers are bit-stable.  These goldens pin the values EXPERIMENTS.md
reports; a change here means the reproduction's published numbers moved
and the document must be re-verified (it is not necessarily a bug — but
it is never silent).
"""

import pytest

from repro.experiments.figure2 import figure_2a_constellation
from repro.orbits.visibility import coverage_fraction
from repro.orbits.walker import iridium_like


class TestFigure2aGoldens:
    @pytest.fixture(scope="class")
    def report(self):
        return figure_2a_constellation()

    def test_isl_count(self, report):
        assert report.isl_count == 130

    def test_mean_isl_distance(self, report):
        assert report.mean_isl_distance_km == pytest.approx(3055.0, abs=5.0)

    def test_max_isl_distance(self, report):
        assert report.max_isl_distance_km == pytest.approx(5653.0, abs=5.0)

    def test_union_coverage_total(self, report):
        assert report.coverage_union == pytest.approx(1.0, abs=1e-6)

    def test_worst_case_coverage(self, report):
        assert report.coverage_worst_case == pytest.approx(0.490, abs=0.01)


class TestPhysicsGoldens:
    def test_iridium_period(self, iridium):
        assert iridium.elements[0].period_s == pytest.approx(6027.1, abs=1.0)

    def test_single_satellite_cap_fraction(self):
        from repro.orbits.constants import EARTH_SURFACE_AREA_KM2
        from repro.orbits.visibility import footprint_area_km2
        fraction = footprint_area_km2(780.0) / EARTH_SURFACE_AREA_KM2
        assert fraction == pytest.approx(0.0545, abs=0.0005)

    def test_sband_isl_rate_at_4000km(self):
        from repro.phy.modulation import achievable_rate_bps
        from repro.phy.rf import rf_link_budget, standard_sband_isl_terminal
        terminal = standard_sband_isl_terminal()
        budget = rf_link_budget(terminal, terminal, 4000.0)
        rate = achievable_rate_bps(budget.snr_db, budget.bandwidth_hz)
        assert rate == pytest.approx(9.9e6, rel=0.02)

    def test_ku_doppler_bound(self):
        from repro.phy.doppler import worst_case_doppler_ppm
        assert worst_case_doppler_ppm(780.0) == pytest.approx(24.9, abs=0.2)


class TestEconomicsGoldens:
    def test_medium_fleet_capex(self):
        from repro.core.interop import SizeClass, build_fleet
        from repro.economics.capex import constellation_budget
        fleet = build_fleet(iridium_like(), "golden", SizeClass.MEDIUM)
        budget = constellation_budget(fleet)
        assert budget.total_usd / 1e6 == pytest.approx(308.1, abs=1.0)
        assert budget.licensing_usd == pytest.approx(66 * 12_145.0)

    def test_entry_cost_savings_factor(self):
        from repro.core.interop import SizeClass, build_fleet
        from repro.economics.capex import entry_cost_comparison
        fleet = build_fleet(iridium_like(), "golden", SizeClass.MEDIUM)
        comparison = entry_cost_comparison(fleet, fleet, participant_count=6)
        assert comparison["savings_factor"] == pytest.approx(6.0)


class TestCoverageGoldens:
    def test_structured_fleet_coverage_at_masks(self):
        positions = iridium_like().positions_at(0.0)
        assert coverage_fraction(positions, 780.0) > 0.999
        assert coverage_fraction(
            positions, 780.0, min_elevation_deg=10.0
        ) == pytest.approx(0.997, abs=0.01)
