"""Tests for the BGP-style economics baseline."""

import pytest

from repro.economics.bgp import AsRelationship, BgpEconomy, RelationshipKind


def cp(a, b, price=0.03):
    return AsRelationship(a, b, RelationshipKind.CUSTOMER_PROVIDER, price)


def peer(a, b):
    return AsRelationship(a, b, RelationshipKind.PEER)


@pytest.fixture
def hierarchy():
    """small1, small2 are customers of big1, big2; big1-big2 peer."""
    economy = BgpEconomy()
    economy.add_relationship(cp("small1", "big1"))
    economy.add_relationship(cp("small2", "big2"))
    economy.add_relationship(peer("big1", "big2"))
    return economy


class TestRelationships:
    def test_settlement_free_kinds_reject_price(self):
        with pytest.raises(ValueError, match="settlement-free"):
            AsRelationship("a", "b", RelationshipKind.PEER, 0.05)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            AsRelationship("a", "b", RelationshipKind.CUSTOMER_PROVIDER, -1.0)

    def test_duplicate_rejected(self, hierarchy):
        with pytest.raises(ValueError, match="already exists"):
            hierarchy.add_relationship(cp("small1", "big1"))
        with pytest.raises(ValueError, match="already exists"):
            hierarchy.add_relationship(cp("big1", "small1"))

    def test_symmetric_lookup(self, hierarchy):
        assert hierarchy.relationship_between("big1", "small1") is not None


class TestValleyFree:
    def test_up_peer_down_is_valid(self, hierarchy):
        assert hierarchy.is_valley_free(["small1", "big1", "big2", "small2"])

    def test_down_then_up_is_a_valley(self, hierarchy):
        assert not hierarchy.is_valley_free(["big1", "small1", "big1"])

    def test_two_peer_edges_invalid(self):
        economy = BgpEconomy()
        economy.add_relationship(peer("a", "b"))
        economy.add_relationship(peer("b", "c"))
        assert not economy.is_valley_free(["a", "b", "c"])

    def test_missing_relationship_invalid(self, hierarchy):
        assert not hierarchy.is_valley_free(["small1", "small2"])

    def test_trivial_paths_valid(self, hierarchy):
        assert hierarchy.is_valley_free(["small1"])
        assert hierarchy.is_valley_free([])

    def test_siblings_transparent(self):
        economy = BgpEconomy()
        economy.add_relationship(
            AsRelationship("a", "a2", RelationshipKind.SIBLING)
        )
        economy.add_relationship(cp("a2", "p"))
        assert economy.is_valley_free(["a", "a2", "p"])

    def test_meshed_satellite_path_fails(self, hierarchy):
        # The weave the paper describes: in and out of the home system.
        path = ["small1", "big1", "small1", "big1"]
        assert not hierarchy.is_valley_free(path)


class TestSettlement:
    def test_customer_pays_on_every_transit_edge(self, hierarchy):
        deltas = hierarchy.settle_path(
            ["small1", "big1", "big2", "small2"], gigabytes=100.0
        )
        assert deltas["small1"] == pytest.approx(-3.0)
        assert deltas["big1"] == pytest.approx(3.0)
        # big1-big2 peering is free; big2-small2 is paid by small2.
        assert deltas["small2"] == pytest.approx(-3.0)
        assert deltas["big2"] == pytest.approx(3.0)

    def test_balances_accumulate(self, hierarchy):
        hierarchy.settle_path(["small1", "big1"], 10.0)
        hierarchy.settle_path(["small1", "big1"], 10.0)
        assert hierarchy.balances["small1"] == pytest.approx(-0.6)
        assert hierarchy.balances["big1"] == pytest.approx(0.6)

    def test_invalid_path_rejected(self, hierarchy):
        with pytest.raises(ValueError, match="valley-free"):
            hierarchy.settle_path(["big1", "small1", "big1"], 1.0)

    def test_check_can_be_disabled(self, hierarchy):
        deltas = hierarchy.settle_path(
            ["big1", "small1", "big1"], 1.0, require_valley_free=False
        )
        assert deltas  # both edges still billed

    def test_uncontracted_edge_rejected(self, hierarchy):
        with pytest.raises(ValueError, match="no relationship"):
            hierarchy.settle_path(["small1", "small2"], 1.0,
                                  require_valley_free=False)

    def test_rejects_negative_volume(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.settle_path(["small1", "big1"], -1.0)


class TestValleyFreeFraction:
    def test_fraction_counts(self, hierarchy):
        paths = [
            ["small1", "big1", "big2", "small2"],   # valid
            ["big1", "small1", "big1"],              # valley
            ["small1", "big1"],                      # valid
        ]
        assert hierarchy.valley_free_fraction(paths) == pytest.approx(2 / 3)

    def test_empty_input(self, hierarchy):
        assert hierarchy.valley_free_fraction([]) == 1.0
