"""Tests for settlement, peering recommendation, and the capex model."""

import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.economics.capex import (
    FCC_SMALLSAT_FEE_USD,
    SatelliteCostModel,
    constellation_budget,
    entry_cost_comparison,
)
from repro.economics.ledger import TrafficLedger
from repro.economics.peering import PeeringAdvisor
from repro.economics.settlement import RateCard, SettlementEngine
from repro.orbits.walker import iridium_like


@pytest.fixture
def ledger():
    led = TrafficLedger()
    led.file_path_transfer("t1", "isp-a", ["isp-b"], 50.0, 0.0)
    led.file_path_transfer("t2", "isp-b", ["isp-a"], 45.0, 1.0)
    led.file_path_transfer("t3", "isp-c", ["isp-a"], 5.0, 2.0)
    return led


class TestRateCard:
    def test_optical_premium_over_rf(self):
        card = RateCard("isp-x")
        assert card.optical_rate_per_gb > card.rf_rate_per_gb

    def test_peer_discount_applied(self):
        card = RateCard("isp-x", rf_rate_per_gb=0.04, peer_discount=0.5)
        assert card.rate_for("rf", is_peer=True) == pytest.approx(0.02)
        assert card.rate_for("rf", is_peer=False) == pytest.approx(0.04)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown segment kind"):
            RateCard("isp-x").rate_for("quantum", False)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateCard("x", rf_rate_per_gb=-0.01)
        with pytest.raises(ValueError):
            RateCard("x", peer_discount=1.5)


class TestSettlementEngine:
    def test_invoices_from_ledger(self, ledger):
        engine = SettlementEngine()
        invoices = engine.invoices_from_ledger(ledger)
        by_pair = {(i.customer, i.carrier): i for i in invoices}
        assert by_pair[("isp-a", "isp-b")].gigabytes == 50.0
        assert by_pair[("isp-a", "isp-b")].amount_usd == pytest.approx(
            50.0 * 0.04
        )

    def test_net_positions_balance_to_zero(self, ledger):
        engine = SettlementEngine()
        invoices = engine.invoices_from_ledger(ledger)
        positions = engine.net_positions(invoices)
        assert sum(positions.values()) == pytest.approx(0.0)

    def test_peering_discount_flows_through(self, ledger):
        engine = SettlementEngine(rate_cards={
            "isp-b": RateCard("isp-b", peer_discount=0.0),
        })
        engine.add_peering("isp-a", "isp-b")
        invoices = engine.invoices_from_ledger(ledger)
        ab = [i for i in invoices
              if i.customer == "isp-a" and i.carrier == "isp-b"][0]
        assert ab.amount_usd == 0.0

    def test_self_peering_rejected(self):
        with pytest.raises(ValueError):
            SettlementEngine().add_peering("isp-a", "isp-a")

    def test_bilateral_flows(self, ledger):
        engine = SettlementEngine()
        flows = engine.bilateral_flows(engine.invoices_from_ledger(ledger))
        assert flows[("isp-a", "isp-b")] > 0.0


class TestPeeringAdvisor:
    def test_symmetric_pair_recommended(self, ledger):
        advisor = PeeringAdvisor(min_mutual_gb=50.0, min_symmetry=0.5)
        recs = advisor.recommendations(ledger)
        recommended = {(r.isp_a, r.isp_b) for r in recs if r.recommended}
        assert ("isp-a", "isp-b") in recommended

    def test_asymmetric_pair_not_recommended(self, ledger):
        advisor = PeeringAdvisor(min_mutual_gb=1.0, min_symmetry=0.5)
        rec = [r for r in advisor.recommendations(ledger)
               if {r.isp_a, r.isp_b} == {"isp-a", "isp-c"}][0]
        assert not rec.recommended
        assert "asymmetric" in rec.rationale

    def test_low_volume_not_recommended(self):
        led = TrafficLedger()
        led.file_path_transfer("t1", "isp-a", ["isp-b"], 1.0, 0.0)
        led.file_path_transfer("t2", "isp-b", ["isp-a"], 1.0, 1.0)
        advisor = PeeringAdvisor(min_mutual_gb=100.0)
        rec = advisor.recommendations(led)[0]
        assert not rec.recommended
        assert "below threshold" in rec.rationale

    def test_recommended_sorted_first(self, ledger):
        recs = PeeringAdvisor(min_mutual_gb=50.0).recommendations(ledger)
        flags = [r.recommended for r in recs]
        assert flags == sorted(flags, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeeringAdvisor(min_mutual_gb=-1.0)
        with pytest.raises(ValueError):
            PeeringAdvisor(min_symmetry=2.0)


class TestCapex:
    @pytest.fixture(scope="class")
    def fleets(self):
        constellation = iridium_like()
        return {
            SizeClass.SMALL: build_fleet(constellation, "op", SizeClass.SMALL),
            SizeClass.MEDIUM: build_fleet(constellation, "op", SizeClass.MEDIUM),
            SizeClass.LARGE: build_fleet(constellation, "op", SizeClass.LARGE),
        }

    def test_fcc_fee_matches_paper(self):
        assert FCC_SMALLSAT_FEE_USD == 12_145.0

    def test_laser_terminal_dominates_small_sat_cost_delta(self, fleets):
        model = SatelliteCostModel()
        small_unit = model.unit_cost(fleets[SizeClass.SMALL][0])
        medium_unit = model.unit_cost(fleets[SizeClass.MEDIUM][0])
        # Medium adds a $500k laser terminal plus a bigger bus.
        assert medium_unit - small_unit > 500_000.0

    def test_size_classes_ordered_by_cost(self, fleets):
        model = SatelliteCostModel()
        costs = [
            model.unit_cost(fleets[size][0])
            for size in (SizeClass.SMALL, SizeClass.MEDIUM, SizeClass.LARGE)
        ]
        assert costs == sorted(costs)

    def test_budget_components_sum(self, fleets):
        budget = constellation_budget(fleets[SizeClass.MEDIUM])
        assert budget.total_usd == pytest.approx(
            budget.hardware_usd + budget.launch_usd + budget.licensing_usd
        )
        assert budget.fleet_size == 66
        assert budget.licensing_usd == pytest.approx(66 * FCC_SMALLSAT_FEE_USD)

    def test_per_satellite_average(self, fleets):
        budget = constellation_budget(fleets[SizeClass.SMALL])
        assert budget.per_satellite_usd == pytest.approx(
            budget.total_usd / 66
        )

    def test_entry_cost_collaboration_savings(self, fleets):
        comparison = entry_cost_comparison(
            fleets[SizeClass.MEDIUM], fleets[SizeClass.MEDIUM],
            participant_count=6,
        )
        assert comparison["savings_factor"] == pytest.approx(6.0)
        assert comparison["per_participant_usd"] < comparison["solo_usd"]

    def test_entry_cost_rejects_zero_participants(self, fleets):
        with pytest.raises(ValueError):
            entry_cost_comparison(fleets[SizeClass.SMALL],
                                  fleets[SizeClass.SMALL], 0)

    def test_launch_mass_includes_terminals(self, fleets):
        model = SatelliteCostModel()
        spec = fleets[SizeClass.MEDIUM][0]
        mass = model.launch_mass_kg(spec)
        assert mass > 150.0  # bus plus the 15 kg laser terminal and others
