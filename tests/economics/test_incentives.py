"""Tests for Shapley-based collaboration incentives."""

import pytest

from repro.economics.incentives import (
    coverage_utility,
    revenue_sharing,
    shapley_values,
    viable_service_utility,
)


class TestShapley:
    def test_symmetric_players_split_evenly(self):
        def utility(coalition):
            return float(len(coalition))
        values, _ = shapley_values(["a", "b", "c"], utility)
        for v in values.values():
            assert v == pytest.approx(1.0)

    def test_efficiency(self):
        def utility(coalition):
            return float(len(coalition)) ** 1.5
        values, cache = shapley_values(["a", "b", "c", "d"], utility)
        assert sum(values.values()) == pytest.approx(
            cache[frozenset("abcd")]
        )

    def test_dummy_player_gets_zero(self):
        def utility(coalition):
            return 1.0 if "a" in coalition else 0.0
        values, _ = shapley_values(["a", "b"], utility)
        assert values["a"] == pytest.approx(1.0)
        assert values["b"] == pytest.approx(0.0)

    def test_glove_game(self):
        # One left glove (a), two right gloves (b, c); a pair is worth 1.
        def utility(coalition):
            return 1.0 if "a" in coalition and (
                {"b", "c"} & set(coalition)) else 0.0
        values, _ = shapley_values(["a", "b", "c"], utility)
        assert values["a"] == pytest.approx(2 / 3)
        assert values["b"] == pytest.approx(1 / 6)
        assert values["c"] == pytest.approx(1 / 6)

    def test_nonzero_empty_coalition_rejected(self):
        with pytest.raises(ValueError, match="empty coalition"):
            shapley_values(["a"], lambda c: 1.0)

    def test_too_many_players_rejected(self):
        with pytest.raises(ValueError, match="intractable"):
            shapley_values([str(i) for i in range(13)], lambda c: 0.0)

    def test_duplicate_players_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            shapley_values(["a", "a"], lambda c: 0.0)


class TestRevenueSharing:
    def test_payments_sum_to_pool(self):
        def utility(coalition):
            return float(len(coalition))
        report = revenue_sharing(["a", "b", "c"], utility, 900.0)
        assert sum(report.payments.values()) == pytest.approx(900.0)

    def test_negative_pool_rejected(self):
        with pytest.raises(ValueError):
            revenue_sharing(["a"], lambda c: float(len(c)), -1.0)

    def test_linear_utility_no_surplus(self):
        # Purely additive utility: collaboration changes nothing.
        def utility(coalition):
            return float(len(coalition))
        report = revenue_sharing(["a", "b"], utility, 100.0)
        for surplus in report.collaboration_surplus.values():
            assert surplus == pytest.approx(0.0, abs=1e-9)
        assert report.all_gain


@pytest.fixture(scope="module")
def three_operator_fleets(iridium):
    from repro.core.interop import SizeClass, build_fleet
    fleet = build_fleet(iridium, "x", SizeClass.SMALL)
    return {
        "big": fleet[:40],
        "small1": fleet[40:53],
        "small2": fleet[53:],
    }


class TestCoverageUtilities:
    def test_coverage_utility_monotone(self, three_operator_fleets):
        utility = coverage_utility(three_operator_fleets)
        solo = utility(frozenset({"small1"}))
        pair = utility(frozenset({"small1", "small2"}))
        grand = utility(frozenset(three_operator_fleets))
        assert 0.0 < solo < pair <= grand <= 1.0

    def test_empty_coalition_zero(self, three_operator_fleets):
        assert coverage_utility(three_operator_fleets)(frozenset()) == 0.0

    def test_viable_service_zeroes_subthreshold(self, three_operator_fleets):
        utility = viable_service_utility(three_operator_fleets,
                                         viability_threshold=0.95)
        assert utility(frozenset({"small1"})) == 0.0
        assert utility(frozenset(three_operator_fleets)) > 0.95

    def test_viable_threshold_validation(self, three_operator_fleets):
        with pytest.raises(ValueError):
            viable_service_utility(three_operator_fleets,
                                   viability_threshold=0.0)

    def test_all_or_nothing_makes_collaboration_pay(self,
                                                    three_operator_fleets):
        """Paper Q4: under the all-or-nothing model everyone gains."""
        utility = viable_service_utility(three_operator_fleets,
                                         viability_threshold=0.95)
        report = revenue_sharing(list(three_operator_fleets), utility, 1000.0)
        assert report.all_gain
        assert all(v > 0.0 for v in report.payments.values())
        # The big operator is paid more than either small one.
        assert report.payments["big"] > report.payments["small1"]
        assert report.payments["big"] > report.payments["small2"]
