"""Tests for the cross-verifiable traffic ledger."""

import pytest

from repro.economics.ledger import LedgerMismatch, TrafficLedger, TransitRecord


class TestRecords:
    def test_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            TransitRecord("t1", "a", "a", "b", -1.0, 0.0)


class TestFiling:
    def test_path_transfer_files_both_sides(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer("t1", "isp-a", ["isp-b"], 5.0, 0.0)
        # Source's record + carrier's record.
        assert ledger.record_count == 2

    def test_duplicate_carriers_collapsed(self):
        ledger = TrafficLedger()
        # The paper's weave: in and out of isp-b twice.
        ledger.file_path_transfer(
            "t1", "isp-a", ["isp-b", "isp-c", "isp-b"], 5.0, 0.0
        )
        matrix = ledger.carried_matrix()
        assert matrix[("isp-a", "isp-b")] == 5.0
        assert matrix[("isp-a", "isp-c")] == 5.0


class TestCrossVerification:
    def test_honest_records_agree(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer("t1", "isp-a", ["isp-b"], 5.0, 0.0)
        assert ledger.cross_verify() == []
        assert ledger.agreed_volume("t1", "isp-b") == 5.0

    def test_fraud_detected(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer(
            "t1", "isp-a", ["isp-b"], 5.0, 0.0, misreport={"isp-b": 8.0}
        )
        mismatches = ledger.cross_verify()
        assert len(mismatches) == 1
        assert isinstance(mismatches[0], LedgerMismatch)
        assert mismatches[0].carrier_isp == "isp-b"
        assert mismatches[0].spread_gb == pytest.approx(3.0)

    def test_disputed_volume_is_none(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer(
            "t1", "isp-a", ["isp-b"], 5.0, 0.0, misreport={"isp-b": 8.0}
        )
        assert ledger.agreed_volume("t1", "isp-b") is None

    def test_tolerance_absorbs_metering_jitter(self):
        ledger = TrafficLedger(tolerance_gb=0.1)
        ledger.file_path_transfer(
            "t1", "isp-a", ["isp-b"], 5.0, 0.0, misreport={"isp-b": 5.05}
        )
        assert ledger.cross_verify() == []
        # Agreed volume is the minimum report.
        assert ledger.agreed_volume("t1", "isp-b") == 5.0

    def test_unknown_segment_none(self):
        assert TrafficLedger().agreed_volume("tx", "isp-z") is None

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            TrafficLedger(tolerance_gb=-1.0)


class TestCarriedMatrix:
    def test_aggregates_across_transfers(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer("t1", "isp-a", ["isp-b"], 5.0, 0.0)
        ledger.file_path_transfer("t2", "isp-a", ["isp-b"], 3.0, 1.0)
        assert ledger.carried_matrix()[("isp-a", "isp-b")] == 8.0

    def test_self_carriage_not_billable(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer("t1", "isp-a", ["isp-a", "isp-b"], 5.0, 0.0)
        matrix = ledger.carried_matrix()
        assert ("isp-a", "isp-a") not in matrix
        assert matrix[("isp-a", "isp-b")] == 5.0

    def test_disputed_segments_excluded_by_default(self):
        ledger = TrafficLedger()
        ledger.file_path_transfer(
            "t1", "isp-a", ["isp-b"], 5.0, 0.0, misreport={"isp-b": 9.0}
        )
        assert ledger.carried_matrix() == {}
        included = ledger.carried_matrix(exclude_disputed=False)
        # Conservative: minimum of the conflicting reports.
        assert included[("isp-a", "isp-b")] == 5.0

    def test_cross_verifiability_is_symmetric_knowledge(self):
        # Every party can independently compute the same matrix — the
        # paper's "easily cross-verifiable account".
        ledger = TrafficLedger()
        ledger.file_path_transfer("t1", "isp-a", ["isp-b", "isp-c"], 4.0, 0.0)
        ledger.file_path_transfer("t2", "isp-b", ["isp-a"], 2.0, 1.0)
        matrix = ledger.carried_matrix()
        assert matrix == {
            ("isp-a", "isp-b"): 4.0,
            ("isp-a", "isp-c"): 4.0,
            ("isp-b", "isp-a"): 2.0,
        }
