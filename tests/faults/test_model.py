"""Tests for the fault-schedule model."""

import pytest

from repro.faults.model import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    combine,
    link_target,
    parse_link_target,
    validate_against,
)


def _event(fault_id="f1", start_s=10.0, duration_s=5.0, **kwargs):
    defaults = dict(kind=FaultKind.SATELLITE, targets=("sat-a-0",))
    defaults.update(kwargs)
    return FaultEvent(fault_id=fault_id, start_s=start_s,
                      duration_s=duration_s, **defaults)


class TestFaultEvent:
    def test_end_time(self):
        assert _event(start_s=10.0, duration_s=5.0).end_s == 15.0

    def test_permanent_has_no_end(self):
        event = _event(duration_s=None)
        assert event.permanent
        assert event.end_s is None

    def test_rejects_empty_targets(self):
        with pytest.raises(ValueError):
            _event(targets=())

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            _event(start_s=-1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            _event(duration_s=-0.5)

    def test_rejects_malformed_link_target(self):
        with pytest.raises(ValueError):
            _event(kind=FaultKind.ISL_LINK, targets=("not-a-link",))

    def test_dict_round_trip(self):
        event = _event(cause="mtbf")
        assert FaultEvent.from_dict(event.as_dict()) == event

    def test_dict_round_trip_permanent(self):
        event = _event(duration_s=None)
        assert FaultEvent.from_dict(event.as_dict()) == event


class TestLinkTargets:
    def test_canonical_order(self):
        assert link_target("sat-b", "sat-a") == "sat-a|sat-b"

    def test_round_trip(self):
        assert parse_link_target(link_target("x", "y")) == ("x", "y")

    def test_rejects_pipe_in_id(self):
        with pytest.raises(ValueError):
            link_target("a|b", "c")


class TestFaultSchedule:
    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            FaultSchedule(events=[_event("dup"), _event("dup")])

    def test_transitions_ordered_and_paired(self):
        schedule = FaultSchedule(events=[
            _event("late", start_s=50.0, duration_s=10.0),
            _event("early", start_s=10.0, duration_s=100.0),
        ])
        edges = [(tr.time_s, tr.phase, tr.event.fault_id)
                 for tr in schedule.transitions()]
        assert edges == [
            (10.0, "fail", "early"),
            (50.0, "fail", "late"),
            (60.0, "repair", "late"),
            (110.0, "repair", "early"),
        ]

    def test_zero_mttr_fail_precedes_repair(self):
        schedule = FaultSchedule(events=[_event("z", start_s=5.0,
                                                duration_s=0.0)])
        phases = [tr.phase for tr in schedule.transitions()]
        assert phases == ["fail", "repair"]

    def test_permanent_fault_never_repairs(self):
        schedule = FaultSchedule(events=[_event("p", duration_s=None)])
        assert [tr.phase for tr in schedule.transitions()] == ["fail"]

    def test_simultaneous_transitions_sorted_by_id(self):
        schedule = FaultSchedule(events=[
            _event("b", start_s=5.0, duration_s=None),
            _event("a", start_s=5.0, duration_s=None),
        ])
        ids = [tr.event.fault_id for tr in schedule.transitions()]
        assert ids == ["a", "b"]

    def test_json_round_trip(self):
        schedule = FaultSchedule(events=[
            _event("f1"),
            _event("f2", duration_s=None, kind=FaultKind.PROVIDER,
                   targets=("acme",)),
        ], horizon_s=3600.0)
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored.horizon_s == 3600.0
        assert restored.events == schedule.events

    def test_json_is_deterministic(self):
        schedule = FaultSchedule(events=[_event("f1")], horizon_s=60.0)
        assert schedule.to_json() == schedule.to_json()

    def test_save_load(self, tmp_path):
        schedule = FaultSchedule(events=[_event("f1")], horizon_s=60.0)
        path = tmp_path / "sched.json"
        schedule.save(str(path))
        assert FaultSchedule.load(str(path)).events == schedule.events

    def test_combine_merges(self):
        merged = combine(
            FaultSchedule(events=[_event("a")], horizon_s=100.0),
            FaultSchedule(events=[_event("b")], horizon_s=200.0),
        )
        assert len(merged) == 2
        assert merged.horizon_s == 200.0

    def test_combine_rejects_id_clash(self):
        with pytest.raises(ValueError):
            combine(FaultSchedule(events=[_event("a")]),
                    FaultSchedule(events=[_event("a")]))

    def test_shifted(self):
        shifted = FaultSchedule(events=[_event("a", start_s=10.0)],
                                horizon_s=100.0).shifted(5.0)
        assert shifted.events[0].start_s == 15.0
        assert shifted.horizon_s == 105.0


class TestValidateAgainst:
    def test_flags_unknown_targets(self):
        schedule = FaultSchedule(events=[
            _event("known", targets=("sat-a-0",)),
            _event("ghost", targets=("sat-ghost",)),
        ])
        unknown = validate_against(schedule, satellite_ids=["sat-a-0"])
        assert unknown == ["sat-ghost"]

    def test_provider_checked_against_owners(self):
        schedule = FaultSchedule(events=[
            _event("w", kind=FaultKind.PROVIDER, targets=("nobody",)),
        ])
        assert validate_against(schedule, satellite_ids=[],
                                providers=["acme"]) == ["nobody"]

    def test_link_endpoints_checked(self):
        schedule = FaultSchedule(events=[
            _event("l", kind=FaultKind.ISL_LINK, targets=("sat-a|sat-z",)),
        ])
        assert validate_against(schedule,
                                satellite_ids=["sat-a"]) == ["sat-z"]
