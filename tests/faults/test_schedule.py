"""Tests for the seeded fault-schedule generators."""

import numpy as np
import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.faults.model import FaultKind
from repro.faults.schedule import (
    fraction_loss_schedule,
    ground_station_outage_schedule,
    link_flap_schedule,
    plane_loss_event,
    plane_members,
    provider_withdrawal_event,
    satellite_mtbf_schedule,
    satellite_outage_event,
)
from repro.orbits.walker import walker_star

SATS = [f"sat-x-{i}" for i in range(6)]


class TestRenewalSchedules:
    def test_same_seed_same_schedule(self):
        first = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=1800.0,
                                        mttr_s=300.0, seed=11)
        second = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=1800.0,
                                         mttr_s=300.0, seed=11)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        first = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=1800.0,
                                        mttr_s=300.0, seed=11)
        second = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=1800.0,
                                         mttr_s=300.0, seed=12)
        assert first.to_json() != second.to_json()

    def test_events_within_horizon(self):
        schedule = satellite_mtbf_schedule(SATS, 3600.0, mtbf_s=600.0,
                                           mttr_s=120.0, seed=3)
        assert schedule.events
        assert all(0.0 <= e.start_s < 3600.0 for e in schedule.events)
        assert all(e.kind is FaultKind.SATELLITE for e in schedule.events)

    def test_permanent_mttr_one_failure_per_satellite(self):
        schedule = satellite_mtbf_schedule(SATS, 100000.0, mtbf_s=600.0,
                                           mttr_s=None, seed=3)
        per_sat = {}
        for event in schedule.events:
            assert event.permanent
            per_sat[event.targets[0]] = per_sat.get(event.targets[0], 0) + 1
        assert all(count == 1 for count in per_sat.values())

    def test_zero_mttr_instant_repairs(self):
        schedule = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=900.0,
                                           mttr_s=0.0, seed=5)
        assert schedule.events
        assert all(e.duration_s == 0.0 for e in schedule.events)

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ValueError):
            satellite_mtbf_schedule(SATS, 3600.0, mtbf_s=0.0, mttr_s=60.0)

    def test_rejects_negative_mttr(self):
        with pytest.raises(ValueError):
            satellite_mtbf_schedule(SATS, 3600.0, mtbf_s=600.0, mttr_s=-1.0)

    def test_accepts_generator(self):
        rng = np.random.default_rng(11)
        from_rng = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=1800.0,
                                           mttr_s=300.0, seed=rng)
        from_int = satellite_mtbf_schedule(SATS, 7200.0, mtbf_s=1800.0,
                                           mttr_s=300.0, seed=11)
        assert from_rng.to_json() == from_int.to_json()

    def test_ground_station_schedule_kind(self):
        schedule = ground_station_outage_schedule(
            ["gs-a", "gs-b"], 7200.0, mtbf_s=1200.0, mttr_s=600.0, seed=2)
        assert all(e.kind is FaultKind.GROUND_STATION
                   for e in schedule.events)

    def test_link_flap_schedule_targets(self):
        schedule = link_flap_schedule(
            [("sat-b", "sat-a")], 7200.0, mtbf_s=600.0, mttr_s=30.0, seed=2)
        assert schedule.events
        assert all(e.kind is FaultKind.ISL_LINK for e in schedule.events)
        assert all(e.targets == ("sat-a|sat-b",) for e in schedule.events)


class TestCorrelatedEvents:
    @pytest.fixture(scope="class")
    def fleet(self):
        return build_fleet(walker_star(12, 3), "acme", SizeClass.SMALL)

    def test_plane_members_partition_fleet(self, fleet):
        planes = plane_members(fleet)
        assert len(planes) == 3
        members = [sat for group in planes.values() for sat in group]
        assert sorted(members) == sorted(s.satellite_id for s in fleet)

    def test_plane_loss_event_takes_whole_plane(self, fleet):
        event = plane_loss_event(fleet, 1, start_s=100.0, duration_s=600.0)
        assert event.kind is FaultKind.PLANE
        assert len(event.targets) == 4
        planes = plane_members(fleet)
        assert set(event.targets) == set(planes[sorted(planes)[1]])

    def test_plane_loss_rejects_bad_index(self, fleet):
        with pytest.raises(ValueError):
            plane_loss_event(fleet, 3, start_s=0.0)

    def test_provider_withdrawal_event(self):
        event = provider_withdrawal_event("acme", start_s=50.0)
        assert event.kind is FaultKind.PROVIDER
        assert event.targets == ("acme",)
        assert event.permanent

    def test_satellite_outage_event(self):
        event = satellite_outage_event(["s1", "s2"])
        assert event.start_s == 0.0
        assert event.permanent
        assert event.targets == ("s1", "s2")


class TestFractionLoss:
    def test_zero_fraction_empty(self):
        assert len(fraction_loss_schedule(SATS, 0.0, seed=1)) == 0

    def test_draw_matches_legacy_rng_sequence(self):
        # The schedule must make the exact rng.choice draw the original
        # static resilience_sweep made, so seeded results carry over.
        rng = np.random.default_rng(99)
        count = int(round(0.5 * len(SATS)))
        expected_idx = sorted(
            int(i) for i in rng.choice(len(SATS), size=count, replace=False)
        )
        schedule = fraction_loss_schedule(
            SATS, 0.5, seed=np.random.default_rng(99))
        assert list(schedule.events[0].targets) == [
            SATS[i] for i in expected_idx
        ]

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            fraction_loss_schedule(SATS, 1.0)


class TestRegionalBlackout:
    """Geographic footprint helpers and the blackout fault event."""

    @pytest.fixture
    def stations(self):
        from repro.ground.station import default_station_network
        return default_station_network()

    def test_great_circle_zero_for_same_point(self):
        from repro.faults.schedule import great_circle_km
        assert great_circle_km(-1.3, 36.8, -1.3, 36.8) == 0.0

    def test_great_circle_known_distance(self):
        from repro.faults.schedule import great_circle_km
        # Nairobi to Bahrain, roughly 3300 km.
        distance = great_circle_km(-1.3, 36.8, 26.1, 50.6)
        assert 3100.0 < distance < 3500.0

    def test_great_circle_antipodal_half_circumference(self):
        from repro.faults.schedule import EARTH_RADIUS_KM, great_circle_km
        distance = great_circle_km(0.0, 0.0, 0.0, 180.0)
        assert distance == pytest.approx(np.pi * EARTH_RADIUS_KM)

    def test_stations_within_zero_radius_empty(self, stations):
        from repro.faults.schedule import stations_within
        assert stations_within(stations, -1.3, 36.8, 0.0) == []
        assert stations_within(stations, -1.3, 36.8, -5.0) == []

    def test_stations_within_regional_footprint(self, stations):
        from repro.faults.schedule import stations_within
        assert stations_within(stations, -1.3, 36.8, 1500.0) == [
            "gs-nairobi"
        ]

    def test_stations_within_grows_with_radius(self, stations):
        from repro.faults.schedule import stations_within
        near = set(stations_within(stations, -1.3, 36.8, 1500.0))
        far = set(stations_within(stations, -1.3, 36.8, 4000.0))
        assert near < far

    def test_blackout_event_targets_and_kind(self, stations):
        from repro.faults.schedule import regional_blackout_event
        event = regional_blackout_event(stations, -1.3, 36.8, 1500.0,
                                        start_s=600.0, duration_s=1800.0)
        assert event.kind is FaultKind.GROUND_STATION
        assert event.targets == ("gs-nairobi",)
        assert event.start_s == 600.0
        assert event.duration_s == 1800.0
        assert event.cause == "regional-blackout"
        assert event.fault_id == "blackout-1500km"

    def test_blackout_event_permanent_by_default(self, stations):
        from repro.faults.schedule import regional_blackout_event
        event = regional_blackout_event(stations, -1.3, 36.8, 1500.0,
                                        start_s=0.0)
        assert event.permanent

    def test_blackout_empty_footprint_rejected(self, stations):
        from repro.faults.schedule import regional_blackout_event
        with pytest.raises(ValueError, match="no ground station"):
            regional_blackout_event(stations, 90.0, 0.0, 100.0,
                                    start_s=0.0)
