"""Tests for the fault injector against a live network."""

import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultEvent, FaultKind, FaultSchedule
from repro.faults.schedule import (
    provider_withdrawal_event,
    satellite_outage_event,
)
from repro.ground.station import default_station_network
from repro.orbits.walker import walker_star
from repro.simulation.engine import SimulationEngine


@pytest.fixture()
def small_network():
    fleet = build_fleet(walker_star(12, 3), "acme", SizeClass.SMALL)
    network = OpenSpaceNetwork(fleet, default_station_network())
    yield network
    network.clear_fault_state()


def _sat_event(network, count=1, fault_id="f", duration_s=None):
    ids = [spec.satellite_id for spec in network.satellites[:count]]
    return satellite_outage_event(ids, duration_s=duration_s,
                                  fault_id=fault_id)


class TestApplyRepair:
    def test_apply_masks_satellite(self, small_network):
        injector = FaultInjector(small_network)
        event = _sat_event(small_network, fault_id="one")
        assert injector.apply(event) == 1
        sat_id = event.targets[0]
        assert sat_id in small_network.failed_satellites
        snap = small_network.snapshot(0.0)
        assert sat_id not in snap.graph

    def test_repair_restores(self, small_network):
        injector = FaultInjector(small_network)
        event = _sat_event(small_network, fault_id="one")
        injector.apply(event)
        assert injector.repair(event) == 1
        assert not small_network.has_faults
        assert event.targets[0] in small_network.snapshot(0.0).graph

    def test_apply_is_idempotent_per_fault(self, small_network):
        injector = FaultInjector(small_network)
        event = _sat_event(small_network, fault_id="one")
        assert injector.apply(event) == 1
        assert injector.apply(event) == 0
        assert injector.applied_count == 1

    def test_repair_of_inactive_fault_is_noop(self, small_network):
        injector = FaultInjector(small_network)
        assert injector.repair(_sat_event(small_network)) == 0

    def test_refcount_overlapping_faults(self, small_network):
        # Two faults hold the same satellite: it must stay down until the
        # second repairs, and it must never be counted failed twice.
        injector = FaultInjector(small_network)
        sat_id = small_network.satellites[0].satellite_id
        first = satellite_outage_event([sat_id], fault_id="a")
        second = satellite_outage_event([sat_id], fault_id="b")
        assert injector.apply(first) == 1
        assert injector.apply(second) == 0  # already down: not re-failed
        assert injector.repair(first) == 0  # "b" still holds it
        assert sat_id in small_network.failed_satellites
        assert injector.repair(second) == 1
        assert sat_id not in small_network.failed_satellites

    def test_unknown_targets_skipped_not_raised(self, small_network):
        injector = FaultInjector(small_network)
        event = FaultEvent(fault_id="ghost", kind=FaultKind.SATELLITE,
                           targets=("sat-nobody-0",), start_s=0.0)
        assert injector.apply(event) == 0
        assert injector.skipped_targets == 1
        assert not small_network.has_faults

    def test_provider_event_expands_to_owned_fleet(self, small_network):
        injector = FaultInjector(small_network)
        event = provider_withdrawal_event("acme", start_s=0.0)
        failed = injector.apply(event)
        assert failed == len(small_network.satellites)
        assert injector.repair(event) == failed

    def test_unknown_provider_skipped(self, small_network):
        injector = FaultInjector(small_network)
        event = provider_withdrawal_event("nobody", start_s=0.0)
        assert injector.apply(event) == 0
        assert injector.skipped_targets == 1

    def test_station_fault_masks_gateway(self, small_network):
        injector = FaultInjector(small_network)
        station_id = small_network.ground_stations[0].station_id
        event = FaultEvent(fault_id="gw", kind=FaultKind.GROUND_STATION,
                           targets=(station_id,), start_s=0.0)
        injector.apply(event)
        assert station_id in small_network.failed_stations


class TestEngineScheduling:
    def test_transitions_run_in_sim_time(self, small_network):
        injector = FaultInjector(small_network)
        event = _sat_event(small_network, fault_id="timed",
                           duration_s=50.0)
        schedule = FaultSchedule(events=[
            FaultEvent(fault_id="timed", kind=event.kind,
                       targets=event.targets, start_s=10.0,
                       duration_s=50.0),
        ], horizon_s=100.0)
        engine = SimulationEngine()
        seen = []

        def hook(time_s, transition, inj):
            seen.append((time_s, transition.phase,
                         len(inj.failed_satellites)))

        assert injector.schedule_on(engine, schedule, hook=hook) == 2
        engine.run_until(100.0)
        assert seen == [(10.0, "fail", 1), (60.0, "repair", 0)]
        assert not small_network.has_faults

    def test_until_s_drops_late_transitions(self, small_network):
        injector = FaultInjector(small_network)
        schedule = FaultSchedule(events=[
            _sat_event(small_network, fault_id="late"),
        ])
        late = FaultSchedule(events=[
            FaultEvent(fault_id="late", kind=FaultKind.SATELLITE,
                       targets=schedule.events[0].targets,
                       start_s=500.0, duration_s=None),
        ])
        engine = SimulationEngine()
        assert injector.schedule_on(engine, late, until_s=100.0) == 0

    def test_apply_static_union_state(self, small_network):
        injector = FaultInjector(small_network)
        sats = [s.satellite_id for s in small_network.satellites]
        schedule = FaultSchedule(events=[
            satellite_outage_event(sats[:2], fault_id="a"),
            satellite_outage_event(sats[1:3], fault_id="b"),
        ])
        assert injector.apply_static(schedule) == 3
        assert small_network.failed_satellites == frozenset(sats[:3])


class TestRouterInvalidation:
    def test_router_notified_with_failed_elements(self, small_network):
        calls = []

        class _Router:
            def invalidate_routes_through(self, elements, from_time_s=0.0):
                calls.append((sorted(elements), from_time_s))
                return 0

        injector = FaultInjector(small_network, router=_Router())
        event = _sat_event(small_network, count=2, fault_id="r")
        injector.apply(event, now_s=42.0)
        assert calls == [(sorted(event.targets), 42.0)]


class TestChannelNotification:
    def test_apply_and_repair_bump_channel_epoch(self, small_network):
        from repro.reliability.channel import LossyControlChannel

        channel = LossyControlChannel(network=small_network)
        injector = FaultInjector(small_network, channel=channel)
        event = _sat_event(small_network, fault_id="epoch")
        injector.apply(event)
        assert channel.fault_epoch == 1
        injector.repair(event)
        assert channel.fault_epoch == 2

    def test_channel_sees_masks_through_network(self, small_network):
        from repro.reliability.channel import LossyControlChannel

        channel = LossyControlChannel(network=small_network)
        injector = FaultInjector(small_network, channel=channel)
        graph = small_network.snapshot(0.0).graph
        sat_id = next(spec.satellite_id for spec in small_network.satellites
                      if graph.degree(spec.satellite_id) > 0)
        event = satellite_outage_event([sat_id], fault_id="mask")
        neighbor = next(iter(graph[sat_id]))
        before = channel.hop_model(graph, sat_id, neighbor)
        assert before.loss_probability < 1.0
        injector.apply(event)
        # Even over the stale pre-fault graph, the live masks sever it.
        after = channel.hop_model(graph, sat_id, neighbor)
        assert after.loss_probability == 1.0


class TestNetworkFaultState:
    def test_set_fault_state_rejects_unknown_satellite(self, small_network):
        with pytest.raises(ValueError):
            small_network.set_fault_state(failed_satellites=["sat-bogus"])

    def test_link_fault_removes_edge(self, small_network):
        snap = small_network.snapshot(0.0)
        edge = next(iter(snap.isl_snapshot.graph.edges()))
        small_network.set_fault_state(failed_links=[tuple(sorted(edge))])
        masked = small_network.snapshot(0.0)
        assert not masked.graph.has_edge(*edge)

    def test_clear_fault_state(self, small_network):
        sat_id = small_network.satellites[0].satellite_id
        small_network.set_fault_state(failed_satellites=[sat_id])
        assert small_network.has_faults
        small_network.clear_fault_state()
        assert not small_network.has_faults
