"""Tests for the recovery-metrics layer."""

import math

import pytest

from repro.faults.metrics import (
    AvailabilityTimeline,
    OutageRecord,
    RecoveryTracker,
)
from repro.faults.model import FaultEvent, FaultKind


def _fault(fault_id="f1", targets=("sat-a",), start_s=100.0,
           duration_s=600.0):
    return FaultEvent(fault_id=fault_id, kind=FaultKind.SATELLITE,
                      targets=targets, start_s=start_s,
                      duration_s=duration_s)


class TestAvailabilityTimeline:
    def test_hold_last_sample(self):
        timeline = AvailabilityTimeline("u")
        timeline.record(0.0, True)
        timeline.record(50.0, False)
        timeline.record(75.0, True)
        assert timeline.availability(0.0, 100.0) == pytest.approx(0.75)

    def test_before_first_sample_counts_unavailable(self):
        timeline = AvailabilityTimeline("u")
        timeline.record(50.0, True)
        assert timeline.availability(0.0, 100.0) == pytest.approx(0.5)

    def test_empty_timeline_is_zero(self):
        assert AvailabilityTimeline("u").availability(0.0, 10.0) == 0.0

    def test_out_of_order_insert(self):
        timeline = AvailabilityTimeline("u")
        timeline.record(0.0, True)
        timeline.record(90.0, True)  # future recovery mark
        timeline.record(40.0, False)
        assert [t for t, _ in timeline.samples] == [0.0, 40.0, 90.0]
        assert timeline.availability(0.0, 100.0) == pytest.approx(0.5)

    def test_equal_time_last_writer_wins(self):
        timeline = AvailabilityTimeline("u")
        timeline.record(10.0, True)
        timeline.record(10.0, False)
        assert timeline.samples == [(10.0, False)]

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            AvailabilityTimeline("u").availability(5.0, 5.0)


class TestOutageRecord:
    def test_open_duration_charged_to_horizon(self):
        outage = OutageRecord("u", "f", start_s=100.0)
        assert outage.open
        assert outage.duration_s(700.0) == 600.0

    def test_closed_duration(self):
        outage = OutageRecord("u", "f", start_s=100.0, recovered_s=130.0)
        assert not outage.open
        assert outage.duration_s(700.0) == 30.0


class TestRecoveryTracker:
    def test_rejects_negative_reroute_delay(self):
        with pytest.raises(ValueError):
            RecoveryTracker(reroute_delay_s=-1.0)

    def test_untouched_user_not_charged(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        tracker.record_probe(0.0, "u", ["sat-x", "gs-1"])
        event = _fault(targets=("sat-other",))
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, {"sat-other"}, set(), "u",
                                  ["sat-x", "gs-1"])
        assert tracker.outages == []
        assert tracker.summary()["faults_absorbed"] == 1

    def test_severed_with_alternate_is_rerouted(self):
        tracker = RecoveryTracker(reroute_delay_s=15.0, horizon_s=1000.0)
        tracker.record_probe(0.0, "u", ["sat-a", "gs-1"])
        event = _fault()
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, {"sat-a"}, set(), "u",
                                  ["sat-b", "gs-1"])
        summary = tracker.summary()
        assert summary["flows_rerouted"] == 1
        assert summary["flows_dropped"] == 0
        assert summary["mean_time_to_reroute_s"] == pytest.approx(15.0)
        # 15 s down out of 1000 s.
        assert summary["mean_availability"] == pytest.approx(0.985)

    def test_severed_without_alternate_is_dropped(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        tracker.record_probe(0.0, "u", ["sat-a", "gs-1"])
        event = _fault()
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, {"sat-a"}, set(), "u", None)
        summary = tracker.summary()
        assert summary["flows_dropped"] == 1
        assert summary["flows_unrecovered"] == 1

    def test_dropped_flow_recovers_at_repair_probe(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        tracker.record_probe(0.0, "u", ["sat-a", "gs-1"])
        event = _fault(start_s=100.0, duration_s=200.0)
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, {"sat-a"}, set(), "u", None)
        tracker.on_fault_repaired(300.0, event)
        tracker.record_probe(300.0, "u", ["sat-a", "gs-1"])
        summary = tracker.summary()
        assert summary["flows_dropped"] == 1
        assert summary["flows_unrecovered"] == 0
        assert summary["mean_restore_s"] == pytest.approx(200.0)
        assert summary["observed_mttr_s"] == pytest.approx(200.0)
        # Recovery arrived only with the repair: not a reroute.
        assert tracker.outages[0].rerouted is False

    def test_recovery_while_fault_active_counts_as_reroute(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        tracker.record_probe(0.0, "u", ["sat-a", "gs-1"])
        event = _fault(start_s=100.0, duration_s=600.0)
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, {"sat-a"}, set(), "u", None)
        # Later probe finds service while the fault is still active.
        tracker.record_probe(160.0, "u", ["sat-b", "gs-2"])
        assert tracker.outages[0].rerouted is True

    def test_link_severing_checked_on_edges(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        tracker.record_probe(0.0, "u", ["sat-b", "sat-a", "gs-1"])
        event = FaultEvent(fault_id="link", kind=FaultKind.ISL_LINK,
                           targets=("sat-a|sat-b",), start_s=100.0,
                           duration_s=60.0)
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, set(), {("sat-a", "sat-b")},
                                  "u", ["sat-c", "gs-1"])
        assert tracker.summary()["flows_rerouted"] == 1

    def test_mttr_nan_when_nothing_repaired(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        event = _fault(duration_s=None)
        tracker.on_fault_applied(100.0, event, 1, 0)
        assert math.isnan(tracker.observed_mttr_s())
        summary = tracker.summary()
        assert summary["faults_repaired"] == 0

    def test_unserved_user_never_severed(self):
        tracker = RecoveryTracker(horizon_s=1000.0)
        tracker.record_probe(0.0, "u", None)  # never had service
        event = _fault()
        tracker.on_fault_applied(100.0, event, 1, 0)
        tracker.probe_after_fault(100.0, event, {"sat-a"}, set(), "u", None)
        assert tracker.outages == []
