"""Regression tests for the benchmark harness CLI surface.

These shell out to ``benchmarks/run_bench.py`` the way CI does, but
only exercise argument-validation paths that exit before any benchmark
runs, so they stay fast.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RUN_BENCH = REPO_ROOT / "benchmarks" / "run_bench.py"


def run_bench(*argv):
    return subprocess.run(
        [sys.executable, str(RUN_BENCH), *argv],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestOnlyFlag:
    def test_unknown_case_name_fails_with_catalog(self):
        proc = run_bench("--only", "bogus-case")
        assert proc.returncode == 1
        assert "unknown benchmark case(s)" in proc.stderr
        assert "bogus-case" in proc.stderr
        # The error lists the valid names so the CI matrix is
        # self-diagnosing when a case is renamed.
        assert "scale" in proc.stderr

    def test_mixed_known_and_unknown_still_fails(self):
        proc = run_bench("--only", "scale", "nope")
        assert proc.returncode == 1
        assert "nope" in proc.stderr

    def test_only_rejects_check_combination(self):
        proc = run_bench("--only", "scale", "--check")
        assert proc.returncode == 2
        assert "--only cannot be combined" in proc.stderr

    def test_only_rejects_write_baseline_combination(self):
        proc = run_bench("--only", "scale", "--write-baseline")
        assert proc.returncode == 2
        assert "--only cannot be combined" in proc.stderr
