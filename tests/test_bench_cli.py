"""Regression tests for the benchmark harness CLI surface.

These shell out to ``benchmarks/run_bench.py`` the way CI does, but
only exercise argument-validation paths that exit before any benchmark
runs, so they stay fast.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RUN_BENCH = REPO_ROOT / "benchmarks" / "run_bench.py"


def run_bench(*argv):
    return subprocess.run(
        [sys.executable, str(RUN_BENCH), *argv],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestOnlyFlag:
    def test_unknown_case_name_fails_with_catalog(self):
        proc = run_bench("--only", "bogus-case")
        assert proc.returncode == 1
        assert "unknown benchmark case(s)" in proc.stderr
        assert "bogus-case" in proc.stderr
        # The error lists the valid names so the CI matrix is
        # self-diagnosing when a case is renamed.
        assert "scale" in proc.stderr

    def test_mixed_known_and_unknown_still_fails(self):
        proc = run_bench("--only", "scale", "nope")
        assert proc.returncode == 1
        assert "nope" in proc.stderr

    def test_only_rejects_check_combination(self):
        proc = run_bench("--only", "scale", "--check")
        assert proc.returncode == 2
        assert "--only cannot be combined" in proc.stderr

    def test_only_rejects_write_baseline_combination(self):
        proc = run_bench("--only", "scale", "--write-baseline")
        assert proc.returncode == 2
        assert "--only cannot be combined" in proc.stderr


class TestRepeatFlag:
    def test_repeat_must_be_positive(self):
        proc = run_bench("--repeat", "0", "--only", "scale")
        assert proc.returncode == 2
        assert "--repeat must be >= 1" in proc.stderr

    def test_negative_repeat_rejected(self):
        proc = run_bench("--repeat", "-3", "--only", "scale")
        assert proc.returncode == 2
        assert "--repeat must be >= 1" in proc.stderr


class TestSectionCases:
    def test_error_catalog_lists_digest_sections(self):
        # `--only engine_equivalence` is how the CI smoke matrix pairs a
        # timed case with its digest gate, so the catalog in the error
        # message must advertise the section names too.
        proc = run_bench("--only", "bogus-case")
        assert proc.returncode == 1
        assert "engine_equivalence" in proc.stderr
        assert "backend_equivalence" in proc.stderr
        assert "determinism" in proc.stderr

    def test_unknown_name_beside_section_still_fails(self):
        proc = run_bench("--only", "engine_equivalence", "bogus-case")
        assert proc.returncode == 1
        assert "bogus-case" in proc.stderr
