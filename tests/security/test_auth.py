"""Tests for RADIUS-style authentication."""

import pytest

from repro.security.auth import (
    AccessAccept,
    AccessReject,
    RadiusServer,
    _hide_password,
    _reveal_password,
    _xor_bytes,
)


@pytest.fixture
def server():
    s = RadiusServer("isp-home", b"shared-secret")
    s.enroll("alice", b"correct-horse")
    return s


class TestXorBytes:
    def test_equal_lengths_xor(self):
        assert _xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_mismatched_lengths_raise(self):
        # Regression: zip() used to silently truncate to the shorter
        # operand, corrupting hidden passwords instead of failing loudly.
        with pytest.raises(ValueError, match="equal length"):
            _xor_bytes(b"\x00" * 16, b"\x00" * 15)

    def test_empty_operands_allowed(self):
        assert _xor_bytes(b"", b"") == b""


class TestPasswordHiding:
    def test_round_trip(self):
        secret, auth = b"secret", b"\x01" * 16
        for pw in (b"x", b"a-longer-password", b"p" * 40, b"p" * 64):
            hidden = _hide_password(pw, secret, auth)
            assert _reveal_password(hidden, secret, auth) == pw

    def test_hidden_is_not_plaintext(self):
        hidden = _hide_password(b"password", b"secret", b"\x02" * 16)
        assert b"password" not in hidden

    def test_hidden_length_multiple_of_32(self):
        hidden = _hide_password(b"pw", b"secret", b"\x00" * 16)
        assert len(hidden) % 32 == 0

    def test_wrong_secret_garbles(self):
        auth = b"\x03" * 16
        hidden = _hide_password(b"password", b"secret", auth)
        assert _reveal_password(hidden, b"other", auth) != b"password"

    def test_rejects_empty_password(self):
        with pytest.raises(ValueError):
            _hide_password(b"", b"secret", b"\x00" * 16)

    def test_reveal_rejects_bad_length(self):
        with pytest.raises(ValueError):
            _reveal_password(b"short", b"secret", b"\x00" * 16)


class TestServer:
    def test_accept_with_correct_credentials(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        response = server.handle(request, now_s=100.0)
        assert isinstance(response, AccessAccept)
        assert response.certificate.user_id == "alice"
        assert response.certificate.issuer == "isp-home"
        assert server.accept_count == 1

    def test_reject_wrong_password(self, server):
        request = server.make_request("alice", b"wrong", "sat-1")
        response = server.handle(request)
        assert isinstance(response, AccessReject)
        assert response.reason == "bad credentials"
        assert server.reject_count == 1

    def test_reject_unknown_user(self, server):
        request = server.make_request("mallory", b"whatever", "sat-1")
        response = server.handle(request)
        assert isinstance(response, AccessReject)
        assert "unknown user" in response.reason

    def test_reject_realm_mismatch(self, server):
        other = RadiusServer("isp-other", b"shared-secret")
        request = other.make_request("alice", b"correct-horse", "sat-1")
        response = server.handle(request)
        assert isinstance(response, AccessReject)
        assert "realm mismatch" in response.reason

    def test_certificate_validity_window(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        response = server.handle(request, now_s=500.0, validity_s=3600.0)
        cert = response.certificate
        assert cert.issued_at_s == 500.0
        assert cert.expires_at_s == 4100.0

    def test_response_hmac_verifies(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        response = server.handle(request)
        assert server.verify_response_hmac(request, response)

    def test_response_hmac_detects_forgery(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        response = server.handle(request)
        forged = AccessAccept(
            user_id=response.user_id,
            certificate=response.certificate,
            response_hmac=b"\x00" * 32,
        )
        assert not server.verify_response_hmac(request, forged)

    def test_requires_secret(self):
        with pytest.raises(ValueError):
            RadiusServer("isp", b"")

    def test_enroll_requires_password(self, server):
        with pytest.raises(ValueError):
            server.enroll("bob", b"")

    def test_each_request_fresh_authenticator(self, server):
        r1 = server.make_request("alice", b"correct-horse", "sat-1")
        r2 = server.make_request("alice", b"correct-horse", "sat-1")
        assert r1.authenticator != r2.authenticator
        assert r1.hidden_password != r2.hidden_password


class TestDuplicateDetection:
    """RFC 2865-style retransmission handling: replays are idempotent."""

    def test_retransmission_returns_cached_response(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        first = server.handle(request, now_s=10.0)
        replay = server.handle(request, now_s=11.0)
        assert replay is first
        assert server.duplicate_count == 1

    def test_retransmission_does_not_double_count(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        for _ in range(4):
            server.handle(request, now_s=10.0)
        assert server.accept_count == 1

    def test_retransmission_does_not_reissue_certificate(self, server):
        request = server.make_request("alice", b"correct-horse", "sat-1")
        first = server.handle(request, now_s=10.0)
        replay = server.handle(request, now_s=99.0)
        assert replay.certificate.serial == first.certificate.serial

    def test_rejects_cached_too(self, server):
        request = server.make_request("alice", b"wrong", "sat-1")
        first = server.handle(request)
        replay = server.handle(request)
        assert isinstance(replay, AccessReject)
        assert replay is first
        assert server.reject_count == 1

    def test_distinct_requests_not_deduplicated(self, server):
        r1 = server.make_request("alice", b"correct-horse", "sat-1")
        r2 = server.make_request("alice", b"correct-horse", "sat-1")
        server.handle(r1)
        server.handle(r2)
        assert server.duplicate_count == 0
        assert server.accept_count == 2
