"""Tests for roaming certificates and trust stores."""

import pytest

from repro.security.certificates import (
    CertificateAuthority,
    CertificateError,
    TrustStore,
)


@pytest.fixture
def authority():
    return CertificateAuthority("isp-home", signing_key=b"k" * 32)


class TestIssueVerify:
    def test_valid_certificate_verifies(self, authority):
        cert = authority.issue("alice", now_s=0.0, validity_s=100.0)
        authority.verify(cert, now_s=50.0)
        assert authority.is_valid(cert, 50.0)

    def test_expired_certificate_fails(self, authority):
        cert = authority.issue("alice", now_s=0.0, validity_s=100.0)
        with pytest.raises(CertificateError, match="expired"):
            authority.verify(cert, now_s=101.0)

    def test_not_yet_valid_fails(self, authority):
        cert = authority.issue("alice", now_s=1000.0, validity_s=100.0)
        with pytest.raises(CertificateError, match="not yet valid"):
            authority.verify(cert, now_s=500.0)

    def test_tampered_user_fails(self, authority):
        from dataclasses import replace
        cert = authority.issue("alice", now_s=0.0)
        forged = replace(cert, user_id="mallory")
        with pytest.raises(CertificateError, match="signature"):
            authority.verify(forged, now_s=1.0)

    def test_wrong_issuer_fails(self, authority):
        other = CertificateAuthority("isp-other", signing_key=b"k" * 32)
        cert = other.issue("alice", now_s=0.0)
        with pytest.raises(CertificateError, match="issuer mismatch"):
            authority.verify(cert, now_s=1.0)

    def test_revocation(self, authority):
        cert = authority.issue("alice", now_s=0.0)
        authority.revoke(cert.serial)
        with pytest.raises(CertificateError, match="revoked"):
            authority.verify(cert, now_s=1.0)
        assert authority.revoked_count == 1

    def test_serials_unique(self, authority):
        serials = {authority.issue("alice", 0.0).serial for _ in range(20)}
        assert len(serials) == 20
        assert authority.issued_count == 20

    def test_rejects_nonpositive_validity(self, authority):
        with pytest.raises(ValueError):
            authority.issue("alice", now_s=0.0, validity_s=0.0)

    def test_key_generated_when_omitted(self):
        a = CertificateAuthority("x")
        b = CertificateAuthority("x")
        assert a.verification_key != b.verification_key


class TestTrustStore:
    def test_verifies_via_registered_authority(self, authority):
        store = TrustStore()
        store.add_authority(authority)
        cert = authority.issue("alice", now_s=0.0)
        store.verify(cert, now_s=1.0)

    def test_unknown_issuer_fails(self, authority):
        store = TrustStore()
        cert = authority.issue("alice", now_s=0.0)
        with pytest.raises(CertificateError, match="no trust anchor"):
            store.verify(cert, now_s=1.0)

    def test_known_issuers(self, authority):
        store = TrustStore()
        store.add_authority(authority)
        store.add_authority(CertificateAuthority("isp-b"))
        assert store.known_issuers() == {"isp-home", "isp-b"}
