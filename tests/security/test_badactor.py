"""Tests for bad-actor detection and quarantine."""

import pytest

from repro.security.badactor import BadActorMonitor, REPORT_SEVERITY, TrustScore


class TestTrustScore:
    def test_reports_reduce_score(self):
        score = TrustScore("op")
        score.apply_report("transit_drop", 0.05)
        assert score.score == pytest.approx(0.95)
        assert score.reports["transit_drop"] == 1

    def test_score_floors_at_zero(self):
        score = TrustScore("op")
        for _ in range(10):
            score.apply_report("interception_attempt", 0.6)
        assert score.score == 0.0

    def test_decay_recovers_and_caps(self):
        score = TrustScore("op", score=0.5)
        score.decay(3600.0, recovery_per_hour=0.1)
        assert score.score == pytest.approx(0.6)
        score.decay(36000.0, recovery_per_hour=0.2)
        assert score.score == 1.0


class TestMonitor:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown report kind"):
            BadActorMonitor().report("op", "jaywalking")

    def test_severe_reports_quarantine(self):
        monitor = BadActorMonitor(cutoff_threshold=0.4)
        monitor.report("evil", "interception_attempt")
        monitor.report("evil", "forged_certificate")
        assert monitor.is_quarantined("evil")
        assert "evil" in monitor.quarantined_providers

    def test_minor_reports_do_not_quarantine(self):
        monitor = BadActorMonitor()
        for _ in range(5):
            monitor.report("sloppy", "transit_drop")
        assert not monitor.is_quarantined("sloppy")
        assert monitor.trust_of("sloppy") == pytest.approx(0.75)

    def test_recovery_with_hysteresis(self):
        monitor = BadActorMonitor(cutoff_threshold=0.4,
                                  reinstate_threshold=0.7,
                                  recovery_per_hour=0.1)
        monitor.report("op", "interception_attempt")
        monitor.report("op", "interception_attempt")  # score 0, quarantined
        assert monitor.is_quarantined("op")
        monitor.tick(3600.0 * 5)  # score 0.5 < reinstate threshold
        assert monitor.is_quarantined("op")
        monitor.tick(3600.0 * 3)  # score 0.8 >= 0.7
        assert not monitor.is_quarantined("op")

    def test_events_logged(self):
        monitor = BadActorMonitor()
        monitor.report("op", "beacon_spoofing", now_s=10.0)
        monitor.report("op", "beacon_spoofing", now_s=20.0)
        kinds = [kind for _, _, kind in monitor.events]
        assert kinds.count("beacon_spoofing") == 2
        assert "quarantined" in kinds

    def test_unreported_provider_fully_trusted(self):
        assert BadActorMonitor().trust_of("anyone") == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BadActorMonitor(cutoff_threshold=0.8, reinstate_threshold=0.5)

    def test_tick_rejects_negative(self):
        with pytest.raises(ValueError):
            BadActorMonitor().tick(-1.0)

    def test_severity_table_covers_paper_threats(self):
        # Interception and forgery — the threats the paper names — must be
        # the most severe kinds.
        assert REPORT_SEVERITY["interception_attempt"] == max(
            REPORT_SEVERITY.values()
        )
        assert REPORT_SEVERITY["forged_certificate"] >= 0.5
