"""Bad-actor quarantine composed with fault injection.

The quarantine path removes a provider's fleet *before* the network is
built; the fault injector removes elements *inside* a built network.  These
two removal mechanisms must compose without double-removing anything: a
fault aimed at an already-quarantined satellite is skipped (the element
simply is not there), and overlapping faults on the same element keep it
down until every holder releases it.
"""

import pytest

from repro.core.federation import Federation, Operator
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.faults.inject import FaultInjector
from repro.faults.schedule import (
    provider_withdrawal_event,
    satellite_outage_event,
)
from repro.ground.station import default_station_network
from repro.orbits.walker import walker_star
from repro.security.badactor import BadActorMonitor


def _federation_with_quarantined_evil():
    monitor = BadActorMonitor()
    federation = Federation(monitor=monitor)
    federation.admit(Operator(
        "good", satellites=build_fleet(walker_star(8, 2), "good",
                                       SizeClass.SMALL)))
    federation.admit(Operator(
        "evil", satellites=build_fleet(walker_star(4, 2), "evil",
                                       SizeClass.SMALL)))
    monitor.report("evil", "interception_attempt")
    monitor.report("evil", "forged_certificate")
    assert monitor.is_quarantined("evil")
    return federation


@pytest.fixture()
def quarantined_setup():
    federation = _federation_with_quarantined_evil()
    network = OpenSpaceNetwork(federation.all_satellites(),
                               default_station_network())
    yield federation, network
    network.clear_fault_state()


class TestQuarantinePlusFaults:
    def test_quarantined_fleet_absent_from_network(self, quarantined_setup):
        federation, network = quarantined_setup
        owners = {spec.owner for spec in network.satellites}
        assert owners == {"good"}

    def test_fault_on_quarantined_satellite_skipped(self, quarantined_setup):
        federation, network = quarantined_setup
        evil_sats = [
            spec.satellite_id
            for spec in federation.all_satellites(include_quarantined=True)
            if spec.owner == "evil"
        ]
        injector = FaultInjector(network)
        event = satellite_outage_event(evil_sats, fault_id="on-quarantined")
        # Targets already gone: counted and skipped, never double-removed.
        assert injector.apply(event) == 0
        assert injector.skipped_targets == len(evil_sats)
        assert not network.has_faults
        assert injector.repair(event) == 0

    def test_withdrawal_of_quarantined_provider_skipped(
            self, quarantined_setup):
        _federation, network = quarantined_setup
        injector = FaultInjector(network)
        assert injector.apply(
            provider_withdrawal_event("evil", start_s=0.0)) == 0
        assert injector.skipped_targets == 1

    def test_mixed_fault_hits_only_present_targets(self, quarantined_setup):
        federation, network = quarantined_setup
        all_sats = federation.all_satellites(include_quarantined=True)
        good = next(s for s in all_sats if s.owner == "good")
        evil = next(s for s in all_sats if s.owner == "evil")
        injector = FaultInjector(network)
        event = satellite_outage_event(
            [good.satellite_id, evil.satellite_id], fault_id="mixed")
        assert injector.apply(event) == 1
        assert network.failed_satellites == frozenset({good.satellite_id})
        assert injector.skipped_targets == 1
        assert injector.repair(event) == 1
        assert not network.has_faults

    def test_overlapping_withdrawal_and_outage_no_early_return(
            self, quarantined_setup):
        # A provider-wide withdrawal and a per-satellite outage both hold
        # one satellite: repairing either alone must not resurrect it.
        federation, network = quarantined_setup
        sat_id = network.satellites[0].satellite_id
        injector = FaultInjector(network)
        withdrawal = provider_withdrawal_event("good", start_s=0.0,
                                               fault_id="w")
        outage = satellite_outage_event([sat_id], fault_id="o")
        injector.apply(withdrawal)
        assert injector.apply(outage) == 0  # already down
        injector.repair(withdrawal)
        assert network.failed_satellites == frozenset({sat_id})
        injector.repair(outage)
        assert not network.has_faults
