"""Tests for beacon-period neighbour discovery."""

import numpy as np
import pytest

from repro.core.discovery import BeaconDiscoverySimulator


def simulator(count=10, seed=4, **kwargs):
    return BeaconDiscoverySimulator(count, rng=np.random.default_rng(seed),
                                    **kwargs)


class TestValidation:
    def test_satellite_count(self):
        with pytest.raises(ValueError):
            BeaconDiscoverySimulator(0)

    def test_loss_probability(self):
        with pytest.raises(ValueError):
            BeaconDiscoverySimulator(3, loss_probability=1.0)

    def test_run_arguments(self):
        sim = simulator()
        with pytest.raises(ValueError):
            sim.run(0.0, 100.0)
        with pytest.raises(ValueError):
            sim.run(1.0, 0.0)


class TestDiscovery:
    def test_lossless_discovers_everyone_within_one_period(self):
        sim = simulator(count=8)
        result = sim.run(beacon_period_s=10.0, duration_s=100.0)
        assert result.discovered == 8
        assert result.full_discovery_s is not None
        # Phases are uniform in [0, period): everyone heard by t=period.
        assert result.full_discovery_s <= 10.0

    def test_first_discovery_before_full(self):
        result = simulator(count=8).run(5.0, 100.0)
        assert result.first_discovery_s <= result.full_discovery_s

    def test_shorter_period_faster_discovery_more_airtime(self):
        fast = simulator(seed=1).run(1.0, 300.0)
        slow = simulator(seed=1).run(30.0, 300.0)
        assert fast.full_discovery_s < slow.full_discovery_s
        assert fast.airtime_fraction > slow.airtime_fraction
        assert fast.beacons_sent > slow.beacons_sent

    def test_loss_delays_discovery(self):
        clean = simulator(seed=2).run(5.0, 600.0)
        lossy = simulator(seed=2, loss_probability=0.8).run(5.0, 600.0)
        # With loss, full discovery needs retransmissions.
        assert (lossy.full_discovery_s is None
                or lossy.full_discovery_s >= clean.full_discovery_s)

    def test_too_short_run_leaves_full_none(self):
        result = simulator(count=10).run(beacon_period_s=50.0,
                                         duration_s=10.0)
        assert result.full_discovery_s is None or result.discovered == 10

    def test_beacon_count_matches_schedule(self):
        count = 5
        result = simulator(count=count).run(10.0, 100.0)
        # Each satellite beacons about duration/period times.
        assert count * 9 <= result.beacons_sent <= count * 11

    def test_sweep_runs_all_periods(self):
        results = simulator().sweep([1.0, 5.0, 25.0], 200.0)
        assert [r.beacon_period_s for r in results] == [1.0, 5.0, 25.0]
