"""Tests for the interoperability profile and spacecraft specs."""

import pytest

from repro.core.interop import (
    InteropError,
    InteroperabilityProfile,
    SizeClass,
    SpacecraftSpec,
    build_fleet,
    large_spacecraft,
    medium_spacecraft,
    small_spacecraft,
)
from repro.orbits.elements import OrbitalElements
from repro.phy.optical import OpticalTerminal
from repro.phy.rf import standard_sband_isl_terminal


@pytest.fixture
def elements():
    return OrbitalElements.circular(780.0, inclination_rad=1.5)


class TestSpacecraftSpec:
    def test_small_has_no_optical(self, elements):
        spec = small_spacecraft("s1", "op", elements)
        assert not spec.supports_optical
        assert len(spec.rf_isl_terminals) == 2

    def test_medium_and_large_have_optical(self, elements):
        assert medium_spacecraft("m1", "op", elements).supports_optical
        assert large_spacecraft("l1", "op", elements).supports_optical

    def test_to_isl_node_carries_power_ceiling(self, elements):
        spec = medium_spacecraft("m1", "op", elements)
        node = spec.to_isl_node()
        assert node.max_degree == spec.power.max_concurrent_isls
        assert node.owner == "op"
        assert node.allow_optical

    def test_to_isl_node_override(self, elements):
        spec = medium_spacecraft("m1", "op", elements)
        node = spec.to_isl_node(allow_optical=False)
        assert not node.allow_optical


class TestProfile:
    def test_standard_fleets_compliant(self, elements):
        profile = InteroperabilityProfile()
        for factory in (small_spacecraft, medium_spacecraft, large_spacecraft):
            assert profile.is_compliant(factory("x", "op", elements))

    def test_no_rf_isl_fails(self, elements):
        spec = SpacecraftSpec(
            satellite_id="bad", owner="op", size_class=SizeClass.MEDIUM,
            elements=elements, isl_terminals=[OpticalTerminal()],
            laser_boresights_deg=[0.0],
        )
        with pytest.raises(InteropError, match="mandatory RF"):
            InteroperabilityProfile().validate(spec)

    def test_optical_without_boresights_fails(self, elements):
        spec = SpacecraftSpec(
            satellite_id="bad", owner="op", size_class=SizeClass.MEDIUM,
            elements=elements,
            isl_terminals=[standard_sband_isl_terminal(), OpticalTerminal()],
        )
        with pytest.raises(InteropError, match="boresight"):
            InteroperabilityProfile().validate(spec)

    def test_ground_terminal_requirement(self, elements):
        profile = InteroperabilityProfile(require_ground_terminal=True)
        relay_only = SpacecraftSpec(
            satellite_id="relay", owner="op", size_class=SizeClass.SMALL,
            elements=elements, isl_terminals=[standard_sband_isl_terminal()],
        )
        with pytest.raises(InteropError, match="ground-facing"):
            profile.validate(relay_only)

    def test_min_degree_requirement(self, elements):
        from repro.isl.power import PowerBudget
        profile = InteroperabilityProfile(min_isl_degree=2)
        weak = SpacecraftSpec(
            satellite_id="weak", owner="op", size_class=SizeClass.SMALL,
            elements=elements, isl_terminals=[standard_sband_isl_terminal()],
            power=PowerBudget(battery_capacity_wh=10.0,
                              solar_generation_w=10.0,
                              max_concurrent_isls=1),
        )
        with pytest.raises(InteropError, match="degree"):
            profile.validate(weak)

    def test_error_lists_all_problems(self, elements):
        profile = InteroperabilityProfile(require_ground_terminal=True)
        spec = SpacecraftSpec(
            satellite_id="bad", owner="op", size_class=SizeClass.SMALL,
            elements=elements, isl_terminals=[],
        )
        with pytest.raises(InteropError) as exc:
            profile.validate(spec)
        assert "mandatory RF" in str(exc.value)
        assert "ground-facing" in str(exc.value)


class TestBuildFleet:
    def test_one_spec_per_satellite(self, iridium):
        fleet = build_fleet(iridium, "acme", SizeClass.SMALL)
        assert len(fleet) == len(iridium)
        assert all(spec.owner == "acme" for spec in fleet)

    def test_ids_unique(self, iridium):
        fleet = build_fleet(iridium, "acme", SizeClass.MEDIUM)
        ids = {spec.satellite_id for spec in fleet}
        assert len(ids) == len(fleet)

    def test_elements_preserved(self, iridium):
        fleet = build_fleet(iridium, "acme", SizeClass.LARGE)
        assert fleet[7].elements == iridium.elements[7]


class TestEclipseDerating:
    def test_equatorial_orbit_loses_about_a_third(self, elements):
        from repro.core.interop import derate_power_for_eclipse
        spec = medium_spacecraft("m1", "op", OrbitalElements.circular(
            780.0, inclination_rad=0.0))
        full_sun = spec.power.solar_generation_w
        derate_power_for_eclipse(spec)
        ratio = spec.power.solar_generation_w / full_sun
        assert 0.6 < ratio < 0.75

    def test_dawn_dusk_orbit_nearly_unaffected(self):
        import math
        from repro.core.interop import derate_power_for_eclipse
        spec = medium_spacecraft("m2", "op", OrbitalElements.circular(
            780.0, inclination_rad=math.pi / 2, raan_rad=math.pi / 2))
        full_sun = spec.power.solar_generation_w
        derate_power_for_eclipse(spec)
        assert spec.power.solar_generation_w > 0.95 * full_sun

    def test_other_fields_untouched(self, elements):
        from repro.core.interop import derate_power_for_eclipse
        spec = medium_spacecraft("m3", "op", elements)
        ceiling = spec.power.max_concurrent_isls
        terminals = list(spec.isl_terminals)
        derate_power_for_eclipse(spec)
        assert spec.power.max_concurrent_isls == ceiling
        assert spec.isl_terminals == terminals
