"""Tests for shared-spectrum coordination."""

import numpy as np
import pytest

from repro.core.spectrum import ChannelPlan, SpectrumCoordinator
from repro.orbits.walker import (
    iridium_like,
    merge_constellations,
    random_constellation,
)


@pytest.fixture(scope="module")
def dual_shell_positions():
    """Two overlapping operator shells — conflicts guaranteed."""
    rng = np.random.default_rng(9)
    merged = merge_constellations(
        [iridium_like(), random_constellation(66, rng)], "dual"
    )
    return {
        f"sat{i}": p for i, p in enumerate(merged.positions_at(0.0))
    }


class TestCoordinator:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpectrumCoordinator(min_separation_deg=0.0)

    def test_conflict_graph_covers_all_satellites(self, dual_shell_positions):
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=16)
        graph = coordinator.conflict_graph(dual_shell_positions)
        assert set(graph.nodes) == set(dual_shell_positions)

    def test_overlapping_shells_conflict(self, dual_shell_positions):
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=16)
        plan = coordinator.plan(dual_shell_positions)
        assert len(plan.conflict_edges) > 0

    def test_plan_is_conflict_free(self, dual_shell_positions):
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=16)
        plan = coordinator.plan(dual_shell_positions)
        assert plan.is_conflict_free()
        assert plan.slot_count >= 2

    def test_plan_deterministic(self, dual_shell_positions):
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=16)
        a = coordinator.plan(dual_shell_positions)
        b = coordinator.plan(dual_shell_positions)
        assert a.assignments == b.assignments

    def test_slot_cap_wraps_and_reports_honestly(self, dual_shell_positions):
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=16)
        plan = coordinator.plan(dual_shell_positions, available_slots=1)
        assert plan.slot_count == 1
        assert all(slot == 0 for slot in plan.assignments.values())
        if plan.conflict_edges:
            assert not plan.is_conflict_free()

    def test_slot_cap_validation(self, dual_shell_positions):
        coordinator = SpectrumCoordinator()
        with pytest.raises(ValueError):
            coordinator.plan(dual_shell_positions, available_slots=0)

    def test_uncoordinated_collides_more(self, dual_shell_positions):
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=16)
        plan = coordinator.plan(dual_shell_positions)
        collisions = coordinator.uncoordinated_collisions(
            dual_shell_positions, plan.slot_count, np.random.default_rng(3)
        )
        # Coordinated: zero colliding pairs; random: statistically
        # ~edges/slots, which is > 0 for this geometry.
        assert collisions > 0

    def test_sparse_fleet_single_slot(self):
        # A lone satellite needs exactly one slot.
        positions = {"only": np.array([7158.137, 0.0, 0.0])}
        plan = SpectrumCoordinator().plan(positions)
        assert plan.slot_count == 1
        assert plan.assignments == {"only": 0}
        assert plan.is_conflict_free()


class TestChannelPlan:
    def test_slots_by_operator(self):
        plan = ChannelPlan(
            assignments={"a1": 0, "a2": 1, "b1": 0},
            slot_count=2,
            conflict_edges=(("a1", "a2"),),
        )
        usage = plan.slots_by_operator({"a1": "op-a", "a2": "op-a",
                                        "b1": "op-b"})
        assert usage == {"op-a": {0, 1}, "op-b": {0}}

    def test_conflict_detection(self):
        clashing = ChannelPlan(
            assignments={"x": 0, "y": 0}, slot_count=1,
            conflict_edges=(("x", "y"),),
        )
        assert not clashing.is_conflict_free()
