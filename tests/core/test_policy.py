"""Tests for regional regulation and data-sovereignty policy."""

import networkx as nx
import pytest

from repro.core.policy import PolicyRegistry, Region, apply_policy_to_graph
from repro.ground.station import default_station_network
from repro.orbits.coordinates import GeodeticPoint


class TestRegion:
    def test_contains_basic(self):
        region = Region("test", -10.0, 10.0, -20.0, 20.0)
        assert region.contains(GeodeticPoint(0.0, 0.0))
        assert not region.contains(GeodeticPoint(11.0, 0.0))
        assert not region.contains(GeodeticPoint(0.0, 21.0))

    def test_antimeridian_wrap(self):
        pacific = Region("pacific", -30.0, 30.0, 150.0, -150.0)
        assert pacific.contains(GeodeticPoint(0.0, 170.0))
        assert pacific.contains(GeodeticPoint(0.0, -170.0))
        assert not pacific.contains(GeodeticPoint(0.0, 0.0))

    def test_invalid_lat_box(self):
        with pytest.raises(ValueError, match="min_lat"):
            Region("bad", 10.0, -10.0, 0.0, 1.0)


class TestPolicyRegistry:
    @pytest.fixture
    def registry(self):
        return PolicyRegistry()

    def test_default_world_partition(self, registry):
        assert registry.region_of(GeodeticPoint(50.1, 8.7)).name == "europe"
        assert registry.region_of(GeodeticPoint(-1.29, 36.82)).name == "africa"
        assert registry.region_of(GeodeticPoint(40.0, -100.0)).name == (
            "north-america"
        )

    def test_open_seas(self, registry):
        # Middle of the South Pacific.
        assert registry.region_of(GeodeticPoint(-40.0, -120.0)) is None

    def test_region_by_name(self, registry):
        assert registry.region_by_name("europe").data_residency
        with pytest.raises(KeyError):
            registry.region_by_name("atlantis")

    def test_duplicate_names_rejected(self):
        region = Region("x", 0.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            PolicyRegistry([region, region])

    def test_station_regions(self, registry):
        mapping = registry.station_regions(default_station_network())
        assert mapping["gs-frankfurt"] == "europe"
        assert mapping["gs-nairobi"] == "africa"
        assert mapping["gs-svalbard"] == "polar"

    def test_eu_residency_restricts_gateways(self, registry):
        stations = default_station_network()
        allowed = registry.compliant_gateways(GeodeticPoint(50.1, 8.7),
                                              stations)
        assert allowed == {"gs-frankfurt", "gs-ireland"}

    def test_non_residency_region_unrestricted(self, registry):
        stations = default_station_network()
        allowed = registry.compliant_gateways(GeodeticPoint(-1.29, 36.82),
                                              stations)
        assert len(allowed) == len(stations)

    def test_band_licensing(self):
        strict = Region("strict", -10.0, 10.0, -10.0, 10.0,
                        licensed_bands=frozenset({"ka_gateway"}))
        registry = PolicyRegistry([strict])
        inside = GeodeticPoint(0.0, 0.0)
        assert registry.band_licensed("ka_gateway", inside)
        assert not registry.band_licensed("ku_downlink", inside)
        # Outside any region: unregulated.
        assert registry.band_licensed("ku_downlink", GeodeticPoint(50.0, 50.0))


class TestApplyPolicyToGraph:
    def test_noncompliant_gateways_removed(self):
        g = nx.Graph()
        g.add_node("u", kind="user")
        g.add_node("s", kind="satellite")
        g.add_node("g-eu", kind="ground_station")
        g.add_node("g-us", kind="ground_station")
        g.add_edge("u", "s", delay_s=0.01)
        g.add_edge("s", "g-eu", delay_s=0.01)
        g.add_edge("s", "g-us", delay_s=0.005)
        view = apply_policy_to_graph(g, "u", {"g-eu"})
        assert "g-us" not in view
        assert "g-eu" in view
        # Any path found over the view is compliant by construction.
        path = nx.shortest_path(view, "u", "g-eu")
        assert path == ["u", "s", "g-eu"]

    def test_policy_may_cost_latency(self, network):
        """EU residency forces an EU gateway even when farther."""
        from repro.ground.user import UserTerminal
        registry = PolicyRegistry()
        user = UserTerminal("eu-user", GeodeticPoint(38.9, -77.4 + 120.0),
                            "acme", min_elevation_deg=10.0)
        # Place the user inside Europe for the residency constraint.
        user.location = GeodeticPoint(48.9, 2.35)  # Paris
        snap = network.snapshot(0.0, users=[user])
        unconstrained = snap.nearest_ground_station_route(user.user_id)
        allowed = registry.compliant_gateways(
            user.location, network.ground_stations
        )
        view = apply_policy_to_graph(snap.graph, user.user_id, allowed)
        import networkx as nx_mod
        from repro.routing.metrics import path_metrics
        try:
            path = nx_mod.dijkstra_path(view, user.user_id, "gs-frankfurt",
                                        weight="delay_s")
        except nx_mod.NetworkXNoPath:
            pytest.skip("no compliant path at this epoch")
        constrained = path_metrics(snap.graph, path)
        assert constrained.path[-1] in allowed
        assert (constrained.total_delay_s
                >= unconstrained.total_delay_s - 1e-9)
