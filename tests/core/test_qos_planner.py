"""Tests for the preemptive QoS planner."""

import pytest

from repro.core.qos_planner import (
    DEFAULT_CLASSES,
    QosForecast,
    QosForecastEntry,
    QosPlanner,
)
from repro.orbits.coordinates import GeodeticPoint

REGIONS = {
    "east-africa": GeodeticPoint(-1.29, 36.82),
    "central-europe": GeodeticPoint(48.0, 11.0),
}


@pytest.fixture(scope="module")
def forecast(network):
    planner = QosPlanner(network)
    return planner.forecast(REGIONS, start_s=0.0, horizon_s=1800.0,
                            epoch_s=600.0)


class TestForecast:
    def test_entry_per_region_per_epoch(self, forecast):
        assert len(forecast.entries) == 2 * 3

    def test_classes_ordered_most_stringent_first(self):
        names = [name for name, _req in DEFAULT_CLASSES]
        assert names == ["premium", "standard", "best_effort"]

    def test_admissible_classes_nested(self, forecast):
        # If premium is admissible, the looser classes must be too.
        order = [name for name, _req in DEFAULT_CLASSES]
        for entry in forecast.entries:
            indices = [order.index(c) for c in entry.admissible_classes]
            if indices:
                assert indices == sorted(indices)
                assert indices[-1] == len(order) - 1 or not indices

    def test_best_class_consistent(self, forecast):
        for entry in forecast.entries:
            if entry.admissible_classes:
                assert entry.best_class == entry.admissible_classes[0]
            else:
                assert entry.best_class == "none"

    def test_served_regions_get_service(self, forecast):
        # The MEDIUM (laser) reference fleet over a well-gatewayed region
        # should admit at least best-effort most of the time.
        availability = forecast.availability_of_class(
            "east-africa", "best_effort"
        )
        assert availability > 0.5


class TestGuarantees:
    def test_guaranteed_class_is_weakest_over_horizon(self):
        forecast = QosForecast(entries=[
            QosForecastEntry(0.0, "r", ("premium", "standard",
                                        "best_effort"), "premium"),
            QosForecastEntry(300.0, "r", ("best_effort",), "best_effort"),
        ])
        assert forecast.guaranteed_class("r") == "best_effort"

    def test_unserved_epoch_voids_guarantee(self):
        forecast = QosForecast(entries=[
            QosForecastEntry(0.0, "r", ("premium",), "premium"),
            QosForecastEntry(300.0, "r", (), "none"),
        ])
        assert forecast.guaranteed_class("r") == "none"

    def test_unknown_region(self):
        assert QosForecast().guaranteed_class("atlantis") == "none"
        assert QosForecast().availability_of_class("atlantis", "premium") == 0.0


class TestValidation:
    def test_bad_horizon(self, network):
        planner = QosPlanner(network)
        with pytest.raises(ValueError):
            planner.forecast(REGIONS, 0.0, 0.0)
        with pytest.raises(ValueError):
            planner.forecast(REGIONS, 0.0, 100.0, epoch_s=0.0)
