"""Tests for the beacon protocol and the ISL pairing handshake."""

import math

import numpy as np
import pytest

from repro.core.beacon import Beacon, BeaconEvaluator, beacon_reception_delay_s
from repro.core.interop import medium_spacecraft, small_spacecraft
from repro.core.pairing import PairingProtocol, PairRequest
from repro.orbits.constants import EARTH_RADIUS_KM
from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.orbits.elements import OrbitalElements


def spec_over(lat_deg, lon_deg, owner="op", optical=True, name="sat"):
    """A spacecraft whose epoch position is over the given ground point.

    Uses an equatorial-ish circular orbit positioned by mean anomaly; for
    test purposes only the epoch position matters.
    """
    elements = OrbitalElements.circular(
        780.0,
        inclination_rad=math.radians(max(abs(lat_deg), 0.1) * 2),
        mean_anomaly_rad=0.0,
        raan_rad=math.radians(lon_deg),
    )
    factory = medium_spacecraft if optical else small_spacecraft
    return factory(name, owner, elements)


@pytest.fixture
def overhead_spec():
    # Equatorial orbit crossing (0, 0) at epoch.
    elements = OrbitalElements.circular(780.0, inclination_rad=0.0)
    return medium_spacecraft("sat-over", "op-a", elements)


@pytest.fixture
def far_spec():
    elements = OrbitalElements.circular(
        780.0, inclination_rad=0.0, mean_anomaly_rad=math.pi
    )
    return medium_spacecraft("sat-far", "op-b", elements)


class TestBeacon:
    def test_from_spec_carries_capabilities(self, overhead_spec):
        beacon = Beacon.from_spec(overhead_spec, timestamp_s=5.0)
        assert beacon.satellite_id == "sat-over"
        assert beacon.supports_optical
        assert "s_band" in beacon.isl_bands
        assert beacon.free_isl_slots == overhead_spec.power.max_concurrent_isls

    def test_free_slots_reflect_active_isls(self, overhead_spec):
        overhead_spec.power.activate_isl("x", 10.0)
        beacon = Beacon.from_spec(overhead_spec, 0.0)
        assert beacon.free_isl_slots == (
            overhead_spec.power.max_concurrent_isls - 1
        )

    def test_position_propagates_advertised_elements(self, overhead_spec):
        beacon = Beacon.from_spec(overhead_spec, 0.0)
        pos = beacon.position_at(0.0)
        assert np.linalg.norm(pos) == pytest.approx(EARTH_RADIUS_KM + 780.0)

    def test_reception_delay(self):
        assert beacon_reception_delay_s(2997.92458) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            beacon_reception_delay_s(-1.0)


class TestBeaconEvaluator:
    def test_latest_beacon_wins(self, overhead_spec):
        evaluator = BeaconEvaluator()
        evaluator.receive(Beacon.from_spec(overhead_spec, 0.0))
        evaluator.receive(Beacon.from_spec(overhead_spec, 10.0))
        assert len(evaluator.heard) == 1
        assert evaluator.heard[0].timestamp_s == 10.0

    def test_ranks_nearest_first(self, overhead_spec, far_spec):
        evaluator = BeaconEvaluator(min_elevation_deg=0.0)
        evaluator.receive(Beacon.from_spec(far_spec, 0.0))
        evaluator.receive(Beacon.from_spec(overhead_spec, 0.0))
        user_eci = ecef_to_eci(GeodeticPoint(0.0, 0.0).ecef(), 0.0)
        best = evaluator.best(user_eci, 0.0)
        assert best.satellite_id == "sat-over"

    def test_elevation_mask_filters(self, far_spec):
        evaluator = BeaconEvaluator(min_elevation_deg=25.0)
        evaluator.receive(Beacon.from_spec(far_spec, 0.0))
        user_eci = ecef_to_eci(GeodeticPoint(0.0, 0.0).ecef(), 0.0)
        assert evaluator.best(user_eci, 0.0) is None

    def test_full_satellites_skipped(self, overhead_spec):
        for i in range(overhead_spec.power.max_concurrent_isls):
            overhead_spec.power.activate_isl(f"l{i}", 10.0)
        evaluator = BeaconEvaluator(min_elevation_deg=0.0)
        evaluator.receive(Beacon.from_spec(overhead_spec, 0.0))
        user_eci = ecef_to_eci(GeodeticPoint(0.0, 0.0).ecef(), 0.0)
        assert evaluator.best(user_eci, 0.0) is None

    def test_require_free_slot_can_be_disabled(self, overhead_spec):
        for i in range(overhead_spec.power.max_concurrent_isls):
            overhead_spec.power.activate_isl(f"l{i}", 10.0)
        evaluator = BeaconEvaluator(min_elevation_deg=0.0,
                                    require_free_slot=False)
        evaluator.receive(Beacon.from_spec(overhead_spec, 0.0))
        user_eci = ecef_to_eci(GeodeticPoint(0.0, 0.0).ecef(), 0.0)
        assert evaluator.best(user_eci, 0.0) is not None


class TestPairRequest:
    def test_from_spec(self, overhead_spec):
        request = PairRequest.from_spec(overhead_spec)
        assert request.initiator_id == "sat-over"
        assert request.supports_optical
        assert request.laser_boresights_deg == (0.0,)
        assert "s_band" in request.rf_bands


class TestPairingProtocol:
    def _specs(self, optical_a=True, optical_b=True):
        el_a = OrbitalElements.circular(780.0, inclination_rad=0.0)
        el_b = OrbitalElements.circular(780.0, inclination_rad=0.0,
                                        mean_anomaly_rad=0.3)
        factory_a = medium_spacecraft if optical_a else small_spacecraft
        factory_b = medium_spacecraft if optical_b else small_spacecraft
        return factory_a("a", "op-a", el_a), factory_b("b", "op-b", el_b)

    def test_both_optical_upgrades(self):
        spec_a, spec_b = self._specs()
        outcome = PairingProtocol().pair(spec_a, spec_b, 2000.0)
        assert outcome.succeeded
        assert outcome.upgraded_to_optical
        assert outcome.pat_s > 0.0
        assert outcome.link.technology.value == "optical"

    def test_rf_only_partner_stays_rf(self):
        spec_a, spec_b = self._specs(optical_b=False)
        outcome = PairingProtocol().pair(spec_a, spec_b, 2000.0)
        assert outcome.succeeded
        assert not outcome.upgraded_to_optical
        assert outcome.slew_s == 0.0
        assert outcome.link.technology.is_rf

    def test_short_encounter_skips_optical(self):
        spec_a, spec_b = self._specs()
        outcome = PairingProtocol(min_optical_hold_s=60.0).pair(
            spec_a, spec_b, 2000.0, expected_hold_s=10.0
        )
        assert outcome.succeeded
        assert not outcome.upgraded_to_optical

    def test_power_starved_partner_stays_rf(self):
        spec_a, spec_b = self._specs()
        for i in range(spec_b.power.max_concurrent_isls):
            spec_b.power.activate_isl(f"l{i}", 10.0)
        outcome = PairingProtocol().pair(spec_a, spec_b, 2000.0)
        assert outcome.succeeded
        assert not outcome.upgraded_to_optical

    def test_handshake_time_scales_with_distance(self):
        spec_a, spec_b = self._specs(optical_a=False, optical_b=False)
        near = PairingProtocol().pair(spec_a, spec_b, 500.0)
        far = PairingProtocol().pair(spec_a, spec_b, 5000.0)
        assert far.rf_handshake_s > near.rf_handshake_s

    def test_extreme_distance_fails_with_reason(self):
        spec_a, spec_b = self._specs(optical_a=False, optical_b=False)
        outcome = PairingProtocol().pair(spec_a, spec_b, 50000.0)
        assert not outcome.succeeded
        assert "no common RF band closes" in outcome.failure_reason

    def test_rejects_zero_distance(self):
        spec_a, spec_b = self._specs()
        with pytest.raises(ValueError):
            PairingProtocol().pair(spec_a, spec_b, 0.0)

    def test_slew_uses_nearest_boresight(self):
        spec_a, spec_b = self._specs()
        # Four boresights 90 degrees apart: worst-case slew 45 degrees.
        spec_a.laser_boresights_deg = [0.0, 90.0, 180.0, 270.0]
        spec_b.laser_boresights_deg = [0.0, 90.0, 180.0, 270.0]
        protocol = PairingProtocol()
        outcome = protocol.pair(spec_a, spec_b, 2000.0,
                                bearing_a_to_b_deg=44.0)
        max_slew = spec_a.slew.slew_time_s(45.0)
        assert outcome.slew_s <= max_slew + 1e-9

    def test_pair_from_beacon(self):
        spec_a, spec_b = self._specs()
        beacon = Beacon.from_spec(spec_b, 0.0)
        receiver_position = spec_a.elements  # epoch position of a
        from repro.orbits.kepler import KeplerPropagator
        pos_a = KeplerPropagator(spec_a.elements).position_at(0.0)
        outcome = PairingProtocol().pair_from_beacon(
            spec_a, beacon, 0.0, pos_a
        )
        assert outcome.succeeded

    def test_total_time_is_sum_of_phases(self):
        spec_a, spec_b = self._specs()
        outcome = PairingProtocol().pair(spec_a, spec_b, 2000.0)
        assert outcome.total_time_s == pytest.approx(
            outcome.rf_handshake_s + outcome.slew_s + outcome.pat_s
        )


class TestHoldPrediction:
    def test_coplanar_neighbours_hold_through_horizon(self, iridium):
        from repro.core.interop import medium_spacecraft
        from repro.core.pairing import predict_hold_duration_s
        # Same plane, adjacent slots: the geometry never breaks.
        spec_a = medium_spacecraft("a", "op", iridium.elements[0])
        spec_b = medium_spacecraft("b", "op", iridium.elements[1])
        hold = predict_hold_duration_s(spec_a, spec_b, 0.0, horizon_s=3600.0)
        assert hold == 3600.0

    def test_unlinkable_pair_returns_zero(self, iridium):
        from repro.core.interop import medium_spacecraft
        from repro.core.pairing import predict_hold_duration_s
        import math
        from repro.orbits.elements import OrbitalElements
        spec_a = medium_spacecraft("a", "op", OrbitalElements.circular(
            780.0, inclination_rad=0.0, mean_anomaly_rad=0.0))
        spec_b = medium_spacecraft("b", "op", OrbitalElements.circular(
            780.0, inclination_rad=0.0, mean_anomaly_rad=math.pi))
        assert predict_hold_duration_s(spec_a, spec_b, 0.0) == 0.0

    def test_cross_plane_hold_is_finite(self, iridium):
        from repro.core.interop import medium_spacecraft
        from repro.core.pairing import predict_hold_duration_s
        # Counter-phased cross-plane pair: linkable now, breaks later.
        spec_a = medium_spacecraft("a", "op", iridium.elements[0])
        spec_b = medium_spacecraft("b", "op", iridium.elements[12])
        hold = predict_hold_duration_s(spec_a, spec_b, 0.0,
                                       horizon_s=6100.0)
        assert 0.0 <= hold <= 6100.0

    def test_validation(self, iridium):
        from repro.core.interop import medium_spacecraft
        from repro.core.pairing import predict_hold_duration_s
        spec = medium_spacecraft("a", "op", iridium.elements[0])
        import pytest as _pytest
        with _pytest.raises(ValueError):
            predict_hold_duration_s(spec, spec, 0.0, horizon_s=0.0)

    def test_feeds_pairing_decision(self, iridium):
        from repro.core.interop import medium_spacecraft
        from repro.core.pairing import (
            PairingProtocol,
            predict_hold_duration_s,
        )
        spec_a = medium_spacecraft("a", "op-a", iridium.elements[0])
        spec_b = medium_spacecraft("b", "op-b", iridium.elements[1])
        hold = predict_hold_duration_s(spec_a, spec_b, 0.0)
        outcome = PairingProtocol().pair(spec_a, spec_b, 3000.0,
                                         expected_hold_s=hold)
        assert outcome.succeeded
        assert outcome.upgraded_to_optical  # long hold amortizes the PAT
