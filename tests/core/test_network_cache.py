"""Snapshot-cache correctness tests for :class:`OpenSpaceNetwork`.

The cache is keyed by ``(time bucket, fault epoch, user set)``; these
tests pin the contract: warm queries return the same object, fault-state
changes invalidate implicitly, ``cache_size=0`` disables caching, time
quantization buckets nearby instants, and ``refresh_edge_weights``
recomputes link attributes without rebuilding topology.
"""

import networkx as nx
import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like


def _make_network(**kwargs):
    fleet = build_fleet(iridium_like(), "cache-op", SizeClass.MEDIUM)
    return OpenSpaceNetwork(fleet, default_station_network(), **kwargs)


def _make_user(user_id="u-cache"):
    return UserTerminal(user_id, GeodeticPoint(-1.29, 36.82), "cache-op",
                        min_elevation_deg=10.0)


@pytest.fixture(scope="module")
def network():
    return _make_network()


class TestSnapshotCache:
    def test_warm_query_returns_same_object(self, network):
        first = network.snapshot(100.0)
        assert network.snapshot(100.0) is first

    def test_distinct_times_get_distinct_snapshots(self, network):
        assert network.snapshot(0.0) is not network.snapshot(60.0)

    def test_user_snapshot_cached_separately_from_base(self, network):
        user = _make_user()
        base = network.snapshot(200.0)
        with_user = network.snapshot(200.0, users=[user])
        assert with_user is not base
        assert user.user_id in with_user.graph
        assert user.user_id not in base.graph
        assert network.snapshot(200.0, users=[user]) is with_user

    def test_user_overlay_matches_cold_build(self):
        # A user snapshot assembled incrementally on top of a cached base
        # must equal one built from scratch with caching disabled.
        user = _make_user()
        warm = _make_network()
        warm.snapshot(300.0)  # prime the base
        incremental = warm.snapshot(300.0, users=[user])
        cold = _make_network(snapshot_cache_size=0).snapshot(
            300.0, users=[user]
        )
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            incremental.graph, cold.graph
        )
        assert set(incremental.graph.nodes) == set(cold.graph.nodes)
        assert set(incremental.graph.edges) == set(cold.graph.edges)
        assert matcher.is_isomorphic()

    def test_fault_state_change_invalidates(self):
        net = _make_network()
        before = net.snapshot(0.0)
        victim = net.satellites[0].satellite_id
        net.set_fault_state(failed_satellites=[victim])
        degraded = net.snapshot(0.0)
        assert degraded is not before
        assert victim not in degraded.graph
        net.clear_fault_state()
        recovered = net.snapshot(0.0)
        assert recovered is not degraded
        assert victim in recovered.graph

    def test_fault_epoch_monotone(self):
        net = _make_network()
        epoch0 = net.fault_epoch
        net.set_fault_state(failed_satellites=[net.satellites[0].satellite_id])
        epoch1 = net.fault_epoch
        net.clear_fault_state()
        assert epoch0 < epoch1 < net.fault_epoch

    def test_explicit_invalidation(self):
        net = _make_network()
        first = net.snapshot(0.0)
        net.invalidate_snapshot_cache()
        assert net.snapshot(0.0) is not first

    def test_cache_size_zero_disables(self):
        net = _make_network(snapshot_cache_size=0)
        assert net.snapshot(0.0) is not net.snapshot(0.0)

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError, match="cache size"):
            _make_network(snapshot_cache_size=-1)

    def test_lru_eviction_bounds_memory(self):
        net = _make_network(snapshot_cache_size=2)
        oldest = net.snapshot(0.0)
        net.snapshot(60.0)
        net.snapshot(120.0)  # evicts the t=0 entry
        assert len(net._snapshot_cache) == 2
        assert net.snapshot(0.0) is not oldest

    def test_quantum_buckets_nearby_times(self):
        net = _make_network(snapshot_cache_quantum_s=10.0)
        snap = net.snapshot(100.0)
        assert net.snapshot(104.0) is snap
        assert net.snapshot(94.0) is not snap

    def test_unhashable_user_sets_bypass_cache(self, network):
        user = _make_user("u-bypass")
        first = network.snapshot(400.0, users=[user])
        # Same terminal identity -> cache hit; a distinct equal-by-value
        # terminal object is a different key, so it rebuilds.
        assert network.snapshot(400.0, users=[user]) is first


class TestPrimedPositions:
    """``prime_positions`` must be a pure speedup, bit for bit.

    The batched engine primes whole epoch grids up front; the digest
    gates only hold if a primed column carries exactly the same float64
    bits as a lazy single-epoch solve (grid-width-independent Kepler
    batch + contiguous-matrix frame rotation; see
    ``OpenSpaceNetwork.prime_positions``).
    """

    TIMES = [0.0, 450.0, 900.0, 1350.0]

    def test_primed_positions_bitwise_equal_lazy(self):
        import numpy as np

        primed = _make_network()
        assert primed.prime_positions(self.TIMES) == len(self.TIMES)
        cold = _make_network()
        for t in self.TIMES:
            by_id = primed.satellite_positions(t)
            lazy = cold.satellite_positions(t)
            assert by_id.keys() == lazy.keys()
            for sat_id, position in by_id.items():
                assert np.array_equal(position, lazy[sat_id])

    def test_primed_snapshots_digest_equal_lazy(self):
        primed = _make_network(snapshot_cache_size=0)
        primed.prime_positions(self.TIMES)
        cold = _make_network(snapshot_cache_size=0)
        for t in self.TIMES:
            assert primed.snapshot(t).digest() == cold.snapshot(t).digest()

    def test_clear_primed_positions(self):
        net = _make_network()
        net.prime_positions(self.TIMES)
        net.clear_primed_positions()
        assert net.prime_positions([]) == 0


class TestRefreshEdgeWeights:
    def test_refresh_recomputes_without_rebuilding(self, network):
        snap = network.snapshot(500.0)
        edges_before = set(snap.graph.edges)
        refreshed = network.refresh_edge_weights(snap)
        ground_links = [
            (a, b) for a, b, d in snap.graph.edges(data=True)
            if d.get("kind") == "ground_link"
        ]
        assert refreshed == len(ground_links) > 0
        assert set(snap.graph.edges) == edges_before

    def test_refresh_covers_user_access_links(self):
        net = _make_network(snapshot_cache_size=0)
        user = _make_user("u-refresh")
        snap = net.snapshot(0.0, users=[user])
        access = [
            (a, b) for a, b, d in snap.graph.edges(data=True)
            if d.get("kind") == "access_link"
        ]
        refreshed = net.refresh_edge_weights(snap, users=[user])
        ground = [
            (a, b) for a, b, d in snap.graph.edges(data=True)
            if d.get("kind") == "ground_link"
        ]
        assert refreshed == len(ground) + len(access)
        assert len(access) > 0

    def test_refresh_preserves_route_viability(self, network):
        user = _make_user("u-route")
        snap = network.snapshot(600.0, users=[user])
        stations = snap.nodes_of_kind("ground_station")
        path_before = snap.route(user.user_id, stations[0])
        network.refresh_edge_weights(snap, users=[user])
        assert snap.route(user.user_id, stations[0]) == path_before


class TestSnapshotCsrCache:
    """CSR adjacencies cached on the snapshot, refreshed in place."""

    def test_adjacency_cached_per_cost_model(self, network):
        pytest.importorskip("scipy")
        from repro.routing.metrics import EdgeCostModel

        snap = network.snapshot(400.0)
        default_adj = snap.csr_adjacency()
        assert snap.csr_adjacency() is default_adj
        other = snap.csr_adjacency(EdgeCostModel(tariff_weight=0.5))
        assert other is not default_adj

    def test_route_backends_agree(self, network):
        pytest.importorskip("scipy")
        snap = network.snapshot(500.0, users=[_make_user()])
        stations = snap.nodes_of_kind("ground_station")
        assert stations
        for backend in ("csr", "networkx"):
            metrics = snap.route("u-cache", stations[0], backend=backend)
            nearest = snap.nearest_ground_station_route(
                "u-cache", backend=backend)
            if backend == "csr":
                csr_metrics, csr_nearest = metrics, nearest
        if csr_metrics is None:
            assert metrics is None
        else:
            assert metrics.total_delay_s == csr_metrics.total_delay_s
            assert metrics.path == csr_metrics.path
        assert csr_nearest is not None and nearest is not None
        assert nearest.total_delay_s == csr_nearest.total_delay_s
        assert nearest.path == csr_nearest.path

    def test_refresh_csr_tracks_graph_mutation(self):
        pytest.importorskip("scipy")
        import numpy as np

        network = _make_network(snapshot_cache_size=4)
        user = _make_user()
        snap = network.snapshot(600.0, users=[user])
        adjacency = snap.csr_adjacency()
        before = adjacency.data.copy()
        for _u, _v, data in snap.graph.edges(data=True):
            if data.get("kind") == "ground_link":
                data["delay_s"] = data["delay_s"] * 3.0
        snap.refresh_csr()
        assert snap.csr_adjacency() is adjacency  # same object, new data
        assert not np.array_equal(adjacency.data, before)
        route = snap.nearest_ground_station_route(user.user_id)
        reference = snap.nearest_ground_station_route(
            user.user_id, backend="networkx")
        assert (route is None) == (reference is None)
        if route is not None:
            assert route.total_delay_s == reference.total_delay_s

    def test_refresh_edge_weights_keeps_adjacency_consistent(self):
        pytest.importorskip("scipy")
        import numpy as np
        from repro.routing.csr import CsrAdjacency

        network = _make_network(snapshot_cache_size=4)
        user = _make_user()
        snap = network.snapshot(700.0, users=[user])
        adjacency = snap.csr_adjacency()  # cached before the refresh
        # Desynchronize the arrays, then let the network-level refresh
        # recompute attributes; the cached adjacency must end up equal
        # to a cold rebuild from the refreshed graph.
        for _u, _v, data in snap.graph.edges(data=True):
            if data.get("kind") == "ground_link":
                data["delay_s"] = data["delay_s"] * 3.0
        refreshed = network.refresh_edge_weights(snap, users=[user])
        assert refreshed > 0
        rebuilt = CsrAdjacency.from_graph(snap.graph)
        assert np.array_equal(adjacency.data, rebuilt.data)
        assert np.array_equal(adjacency.indices, rebuilt.indices)
