"""Tests for the latitude/longitude spatial grid index."""

import math

import numpy as np
import pytest

from repro.core.spatial import SpatialGridIndex, max_central_angle_rad

EARTH_RADIUS_KM = 6378.137
LEO_RADIUS_KM = EARTH_RADIUS_KM + 550.0


def _from_latlon(lat_deg, lon_deg, radius_km=LEO_RADIUS_KM):
    lat = math.radians(lat_deg)
    lon = math.radians(lon_deg)
    return np.array([
        radius_km * math.cos(lat) * math.cos(lon),
        radius_km * math.cos(lat) * math.sin(lon),
        radius_km * math.sin(lat),
    ])


def _true_pairs(positions, max_range_km):
    count = positions.shape[0]
    rows, cols = np.triu_indices(count, k=1)
    delta = positions[rows] - positions[cols]
    within = np.sqrt((delta * delta).sum(axis=-1)) <= max_range_km
    return set(zip(rows[within].tolist(), cols[within].tolist()))


class TestMaxCentralAngle:
    def test_small_range_small_angle(self):
        theta = max_central_angle_rad(100.0, LEO_RADIUS_KM)
        # chord ~ arc for small angles
        assert math.isclose(theta, 100.0 / LEO_RADIUS_KM, rel_tol=1e-4)

    def test_range_covering_antipodes_returns_pi(self):
        assert max_central_angle_rad(2 * LEO_RADIUS_KM, LEO_RADIUS_KM) == math.pi
        assert max_central_angle_rad(1e9, LEO_RADIUS_KM) == math.pi

    def test_bound_is_monotonic_in_range(self):
        angles = [max_central_angle_rad(d, LEO_RADIUS_KM)
                  for d in (10.0, 100.0, 1000.0, 5000.0)]
        assert angles == sorted(angles)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            max_central_angle_rad(100.0, 0.0)


class TestConstruction:
    def test_rejects_bad_cell_size(self):
        pos = np.array([[LEO_RADIUS_KM, 0.0, 0.0]])
        with pytest.raises(ValueError):
            SpatialGridIndex(pos, cell_size_deg=0.0)
        with pytest.raises(ValueError):
            SpatialGridIndex(pos, cell_size_deg=181.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SpatialGridIndex(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            SpatialGridIndex(np.zeros((2, 3)))  # zero norm

    def test_empty_index(self):
        index = SpatialGridIndex(np.empty((0, 3)))
        assert index.count == 0
        assert index.occupied_cell_count == 0
        rows, cols = index.candidate_pairs(1000.0)
        assert rows.size == 0 and cols.size == 0

    def test_single_point_has_no_pairs(self):
        index = SpatialGridIndex(_from_latlon(10.0, 20.0).reshape(1, 3))
        rows, cols = index.candidate_pairs(1e9)
        assert rows.size == 0


class TestCellAssignment:
    def test_boundary_point_lands_in_upper_cell(self):
        # lat = 8 with 8-degree cells sits exactly on the band edge;
        # floor((8 + 90) / 8) = 12 (the upper band).
        index = SpatialGridIndex(
            _from_latlon(8.0, 16.0).reshape(1, 3), cell_size_deg=8.0
        )
        band, col = index.cell_of(0)
        assert band == 12
        assert col == int((16.0 + 180.0) // 8.0)

    def test_north_pole_clips_into_top_band(self):
        index = SpatialGridIndex(
            _from_latlon(90.0, 0.0).reshape(1, 3), cell_size_deg=8.0
        )
        band, _ = index.cell_of(0)
        assert band == index.n_lat_bands - 1

    def test_antimeridian_wraps_to_column_zero(self):
        index = SpatialGridIndex(
            np.stack([_from_latlon(0.0, 180.0), _from_latlon(0.0, -180.0)]),
            cell_size_deg=8.0,
        )
        assert index.cell_of(0)[1] == 0
        assert index.cell_of(1)[1] == 0


class TestCandidatePairs:
    def test_antimeridian_neighbors_are_candidates(self):
        # 0.4 degrees of longitude apart, straddling the +/-180 seam:
        # ~47 km apart at LEO radius.
        positions = np.stack([
            _from_latlon(0.0, 179.8),
            _from_latlon(0.0, -179.8),
            _from_latlon(0.0, 0.0),
        ])
        index = SpatialGridIndex(positions, cell_size_deg=8.0)
        rows, cols = index.candidate_pairs(100.0)
        assert (0, 1) in set(zip(rows.tolist(), cols.tolist()))

    def test_polar_cluster_found_across_longitudes(self):
        # Near-pole points at wildly different longitudes are physically
        # close; the polar band must scan every column.
        positions = np.stack([
            _from_latlon(89.5, 10.0),
            _from_latlon(89.5, -170.0),
            _from_latlon(0.0, 0.0),
        ])
        index = SpatialGridIndex(positions, cell_size_deg=8.0)
        rows, cols = index.candidate_pairs(200.0)
        assert (0, 1) in set(zip(rows.tolist(), cols.tolist()))

    def test_far_apart_points_are_pruned(self):
        positions = np.stack([
            _from_latlon(0.0, 0.0),
            _from_latlon(0.0, 90.0),
            _from_latlon(0.0, -90.0),
        ])
        index = SpatialGridIndex(positions, cell_size_deg=8.0)
        rows, cols = index.candidate_pairs(500.0)
        assert rows.size == 0

    def test_pairs_are_lex_sorted_upper_triangle(self):
        rng = np.random.default_rng(11)
        vecs = rng.normal(size=(60, 3))
        positions = vecs / np.linalg.norm(vecs, axis=1, keepdims=True) \
            * LEO_RADIUS_KM
        index = SpatialGridIndex(positions, cell_size_deg=8.0)
        rows, cols = index.candidate_pairs(3000.0)
        assert np.all(rows < cols)
        keys = rows * np.int64(60) + cols
        assert np.all(np.diff(keys) > 0)  # strictly increasing, no dupes

    def test_saturated_range_matches_all_pairs(self):
        rng = np.random.default_rng(5)
        vecs = rng.normal(size=(12, 3))
        positions = vecs / np.linalg.norm(vecs, axis=1, keepdims=True) \
            * LEO_RADIUS_KM
        index = SpatialGridIndex(positions)
        rows, cols = index.candidate_pairs(3 * LEO_RADIUS_KM)
        tri_r, tri_c = np.triu_indices(12, k=1)
        assert np.array_equal(rows, tri_r)
        assert np.array_equal(cols, tri_c)

    def test_superset_of_true_pairs_mixed_altitudes(self):
        rng = np.random.default_rng(3)
        vecs = rng.normal(size=(80, 3))
        radii = rng.uniform(EARTH_RADIUS_KM + 400.0,
                            EARTH_RADIUS_KM + 1200.0, size=(80, 1))
        positions = vecs / np.linalg.norm(vecs, axis=1, keepdims=True) * radii
        index = SpatialGridIndex(positions, cell_size_deg=6.0)
        for max_range in (500.0, 1500.0, 4000.0):
            rows, cols = index.candidate_pairs(max_range)
            candidates = set(zip(rows.tolist(), cols.tolist()))
            assert _true_pairs(positions, max_range) <= candidates


class TestQueryRadius:
    def test_superset_around_probe(self):
        rng = np.random.default_rng(9)
        vecs = rng.normal(size=(50, 3))
        positions = vecs / np.linalg.norm(vecs, axis=1, keepdims=True) \
            * LEO_RADIUS_KM
        index = SpatialGridIndex(positions, cell_size_deg=10.0)
        probe = _from_latlon(12.0, 34.0)
        found = set(index.query_radius(probe, 2000.0).tolist())
        distances = np.sqrt(((positions - probe) ** 2).sum(axis=1))
        truly = set(np.nonzero(distances <= 2000.0)[0].tolist())
        assert truly <= found

    def test_ground_probe_below_fleet_uses_probe_radius(self):
        # A ground station is far below the fleet's minimum radius; the
        # central-angle bound must use the probe's own radius or it
        # would miss overhead satellites.
        positions = _from_latlon(0.0, 0.0).reshape(1, 3)
        index = SpatialGridIndex(positions)
        probe = _from_latlon(0.0, 0.0, radius_km=EARTH_RADIUS_KM)
        assert index.query_radius(probe, 600.0).tolist() == [0]

    def test_empty_neighborhood(self):
        positions = _from_latlon(0.0, 0.0).reshape(1, 3)
        index = SpatialGridIndex(positions, cell_size_deg=4.0)
        probe = _from_latlon(0.0, 180.0)
        assert index.query_radius(probe, 100.0).size == 0

    def test_result_is_sorted(self):
        rng = np.random.default_rng(21)
        vecs = rng.normal(size=(40, 3))
        positions = vecs / np.linalg.norm(vecs, axis=1, keepdims=True) \
            * LEO_RADIUS_KM
        index = SpatialGridIndex(positions, cell_size_deg=12.0)
        found = index.query_radius(_from_latlon(45.0, -60.0), 4000.0)
        assert np.all(np.diff(found) > 0)
