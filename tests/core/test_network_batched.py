"""Batched gateway probes must match the scalar per-user oracle exactly.

``OpenSpaceNetwork.gateway_probe_paths`` answers every monitored user
with one block-diagonal Dijkstra; the faults sweep's ``--engine
batched`` mode stands on it.  The contract is bitwise: the same path,
node for node, as the per-user snapshot probe — through fault state,
primed position grids, and the no-scipy fallback.
"""

from typing import List, Optional

import numpy as np
import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.availability import SAMPLE_SITES
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.walker import iridium_like

pytest.importorskip("scipy")


def _make_network(**kwargs):
    fleet = build_fleet(iridium_like(), "probe-op", SizeClass.MEDIUM)
    return OpenSpaceNetwork(fleet, default_station_network(), **kwargs)


def _users():
    return [
        UserTerminal(f"u-{name}", site, "probe-op", min_elevation_deg=10.0)
        for name, site in SAMPLE_SITES
    ]


def _scalar_probe(network, user, time_s) -> Optional[List[str]]:
    snap = network.snapshot(time_s, users=[user])
    metrics = snap.nearest_ground_station_route(user.user_id)
    return None if metrics is None else list(metrics.path)


def _scalar_probes(network, users, time_s):
    return {u.user_id: _scalar_probe(network, u, time_s) for u in users}


@pytest.fixture(scope="module")
def network():
    return _make_network()


@pytest.fixture(scope="module")
def users():
    return _users()


class TestGatewayProbePaths:
    def test_matches_scalar_oracle_across_epochs(self, network, users):
        for time_s in np.linspace(0.0, 5400.0, 8):
            batched = network.gateway_probe_paths(float(time_s), users)
            assert batched == _scalar_probes(network, users, float(time_s))

    def test_some_user_is_routable(self, network, users):
        paths = network.gateway_probe_paths(0.0, users)
        routable = [p for p in paths.values() if p is not None]
        assert routable, "reference fleet should reach some gateway"
        for path in routable:
            assert path[0].startswith("u-")

    def test_empty_user_set(self, network):
        assert network.gateway_probe_paths(0.0, []) == {}

    def test_matches_scalar_under_faults(self, users):
        net = _make_network()
        sats = [s.satellite_id for s in net.satellites]
        net.set_fault_state(failed_satellites=sats[::5],
                            failed_links=[(sats[1], sats[2])])
        try:
            for time_s in (0.0, 900.0, 1800.0):
                batched = net.gateway_probe_paths(time_s, users)
                assert batched == _scalar_probes(net, users, time_s)
                for sat in sats[::5]:
                    for path in batched.values():
                        assert path is None or sat not in path
        finally:
            net.clear_fault_state()

    def test_all_stations_failed_means_unreachable(self, users):
        net = _make_network()
        stations = [st.station_id for st in default_station_network()]
        net.set_fault_state(failed_stations=stations)
        try:
            paths = net.gateway_probe_paths(0.0, users)
            assert all(path is None for path in paths.values())
        finally:
            net.clear_fault_state()

    def test_primed_positions_change_nothing(self, users):
        primed = _make_network()
        times = np.linspace(0.0, 3600.0, 4, endpoint=False)
        primed.prime_positions(times)
        cold = _make_network()
        for time_s in times:
            assert (primed.gateway_probe_paths(float(time_s), users)
                    == cold.gateway_probe_paths(float(time_s), users))

    def test_scalar_fallback_without_scipy(self, users, monkeypatch):
        # The fallback loop must produce the same dict the array path
        # does (it *is* the oracle, reached when scipy is absent).
        net = _make_network()
        fast = net.gateway_probe_paths(300.0, users)
        monkeypatch.setattr("repro.core.network.HAVE_SCIPY", False)
        assert net.gateway_probe_paths(300.0, users) == fast
