"""Tests for incremental snapshot deltas in OpenSpaceNetwork.

The delta path is a proof, not a fork: every delta-built snapshot must
hash byte-identical to an independent full rebuild of the same instant.
These tests pin that invariant, the fault-epoch fallback, CSR structure
reuse, and the batched position cache.
"""

import numpy as np
import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.orbits.walker import walker_delta
from repro.routing.csr import CsrAdjacency


def walker_network(count=60, planes=6, stations=True, **kwargs):
    fleet = build_fleet(walker_delta(count, planes), "delta-test",
                        SizeClass.MEDIUM)
    ground = default_station_network() if stations else []
    return OpenSpaceNetwork(fleet, ground, max_isl_range_km=3000.0,
                            **kwargs)


def ring_network(**kwargs):
    """A single-plane ring: pairwise distances are constant, so the
    topology never churns and every delta build reuses structure."""
    fleet = build_fleet(walker_delta(16, 1), "ring", SizeClass.MEDIUM)
    return OpenSpaceNetwork(fleet, [], max_isl_range_km=3000.0, **kwargs)


EPOCH_TIMES = [0.0, 120.0, 240.0, 360.0, 480.0, 600.0]


class TestDeltaVsFullDigest:
    def test_delta_builds_hash_identical_to_full_rebuilds(self):
        delta_net = walker_network(snapshot_delta=True)
        full_net = walker_network(snapshot_delta=False)
        # Prime both (or neither): numpy's vectorized trig can round the
        # final ulp differently for different time-grid shapes, so the
        # two networks must share one batched grid for digests to be
        # comparable.
        delta_net.prime_positions(EPOCH_TIMES)
        full_net.prime_positions(EPOCH_TIMES)
        for t in EPOCH_TIMES:
            assert delta_net.snapshot(t).digest() == \
                full_net.snapshot(t).digest()
        assert delta_net.delta_stats["delta_builds"] == len(EPOCH_TIMES) - 1
        assert full_net.delta_stats["delta_builds"] == 0
        assert full_net.delta_stats["full_builds"] == len(EPOCH_TIMES)

    def test_delta_csr_arrays_equal_full_rebuild(self):
        delta_net = walker_network(snapshot_delta=True)
        full_net = walker_network(snapshot_delta=False)
        delta_net.prime_positions(EPOCH_TIMES[:3])
        full_net.prime_positions(EPOCH_TIMES[:3])
        for t in EPOCH_TIMES[:3]:
            a = delta_net.snapshot(t).csr_adjacency()
            b = full_net.snapshot(t).csr_adjacency()
            assert a.nodes == b.nodes
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.data, b.data)

    def test_disabling_delta_builds_full_every_epoch(self):
        net = walker_network(snapshot_delta=False)
        for t in EPOCH_TIMES[:3]:
            net.snapshot(t)
        assert net.delta_stats["full_builds"] == 3
        assert net.last_snapshot_delta.full_rebuild


class TestDeltaBookkeeping:
    def test_first_build_is_full_then_deltas(self):
        net = walker_network()
        net.snapshot(0.0)
        first = net.last_snapshot_delta
        assert first.full_rebuild and first.isl is None
        net.snapshot(120.0)
        second = net.last_snapshot_delta
        assert not second.full_rebuild
        assert second.base_time_s == 0.0
        assert second.isl is not None
        assert net.delta_stats["full_builds"] == 1
        assert net.delta_stats["delta_builds"] == 1

    def test_disappeared_edges_feed_route_invalidation(self):
        net = walker_network()
        net.snapshot(0.0)
        net.snapshot(300.0)
        delta = net.last_snapshot_delta
        gone = delta.disappeared_edges
        assert set(delta.isl.disappeared) <= set(gone)
        assert set(delta.ground_disappeared) <= set(gone)
        assert delta.changed_edge_count >= len(gone)

    def test_cached_snapshot_does_not_rebuild(self):
        net = walker_network()
        net.snapshot(0.0)
        net.snapshot(0.0)
        assert net.delta_stats["full_builds"] == 1
        assert net.delta_stats["delta_builds"] == 0


class TestFaultEpochFallback:
    def test_fault_change_forces_full_rebuild_then_delta_resumes(self):
        net = walker_network()
        net.snapshot(0.0)
        net.snapshot(120.0)
        assert net.delta_stats["delta_builds"] == 1
        sat = net.satellites[0].satellite_id
        net.set_fault_state(failed_satellites=[sat])
        net.snapshot(240.0)
        assert net.delta_stats["full_builds"] == 2
        net.snapshot(360.0)
        assert net.delta_stats["delta_builds"] == 2

    def test_faulted_delta_matches_faulted_full_rebuild(self):
        delta_net = walker_network(snapshot_delta=True)
        full_net = walker_network(snapshot_delta=False)
        delta_net.prime_positions(EPOCH_TIMES)
        full_net.prime_positions(EPOCH_TIMES)
        sat = delta_net.satellites[7].satellite_id
        pair = sorted([delta_net.satellites[2].satellite_id,
                       delta_net.satellites[3].satellite_id])
        for net in (delta_net, full_net):
            net.set_fault_state(failed_satellites=[sat],
                                failed_links=[tuple(pair)])
        for t in EPOCH_TIMES:
            a = delta_net.snapshot(t)
            b = full_net.snapshot(t)
            assert sat not in a.graph
            assert not a.graph.has_edge(*pair)
            assert a.digest() == b.digest()
        assert delta_net.delta_stats["delta_builds"] > 0


class TestStructureReuse:
    def test_static_ring_reuses_csr_structure(self):
        net = ring_network()
        s0 = net.snapshot(0.0)
        a0 = s0.csr_adjacency()
        s1 = net.snapshot(10.0)
        a1 = s1.csr_adjacency()
        assert net.delta_stats["structure_reuses"] == 1
        assert net.last_snapshot_delta.structure_unchanged
        # Structure arrays are shared by reference; only weights differ.
        assert a1.indptr is a0.indptr
        assert a1.indices is a0.indices
        assert a1 is not a0
        fresh = CsrAdjacency.from_graph(s1.graph)
        assert np.array_equal(a1.data, fresh.data)

    def test_chain_is_bounded_to_two_generations(self):
        net = ring_network()
        s0 = net.snapshot(0.0)
        net.snapshot(10.0)
        assert s0._csr_source is None  # never had one (full build)
        s2 = net.snapshot(20.0)
        assert s2._csr_source is not None
        assert s2._csr_source._csr_source is None

    def test_churny_fleet_rarely_reuses(self):
        net = walker_network()
        for t in EPOCH_TIMES:
            net.snapshot(t)
        # Ground-station geometry changes every epoch, so full-network
        # structure reuse must not trigger here.
        assert net.delta_stats["structure_reuses"] == 0


class TestPrimedPositions:
    def test_prime_positions_counts_and_serves_epochs(self):
        net = walker_network(stations=False)
        assert net.prime_positions(EPOCH_TIMES) == len(EPOCH_TIMES)
        batched = net.satellite_positions(EPOCH_TIMES[2])
        solo = walker_network(stations=False).satellite_positions(
            EPOCH_TIMES[2]
        )
        assert set(batched) == set(solo)
        for sat_id in batched:
            np.testing.assert_allclose(batched[sat_id], solo[sat_id],
                                       rtol=0.0, atol=1e-9)

    def test_clear_primed_positions(self):
        net = walker_network(stations=False)
        net.prime_positions(EPOCH_TIMES[:2])
        net.clear_primed_positions()
        assert net._primed_positions == {}

    def test_priming_both_networks_keeps_digests_equal(self):
        primed = walker_network(snapshot_delta=False)
        unprimed = walker_network(snapshot_delta=False)
        primed.prime_positions([0.0])
        # At t=0 the mean anomaly solve is exact either way, so even the
        # one epoch where batching cannot jitter must agree.
        assert primed.snapshot(0.0).digest() == \
            unprimed.snapshot(0.0).digest()


class TestDigest:
    def test_digest_ignores_insertion_order(self):
        import networkx as nx
        from repro.core.network import NetworkSnapshot
        from repro.isl.topology import TopologySnapshot

        g1 = nx.Graph()
        g1.add_edge("a", "b", delay_s=1.0)
        g1.add_edge("b", "c", delay_s=2.0)
        g2 = nx.Graph()
        g2.add_edge("c", "b", delay_s=2.0)
        g2.add_edge("b", "a", delay_s=1.0)
        snap1 = NetworkSnapshot(0.0, g1, TopologySnapshot(0.0, g1))
        snap2 = NetworkSnapshot(0.0, g2, TopologySnapshot(0.0, g2))
        assert snap1.digest() == snap2.digest()

    def test_digest_sensitive_to_attributes_and_time(self):
        import networkx as nx
        from repro.core.network import NetworkSnapshot
        from repro.isl.topology import TopologySnapshot

        g1 = nx.Graph()
        g1.add_edge("a", "b", delay_s=1.0)
        g2 = nx.Graph()
        g2.add_edge("a", "b", delay_s=1.0 + 1e-12)
        base = NetworkSnapshot(0.0, g1, TopologySnapshot(0.0, g1))
        tweaked = NetworkSnapshot(0.0, g2, TopologySnapshot(0.0, g2))
        later = NetworkSnapshot(1.0, g1, TopologySnapshot(1.0, g1))
        assert base.digest() != tweaked.digest()
        assert base.digest() != later.digest()
