"""Tests for user association and satellite handover."""

import pytest

from repro.core.association import (
    AssociationProtocol,
    ReliableAssociationProtocol,
)
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.core.handover import (
    HandoverReliability,
    HandoverScheme,
    HandoverSimulator,
    STARLINK_HANDOVER_INTERVAL_S,
    mask_contact_windows,
)
from repro.ground.user import UserTerminal
from repro.orbits.contact import ContactWindow
from repro.orbits.coordinates import GeodeticPoint
from repro.reliability.channel import LossyControlChannel, perfect_channel
from repro.reliability.exchange import (
    NO_RETRY,
    CircuitBreakerRegistry,
    ReliableExchange,
    RetryPolicy,
)
from repro.security.auth import RadiusServer


@pytest.fixture
def nairobi_user():
    return UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "op-a",
                        min_elevation_deg=10.0)


@pytest.fixture
def auth_setup(medium_fleet):
    server = RadiusServer("acme", b"secret")
    server.enroll("alice", b"pw")
    protocol = AssociationProtocol(
        radius_servers={"acme": server},
        auth_anchors={"acme": "gs-nairobi"},
    )
    return server, protocol


class TestAssociation:
    def _evaluator(self, medium_fleet, time_s=0.0):
        evaluator = BeaconEvaluator(min_elevation_deg=10.0)
        for spec in medium_fleet:
            evaluator.receive(Beacon.from_spec(spec, time_s))
        return evaluator

    def test_successful_association(self, network, medium_fleet, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"pw"
        )
        assert result.succeeded
        assert result.satellite_id is not None
        assert result.auth_round_trip_s > 0.0
        assert user.is_associated
        assert user.session_certificate is not None

    def test_wrong_password_rejected(self, network, medium_fleet, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"wrong"
        )
        assert not result.succeeded
        assert "rejected" in result.failure_reason
        assert not user.is_associated

    def test_no_overhead_satellite(self, network, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme")
        empty = BeaconEvaluator()
        snap = network.snapshot(0.0)
        result = protocol.associate(user, snap.graph, empty, 0.0, b"pw")
        assert not result.succeeded
        assert "no usable satellite" in result.failure_reason

    def test_unknown_home_provider(self, network, medium_fleet):
        protocol = AssociationProtocol(radius_servers={}, auth_anchors={})
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82),
                            "ghost-isp", min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"pw"
        )
        assert not result.succeeded
        assert "no" in result.failure_reason and "anchor" in result.failure_reason

    def test_auth_time_dominated_by_isl_round_trip(self, network,
                                                   medium_fleet, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"pw"
        )
        assert result.auth_round_trip_s >= 2.0 * 780.0 / 299792.458


class FakeFaultMasks:
    """Stands in for OpenSpaceNetwork's fault-state view."""

    def __init__(self, satellites=(), stations=(), links=()):
        self.failed_satellites = frozenset(satellites)
        self.failed_stations = frozenset(stations)
        self.failed_links = frozenset(links)


class TestReliableAssociation:
    def _evaluator(self, medium_fleet, time_s=0.0):
        evaluator = BeaconEvaluator(min_elevation_deg=10.0)
        for spec in medium_fleet:
            evaluator.receive(Beacon.from_spec(spec, time_s))
        return evaluator

    def _user(self):
        return UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)

    def _reliable(self, server, channel, exchange, fallbacks=()):
        return ReliableAssociationProtocol(
            radius_servers={"acme": server},
            auth_anchors={"acme": "gs-nairobi"},
            channel=channel, exchange=exchange,
            fallback_anchors={"acme": list(fallbacks)},
        )

    def test_zero_loss_no_retry_matches_baseline_exactly(
            self, network, medium_fleet, auth_setup):
        # The acceptance contract: loss probability 0 + retries disabled
        # must be byte-identical to the perfect-delivery baseline.
        _server, baseline_protocol = auth_setup
        baseline = baseline_protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        reliable_protocol = self._reliable(
            server, perfect_channel(), ReliableExchange(NO_RETRY))
        reliable = reliable_protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        assert reliable.succeeded and baseline.succeeded
        assert reliable.satellite_id == baseline.satellite_id
        assert reliable.link_setup_s == baseline.link_setup_s
        assert reliable.auth_path_hops == baseline.auth_path_hops
        assert reliable.auth_round_trip_s == baseline.auth_round_trip_s
        assert reliable.auth_attempts == 1
        assert reliable.degraded_mode == ""

    def test_none_channel_falls_through_to_baseline(self, network,
                                                    medium_fleet):
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        protocol = ReliableAssociationProtocol(
            radius_servers={"acme": server},
            auth_anchors={"acme": "gs-nairobi"},
        )
        result = protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        assert result.succeeded
        assert result.auth_attempts == 1

    def test_lossy_channel_retries_and_succeeds(self, network, medium_fleet):
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        protocol = self._reliable(
            server, LossyControlChannel(base_loss=0.3, seed=5),
            ReliableExchange(RetryPolicy(max_attempts=8,
                                         jitter_fraction=0.0)),
        )
        result = protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        assert result.succeeded
        assert result.auth_attempts >= 1

    def test_dead_primary_anchor_falls_back_to_alternate(
            self, network, medium_fleet):
        # A fault mask severing the primary anchor makes its exchange fail
        # even though the (stale) graph still shows a path; the alternate
        # anchor of the same provider serves the association instead.
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        channel = perfect_channel(
            network=FakeFaultMasks(stations=("gs-nairobi",)))
        protocol = self._reliable(
            server, channel,
            ReliableExchange(RetryPolicy(max_attempts=2, timeout_s=0.1,
                                         jitter_fraction=0.0)),
            fallbacks=("gs-capetown",),
        )
        result = protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        assert result.succeeded
        assert result.degraded_mode == "alternate_anchor"
        assert result.auth_attempts > 1

    def test_all_anchors_dead_reports_failure_not_crash(
            self, network, medium_fleet):
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        channel = LossyControlChannel(
            base_loss=1.0, seed=1,
            network=FakeFaultMasks(stations=("gs-nairobi",)))
        protocol = self._reliable(
            server, channel,
            ReliableExchange(RetryPolicy(max_attempts=2, timeout_s=0.1,
                                         jitter_fraction=0.0)),
        )
        result = protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        assert not result.succeeded
        assert "failed" in result.failure_reason
        assert result.auth_attempts > 0

    def test_breaker_open_skips_attempts(self, network, medium_fleet):
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        registry = CircuitBreakerRegistry(failure_threshold=1,
                                          recovery_time_s=1e9)
        channel = LossyControlChannel(base_loss=1.0, seed=1)
        protocol = self._reliable(
            server, channel,
            ReliableExchange(RetryPolicy(max_attempts=2, timeout_s=0.1,
                                         jitter_fraction=0.0), registry),
        )
        graph = network.snapshot(0.0).graph
        first = protocol.associate(self._user(), graph,
                                   self._evaluator(medium_fleet), 0.0, b"pw")
        second = protocol.associate(self._user(), graph,
                                    self._evaluator(medium_fleet), 0.0, b"pw")
        assert not first.succeeded and not second.succeeded
        assert second.auth_attempts < first.auth_attempts
        assert len(registry.open_keys) > 0

    def test_retransmitted_auth_does_not_double_issue(self, network,
                                                      medium_fleet):
        # Retries live below the RADIUS layer: however many channel
        # attempts the exchange needed, exactly one request is handled.
        server = RadiusServer("acme", b"secret")
        server.enroll("alice", b"pw")
        protocol = self._reliable(
            server, LossyControlChannel(base_loss=0.4, seed=9),
            ReliableExchange(RetryPolicy(max_attempts=10,
                                         jitter_fraction=0.0)),
        )
        result = protocol.associate(
            self._user(), network.snapshot(0.0).graph,
            self._evaluator(medium_fleet), 0.0, b"pw",
        )
        assert result.succeeded
        assert server.accept_count == 1


def windows_chain(count, duration_s=120.0, overlap_s=10.0):
    """A chain of contact windows with fixed pairwise overlap."""
    windows = []
    start = 0.0
    for i in range(count):
        windows.append(ContactWindow(i, start, start + duration_s, 1.0))
        start += duration_s - overlap_s
    return windows


class TestHandover:
    def test_predictive_faster_than_reauth(self):
        windows = windows_chain(10)
        sim = HandoverSimulator()
        timelines = sim.compare_schemes(windows, 0.0, 1000.0)
        predictive = timelines["predictive"]
        reauth = timelines["reauthenticate"]
        assert predictive.total_interruption_s < reauth.total_interruption_s
        assert predictive.availability > reauth.availability

    def test_handover_counts_match_schedule(self):
        windows = windows_chain(5)
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 560.0)
        assert timeline.handover_count == 4

    def test_overlap_enables_preestablishment(self):
        sim = HandoverSimulator(successor_notice_s=5.0, switch_s=0.002,
                                link_setup_s=0.020)
        generous = sim.run(windows_chain(5, overlap_s=20.0),
                           HandoverScheme.PREDICTIVE, 0.0, 560.0)
        # 4 handovers at switch cost only + initial association.
        assert generous.total_interruption_s == pytest.approx(
            sim.link_setup_s + sim.auth_round_trip_s + 4 * 0.002
        )

    def test_no_overlap_pays_link_setup(self):
        sim = HandoverSimulator(successor_notice_s=5.0)
        tight = sim.run(windows_chain(5, overlap_s=1.0),
                        HandoverScheme.PREDICTIVE, 0.0, 560.0)
        assert tight.total_interruption_s == pytest.approx(
            sim.link_setup_s + sim.auth_round_trip_s
            + 4 * sim.link_setup_s
        )

    def test_reauth_pays_full_cost_every_time(self):
        sim = HandoverSimulator()
        timeline = sim.run(windows_chain(5), HandoverScheme.REAUTHENTICATE,
                           0.0, 560.0)
        per_handover = sim.link_setup_s + sim.auth_round_trip_s
        assert timeline.total_interruption_s == pytest.approx(
            5 * per_handover
        )
        assert all(e.reauthenticated for e in timeline.events)

    def test_coverage_gap_accounting(self):
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(1, 200.0, 300.0, 1.0),
        ]
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 300.0)
        assert timeline.coverage_gap_s == pytest.approx(100.0)

    def test_trailing_gap_counted(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 250.0)
        assert timeline.coverage_gap_s == pytest.approx(150.0)

    def test_no_windows_all_gap(self):
        sim = HandoverSimulator()
        timeline = sim.run([], HandoverScheme.PREDICTIVE, 0.0, 100.0)
        assert timeline.coverage_gap_s == 100.0
        assert timeline.availability == 0.0

    def test_longest_window_preferred(self):
        # Two overlapping windows: the scheme should ride the longer one.
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(1, 0.0, 400.0, 1.0),
        ]
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 400.0)
        assert timeline.events[0].to_satellite == 1
        assert timeline.handover_count == 0

    def test_starlink_interval_constant(self):
        assert STARLINK_HANDOVER_INTERVAL_S == 15.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            HandoverSimulator().run([], HandoverScheme.PREDICTIVE, 10.0, 10.0)


class TestHandoverReliability:
    def test_zero_loss_timeline_identical_to_no_reliability(self):
        windows = windows_chain(6)
        sim = HandoverSimulator()
        baseline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 660.0)
        reliability = HandoverReliability(
            ReliableExchange(NO_RETRY), loss_probability=0.0, seed=3)
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 660.0,
                           reliability=reliability)
        assert timeline.total_interruption_s == baseline.total_interruption_s
        assert [e.interruption_s for e in timeline.events] == [
            e.interruption_s for e in baseline.events
        ]
        assert [e.reauthenticated for e in timeline.events] == [
            e.reauthenticated for e in baseline.events
        ]

    def test_lossy_control_inflates_interruption(self):
        windows = windows_chain(6)
        sim = HandoverSimulator()
        baseline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 660.0)
        reliability = HandoverReliability(
            ReliableExchange(RetryPolicy(max_attempts=6, timeout_s=0.2,
                                         jitter_fraction=0.0)),
            loss_probability=0.5, seed=4)
        lossy = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 660.0,
                        reliability=reliability)
        assert lossy.total_interruption_s > baseline.total_interruption_s

    def test_exhausted_exchange_degrades_to_reauth(self):
        windows = windows_chain(4)
        sim = HandoverSimulator()
        reliability = HandoverReliability(
            ReliableExchange(RetryPolicy(max_attempts=2, timeout_s=0.1,
                                         jitter_fraction=0.0)),
            loss_probability=1.0, seed=4)
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 450.0,
                           reliability=reliability)
        # Every control exchange dies; every event degrades to a fresh
        # association — and nothing raises.
        assert all(e.reauthenticated for e in timeline.events)
        per_event_floor = 2 * 0.1 + sim.link_setup_s + sim.auth_round_trip_s
        assert all(e.interruption_s >= per_event_floor
                   for e in timeline.events)

    def test_reselect_with_dead_successor_does_not_raise(self):
        windows = [
            ContactWindow(0, 0.0, 300.0, 1.0),
            ContactWindow(1, 100.0, 400.0, 1.0),
        ]
        sim = HandoverSimulator()
        timeline = sim.reselect(windows, [(1, 0.0, float("inf"))],
                                HandoverScheme.PREDICTIVE, 0.0, 400.0)
        assert timeline.events[-1].to_satellite == 0
        assert timeline.coverage_gap_s == pytest.approx(100.0)

    def test_reselect_all_outages_degrades_to_gap(self):
        windows = windows_chain(3)
        sim = HandoverSimulator()
        outages = [(i, 0.0, float("inf")) for i in range(3)]
        timeline = sim.reselect(windows, outages,
                                HandoverScheme.PREDICTIVE, 0.0, 340.0)
        assert timeline.events == []
        assert timeline.coverage_gap_s == pytest.approx(340.0)

    def test_rejects_bad_loss_probability(self):
        with pytest.raises(ValueError):
            HandoverReliability(ReliableExchange(NO_RETRY),
                                loss_probability=1.5)

    def test_zero_loss_consumes_no_rng(self):
        reliability = HandoverReliability(ReliableExchange(NO_RETRY),
                                          loss_probability=0.0, seed=77)
        for _ in range(10):
            assert reliability.charge("handover:0", 0.02, 0.0).ok
        import numpy as np

        assert (reliability._rng.random()
                == np.random.default_rng(77).random())


class TestMaskContactWindows:
    def test_no_outages_identity(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        assert mask_contact_windows(windows, []) == windows

    def test_outage_clips_window_head(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(windows, [(0, 0.0, 40.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [(40.0, 100.0)]

    def test_outage_splits_window(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(windows, [(0, 30.0, 60.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [
            (0.0, 30.0), (60.0, 100.0)
        ]
        assert all(w.satellite_index == 0 for w in masked)
        assert all(w.max_elevation_rad == 1.0 for w in masked)

    def test_covering_outage_removes_window(self):
        windows = [ContactWindow(0, 10.0, 90.0, 1.0)]
        assert mask_contact_windows(windows, [(0, 0.0, 100.0)]) == []

    def test_permanent_loss_truncates_everything_after(self):
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(0, 200.0, 300.0, 1.0),
        ]
        masked = mask_contact_windows(windows, [(0, 50.0, float("inf"))])
        assert [(w.start_s, w.end_s) for w in masked] == [(0.0, 50.0)]

    def test_outage_only_hits_its_satellite(self):
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(1, 0.0, 100.0, 1.0),
        ]
        masked = mask_contact_windows(windows, [(0, 0.0, 200.0)])
        assert [w.satellite_index for w in masked] == [1]

    def test_rejects_inverted_outage(self):
        with pytest.raises(ValueError):
            mask_contact_windows([], [(0, 50.0, 40.0)])

    def test_outage_exactly_spanning_window_removes_it(self):
        # Boundary case: outage start == window start and end == window
        # end must leave no zero-length slivers behind.
        windows = [ContactWindow(0, 10.0, 90.0, 1.0)]
        assert mask_contact_windows(windows, [(0, 10.0, 90.0)]) == []

    def test_outage_touching_edges_keeps_window(self):
        # Abutting (not overlapping) outages leave the window whole.
        windows = [ContactWindow(0, 10.0, 90.0, 1.0)]
        masked = mask_contact_windows(
            windows, [(0, 0.0, 10.0), (0, 90.0, 100.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [(10.0, 90.0)]

    def test_inf_outage_starting_before_window_removes_it(self):
        windows = [
            ContactWindow(0, 100.0, 200.0, 1.0),
            ContactWindow(0, 300.0, 400.0, 1.0),
        ]
        assert mask_contact_windows(windows, [(0, 50.0, float("inf"))]) == []

    def test_inf_outage_mid_window_keeps_leading_piece(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(windows, [(0, 60.0, float("inf"))])
        assert [(w.start_s, w.end_s) for w in masked] == [(0.0, 60.0)]

    def test_overlapping_outages_on_one_satellite_union(self):
        # Two overlapping outages mask their union, not just one of them.
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(
            windows, [(0, 20.0, 60.0), (0, 40.0, 80.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [
            (0.0, 20.0), (80.0, 100.0)
        ]

    def test_overlapping_outages_order_independent(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        forward = mask_contact_windows(
            windows, [(0, 20.0, 60.0), (0, 40.0, 80.0)])
        backward = mask_contact_windows(
            windows, [(0, 40.0, 80.0), (0, 20.0, 60.0)])
        assert forward == backward

    def test_nested_outage_subsumed(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(
            windows, [(0, 10.0, 90.0), (0, 30.0, 40.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [
            (0.0, 10.0), (90.0, 100.0)
        ]

    def test_zero_length_outage_is_noop(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        assert mask_contact_windows(windows, [(0, 50.0, 50.0)]) == windows

    def test_masked_schedule_forces_extra_handover(self):
        # Losing the serving satellite mid-pass forces re-selection onto
        # the overlapping successor.
        windows = [
            ContactWindow(0, 0.0, 300.0, 1.0),
            ContactWindow(1, 100.0, 400.0, 1.0),
        ]
        sim = HandoverSimulator()
        baseline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 400.0)
        masked = mask_contact_windows(windows, [(0, 150.0, 400.0)])
        rerun = sim.run(masked, HandoverScheme.PREDICTIVE, 0.0, 400.0)
        assert rerun.availability <= baseline.availability
        assert rerun.events[-1].to_satellite == 1
