"""Tests for user association and satellite handover."""

import pytest

from repro.core.association import AssociationProtocol
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.core.handover import (
    HandoverScheme,
    HandoverSimulator,
    STARLINK_HANDOVER_INTERVAL_S,
    mask_contact_windows,
)
from repro.ground.user import UserTerminal
from repro.orbits.contact import ContactWindow
from repro.orbits.coordinates import GeodeticPoint
from repro.security.auth import RadiusServer


@pytest.fixture
def nairobi_user():
    return UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "op-a",
                        min_elevation_deg=10.0)


@pytest.fixture
def auth_setup(medium_fleet):
    server = RadiusServer("acme", b"secret")
    server.enroll("alice", b"pw")
    protocol = AssociationProtocol(
        radius_servers={"acme": server},
        auth_anchors={"acme": "gs-nairobi"},
    )
    return server, protocol


class TestAssociation:
    def _evaluator(self, medium_fleet, time_s=0.0):
        evaluator = BeaconEvaluator(min_elevation_deg=10.0)
        for spec in medium_fleet:
            evaluator.receive(Beacon.from_spec(spec, time_s))
        return evaluator

    def test_successful_association(self, network, medium_fleet, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"pw"
        )
        assert result.succeeded
        assert result.satellite_id is not None
        assert result.auth_round_trip_s > 0.0
        assert user.is_associated
        assert user.session_certificate is not None

    def test_wrong_password_rejected(self, network, medium_fleet, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"wrong"
        )
        assert not result.succeeded
        assert "rejected" in result.failure_reason
        assert not user.is_associated

    def test_no_overhead_satellite(self, network, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme")
        empty = BeaconEvaluator()
        snap = network.snapshot(0.0)
        result = protocol.associate(user, snap.graph, empty, 0.0, b"pw")
        assert not result.succeeded
        assert "no usable satellite" in result.failure_reason

    def test_unknown_home_provider(self, network, medium_fleet):
        protocol = AssociationProtocol(radius_servers={}, auth_anchors={})
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82),
                            "ghost-isp", min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"pw"
        )
        assert not result.succeeded
        assert "no" in result.failure_reason and "anchor" in result.failure_reason

    def test_auth_time_dominated_by_isl_round_trip(self, network,
                                                   medium_fleet, auth_setup):
        _server, protocol = auth_setup
        user = UserTerminal("alice", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0)
        result = protocol.associate(
            user, snap.graph, self._evaluator(medium_fleet), 0.0, b"pw"
        )
        assert result.auth_round_trip_s >= 2.0 * 780.0 / 299792.458


def windows_chain(count, duration_s=120.0, overlap_s=10.0):
    """A chain of contact windows with fixed pairwise overlap."""
    windows = []
    start = 0.0
    for i in range(count):
        windows.append(ContactWindow(i, start, start + duration_s, 1.0))
        start += duration_s - overlap_s
    return windows


class TestHandover:
    def test_predictive_faster_than_reauth(self):
        windows = windows_chain(10)
        sim = HandoverSimulator()
        timelines = sim.compare_schemes(windows, 0.0, 1000.0)
        predictive = timelines["predictive"]
        reauth = timelines["reauthenticate"]
        assert predictive.total_interruption_s < reauth.total_interruption_s
        assert predictive.availability > reauth.availability

    def test_handover_counts_match_schedule(self):
        windows = windows_chain(5)
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 560.0)
        assert timeline.handover_count == 4

    def test_overlap_enables_preestablishment(self):
        sim = HandoverSimulator(successor_notice_s=5.0, switch_s=0.002,
                                link_setup_s=0.020)
        generous = sim.run(windows_chain(5, overlap_s=20.0),
                           HandoverScheme.PREDICTIVE, 0.0, 560.0)
        # 4 handovers at switch cost only + initial association.
        assert generous.total_interruption_s == pytest.approx(
            sim.link_setup_s + sim.auth_round_trip_s + 4 * 0.002
        )

    def test_no_overlap_pays_link_setup(self):
        sim = HandoverSimulator(successor_notice_s=5.0)
        tight = sim.run(windows_chain(5, overlap_s=1.0),
                        HandoverScheme.PREDICTIVE, 0.0, 560.0)
        assert tight.total_interruption_s == pytest.approx(
            sim.link_setup_s + sim.auth_round_trip_s
            + 4 * sim.link_setup_s
        )

    def test_reauth_pays_full_cost_every_time(self):
        sim = HandoverSimulator()
        timeline = sim.run(windows_chain(5), HandoverScheme.REAUTHENTICATE,
                           0.0, 560.0)
        per_handover = sim.link_setup_s + sim.auth_round_trip_s
        assert timeline.total_interruption_s == pytest.approx(
            5 * per_handover
        )
        assert all(e.reauthenticated for e in timeline.events)

    def test_coverage_gap_accounting(self):
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(1, 200.0, 300.0, 1.0),
        ]
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 300.0)
        assert timeline.coverage_gap_s == pytest.approx(100.0)

    def test_trailing_gap_counted(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 250.0)
        assert timeline.coverage_gap_s == pytest.approx(150.0)

    def test_no_windows_all_gap(self):
        sim = HandoverSimulator()
        timeline = sim.run([], HandoverScheme.PREDICTIVE, 0.0, 100.0)
        assert timeline.coverage_gap_s == 100.0
        assert timeline.availability == 0.0

    def test_longest_window_preferred(self):
        # Two overlapping windows: the scheme should ride the longer one.
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(1, 0.0, 400.0, 1.0),
        ]
        sim = HandoverSimulator()
        timeline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 400.0)
        assert timeline.events[0].to_satellite == 1
        assert timeline.handover_count == 0

    def test_starlink_interval_constant(self):
        assert STARLINK_HANDOVER_INTERVAL_S == 15.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            HandoverSimulator().run([], HandoverScheme.PREDICTIVE, 10.0, 10.0)


class TestMaskContactWindows:
    def test_no_outages_identity(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        assert mask_contact_windows(windows, []) == windows

    def test_outage_clips_window_head(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(windows, [(0, 0.0, 40.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [(40.0, 100.0)]

    def test_outage_splits_window(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        masked = mask_contact_windows(windows, [(0, 30.0, 60.0)])
        assert [(w.start_s, w.end_s) for w in masked] == [
            (0.0, 30.0), (60.0, 100.0)
        ]
        assert all(w.satellite_index == 0 for w in masked)
        assert all(w.max_elevation_rad == 1.0 for w in masked)

    def test_covering_outage_removes_window(self):
        windows = [ContactWindow(0, 10.0, 90.0, 1.0)]
        assert mask_contact_windows(windows, [(0, 0.0, 100.0)]) == []

    def test_permanent_loss_truncates_everything_after(self):
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(0, 200.0, 300.0, 1.0),
        ]
        masked = mask_contact_windows(windows, [(0, 50.0, float("inf"))])
        assert [(w.start_s, w.end_s) for w in masked] == [(0.0, 50.0)]

    def test_outage_only_hits_its_satellite(self):
        windows = [
            ContactWindow(0, 0.0, 100.0, 1.0),
            ContactWindow(1, 0.0, 100.0, 1.0),
        ]
        masked = mask_contact_windows(windows, [(0, 0.0, 200.0)])
        assert [w.satellite_index for w in masked] == [1]

    def test_rejects_inverted_outage(self):
        with pytest.raises(ValueError):
            mask_contact_windows([], [(0, 50.0, 40.0)])

    def test_masked_schedule_forces_extra_handover(self):
        # Losing the serving satellite mid-pass forces re-selection onto
        # the overlapping successor.
        windows = [
            ContactWindow(0, 0.0, 300.0, 1.0),
            ContactWindow(1, 100.0, 400.0, 1.0),
        ]
        sim = HandoverSimulator()
        baseline = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 400.0)
        masked = mask_contact_windows(windows, [(0, 150.0, 400.0)])
        rerun = sim.run(masked, HandoverScheme.PREDICTIVE, 0.0, 400.0)
        assert rerun.availability <= baseline.availability
        assert rerun.events[-1].to_satellite == 1
