"""Tests for the federation registry and the OpenSpaceNetwork facade."""

import networkx as nx
import pytest

from repro.core.federation import Federation, Operator
from repro.core.interop import (
    InteropError,
    SizeClass,
    build_fleet,
    medium_spacecraft,
)
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint


@pytest.fixture
def two_operator_federation(iridium):
    fed = Federation()
    elements = list(iridium)
    fleet_a = build_fleet(iridium.subset(33), "op-a", SizeClass.MEDIUM)
    fed.admit(Operator("op-a", satellites=fleet_a,
                       ground_stations=default_station_network()[:8]))
    fleet_b = [
        medium_spacecraft(f"sat-op-b-{i}", "op-b", el)
        for i, el in enumerate(elements[33:])
    ]
    fed.admit(Operator("op-b", satellites=fleet_b,
                       ground_stations=default_station_network()[8:]))
    return fed


class TestFederation:
    def test_admission_and_lookup(self, two_operator_federation):
        fed = two_operator_federation
        assert fed.member_names == ["op-a", "op-b"]
        assert fed.operator("op-a").satellite_count == 33
        assert fed.total_satellite_count == 66

    def test_duplicate_admission_rejected(self, two_operator_federation):
        with pytest.raises(ValueError, match="already admitted"):
            two_operator_federation.admit(Operator("op-a"))

    def test_owner_mismatch_rejected(self, iridium):
        fed = Federation()
        fleet = build_fleet(iridium.subset(2), "op-x", SizeClass.SMALL)
        with pytest.raises(InteropError, match="declares owner"):
            fed.admit(Operator("op-y", satellites=fleet))

    def test_noncompliant_fleet_rejected(self, iridium):
        from repro.core.interop import SpacecraftSpec
        from repro.phy.optical import OpticalTerminal
        fed = Federation()
        bad = SpacecraftSpec(
            satellite_id="bad", owner="op-z", size_class=SizeClass.MEDIUM,
            elements=iridium.elements[0],
            isl_terminals=[OpticalTerminal()],
            laser_boresights_deg=[0.0],
        )
        with pytest.raises(InteropError, match="mandatory RF"):
            fed.admit(Operator("op-z", satellites=[bad]))

    def test_trust_store_populated(self, two_operator_federation):
        assert two_operator_federation.trust_store.known_issuers() == {
            "op-a", "op-b"
        }

    def test_quarantine_excludes_assets(self, two_operator_federation):
        fed = two_operator_federation
        fed.monitor.report("op-b", "interception_attempt")
        fed.monitor.report("op-b", "forged_certificate")
        assert fed.monitor.is_quarantined("op-b")
        active_sats = fed.all_satellites()
        assert all(s.owner == "op-a" for s in active_sats)
        assert len(fed.all_satellites(include_quarantined=True)) == 66
        assert all(
            gs.owner != "op-b" for gs in fed.all_ground_stations()
        )

    def test_certificates_roam_across_operators(self, two_operator_federation):
        fed = two_operator_federation
        cert = fed.operator("op-a").authority.issue("alice", now_s=0.0)
        # op-b verifies through the shared trust store.
        fed.trust_store.verify(cert, now_s=10.0)


class TestOpenSpaceNetwork:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one satellite"):
            OpenSpaceNetwork([])

    def test_snapshot_node_kinds(self, network):
        snap = network.snapshot(0.0)
        kinds = nx.get_node_attributes(snap.graph, "kind")
        assert set(kinds.values()) == {"satellite", "ground_station"}
        assert len(snap.nodes_of_kind("ground_station")) == 15
        assert len(snap.nodes_of_kind("satellite")) == 66

    def test_ground_edges_have_tariff_and_queue(self, network):
        snap = network.snapshot(0.0)
        ground_edges = [
            data for _u, _v, data in snap.graph.edges(data=True)
            if data.get("kind") == "ground_link"
        ]
        assert ground_edges
        for data in ground_edges:
            assert data["tariff_per_gb"] >= 0.0
            assert data["queue_delay_s"] >= 0.0
            assert data["capacity_bps"] > 0.0

    def test_user_attachment(self, network):
        user = UserTerminal("u1", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0, users=[user])
        assert "u1" in snap.graph
        assert snap.graph.degree("u1") >= 1

    def test_route_between_satellites(self, network_snapshot):
        sats = network_snapshot.nodes_of_kind("satellite")
        metrics = network_snapshot.route(sats[0], sats[30])
        assert metrics is not None
        assert metrics.total_delay_s > 0.0

    def test_nearest_ground_station_route(self, network):
        user = UserTerminal("u1", GeodeticPoint(-1.29, 36.82), "acme",
                            min_elevation_deg=10.0)
        snap = network.snapshot(0.0, users=[user])
        metrics = snap.nearest_ground_station_route("u1")
        assert metrics is not None
        # Nairobi has a gateway nearby: expect a short path.
        assert metrics.total_delay_ms < 100.0

    def test_user_to_internet_latency(self, network):
        user = UserTerminal("u1", GeodeticPoint(45.0, 10.0), "acme",
                            min_elevation_deg=10.0)
        latency = network.user_to_internet_latency_s(user, 0.0)
        assert latency is not None
        assert 0.002 < latency < 0.2

    def test_from_federation(self, two_operator_federation):
        net = OpenSpaceNetwork.from_federation(two_operator_federation)
        snap = net.snapshot(0.0)
        owners = {
            data["owner"] for _n, data in snap.graph.nodes(data=True)
            if data["kind"] == "satellite"
        }
        assert owners == {"op-a", "op-b"}

    def test_quarantine_shrinks_network(self, two_operator_federation):
        fed = two_operator_federation
        fed.monitor.report("op-b", "interception_attempt")
        fed.monitor.report("op-b", "forged_certificate")
        net = OpenSpaceNetwork.from_federation(fed)
        assert len(net.satellites) == 33

    def test_topology_changes_over_time(self, network):
        early = network.snapshot(0.0)
        late = network.snapshot(1800.0)
        assert (set(early.graph.edges) != set(late.graph.edges))

    def test_route_unreachable_returns_none(self, medium_fleet):
        # No ground stations: routing to one cannot succeed.
        net = OpenSpaceNetwork(medium_fleet[:5], [])
        snap = net.snapshot(0.0)
        assert snap.nearest_ground_station_route(
            medium_fleet[0].satellite_id
        ) is None
