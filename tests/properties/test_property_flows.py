"""Property-based tests for flow simulation and time-expanded routing."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.flowsim import (
    ActiveFlow,
    FlowSimulator,
    max_min_fair_rates,
)
from repro.simulation.traffic import FlowSpec


def line_flow(flow_id, size_bytes, start_s=0.0):
    spec = FlowSpec(flow_id, "u", start_s, size_bytes)
    return ActiveFlow(spec=spec, path=["u", "s", "g"],
                      edges=[("s", "u"), ("g", "s")],
                      remaining_bytes=size_bytes, admitted_at_s=start_s)


class TestMaxMinFairProperties:
    @given(count=st.integers(min_value=1, max_value=12),
           capacity=st.floats(min_value=1e5, max_value=1e9))
    def test_identical_flows_get_equal_rates(self, count, capacity):
        flows = [line_flow(f"f{i}", 1e6) for i in range(count)]
        max_min_fair_rates(flows, {("s", "u"): capacity,
                                   ("g", "s"): capacity})
        rates = [f.rate_bps for f in flows]
        assert max(rates) - min(rates) < 1e-6 * capacity
        assert sum(rates) <= capacity * (1 + 1e-9)

    @given(counts=st.lists(st.integers(min_value=1, max_value=6),
                           min_size=2, max_size=4),
           capacity=st.floats(min_value=1e6, max_value=1e8))
    @settings(max_examples=40)
    def test_no_link_oversubscribed(self, counts, capacity):
        # Flows over a shared chain of links of varying lengths.
        nodes = [f"n{i}" for i in range(len(counts) + 1)]
        capacities = {}
        for u, v in zip(nodes[:-1], nodes[1:]):
            key = (u, v) if u <= v else (v, u)
            capacities[key] = capacity
        flows = []
        for index, span in enumerate(counts):
            path = nodes[: span + 1]
            edges = [
                (u, v) if u <= v else (v, u)
                for u, v in zip(path[:-1], path[1:])
            ]
            spec = FlowSpec(f"f{index}", path[0], 0.0, 1e6)
            flows.append(ActiveFlow(spec=spec, path=path, edges=edges,
                                    remaining_bytes=1e6, admitted_at_s=0.0))
        max_min_fair_rates(flows, capacities)
        for key, cap in capacities.items():
            used = sum(f.rate_bps for f in flows if key in f.edges)
            assert used <= cap * (1 + 1e-9)
        assert all(f.rate_bps > 0.0 for f in flows)


class TestFlowSimulatorProperties:
    @given(sizes=st.lists(st.floats(min_value=1e4, max_value=5e6),
                          min_size=1, max_size=8),
           starts=st.lists(st.floats(min_value=0.0, max_value=5.0),
                           min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_conservation_all_admitted_flows_complete(self, sizes, starts):
        count = min(len(sizes), len(starts))
        graph = nx.Graph()
        graph.add_node("u", kind="user")
        graph.add_node("g", kind="ground_station")
        graph.add_edge("u", "g", delay_s=0.01, capacity_bps=10e6)
        flows = [
            FlowSpec(f"f{i}", "u", starts[i], sizes[i]) for i in range(count)
        ]
        sim = FlowSimulator(graph, lambda g, f, a: ["u", "g"])
        result = sim.run(flows)
        assert len(result.completed) == count
        # Every flow finishes no earlier than its serial transfer time.
        for record in result.completed:
            serial = record.spec.size_bytes * 8.0 / 10e6
            assert record.completion_time_s >= serial * (1 - 1e-9)

    @given(sizes=st.lists(st.floats(min_value=1e5, max_value=5e6),
                          min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_makespan_at_least_total_work(self, sizes):
        graph = nx.Graph()
        graph.add_edge("u", "g", capacity_bps=8e6, delay_s=0.0)
        graph.add_node("u", kind="user")
        graph.add_node("g", kind="ground_station")
        flows = [FlowSpec(f"f{i}", "u", 0.0, s) for i, s in enumerate(sizes)]
        result = FlowSimulator(graph, lambda g, f, a: ["u", "g"]).run(flows)
        makespan = max(r.finish_s for r in result.completed)
        total_work_s = sum(sizes) * 8.0 / 8e6
        assert makespan == pytest.approx(total_work_s, rel=1e-6)
