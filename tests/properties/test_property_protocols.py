"""Property-based tests for protocol layers (PHY, MAC, security)."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.channel import free_space_path_loss_db
from repro.phy.linkbudget import shannon_capacity_bps
from repro.phy.modulation import achievable_rate_bps, select_modcod
from repro.security.auth import _hide_password, _reveal_password
from repro.security.certificates import CertificateAuthority
from repro.simulation.engine import SimulationEngine


class TestPhyProperties:
    @given(d=st.floats(min_value=1.0, max_value=50000.0),
           f=st.floats(min_value=1e8, max_value=3e11))
    def test_fspl_monotone_in_distance(self, d, f):
        assert free_space_path_loss_db(2 * d, f) > free_space_path_loss_db(d, f)

    @given(snr=st.floats(min_value=-30.0, max_value=40.0),
           bw=st.floats(min_value=1e3, max_value=1e10))
    def test_modcod_rate_never_exceeds_shannon(self, snr, bw):
        assert achievable_rate_bps(snr, bw, margin_db=0.0) <= (
            shannon_capacity_bps(bw, snr) + 1e-6
        )

    @given(snr=st.floats(min_value=-30.0, max_value=40.0))
    def test_modcod_selection_closes(self, snr):
        chosen = select_modcod(snr, margin_db=1.0)
        if chosen is not None:
            assert chosen.required_snr_db <= snr - 1.0

    @given(low=st.floats(min_value=-30.0, max_value=40.0),
           delta=st.floats(min_value=0.0, max_value=30.0))
    def test_rate_monotone_in_snr(self, low, delta):
        bw = 1e6
        assert achievable_rate_bps(low + delta, bw) >= achievable_rate_bps(
            low, bw
        )


class TestAuthProperties:
    @given(password=st.binary(min_size=1, max_size=64),
           secret=st.binary(min_size=1, max_size=32),
           auth=st.binary(min_size=16, max_size=16))
    @settings(max_examples=60)
    def test_password_hiding_round_trip(self, password, secret, auth):
        # Trailing NUL bytes are indistinguishable from padding — the RFC
        # scheme shares this property — so test NUL-free passwords.
        password = password.replace(b"\x00", b"\x01")
        hidden = _hide_password(password, secret, auth)
        assert _reveal_password(hidden, secret, auth) == password

    @given(user=st.text(min_size=1, max_size=30),
           now=st.floats(min_value=0.0, max_value=1e6),
           validity=st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=40)
    def test_issued_certificates_always_verify_in_window(self, user, now,
                                                         validity):
        authority = CertificateAuthority("isp", signing_key=b"k" * 32)
        cert = authority.issue(user, now_s=now, validity_s=validity)
        assert authority.is_valid(cert, now)
        assert authority.is_valid(cert, now + validity)
        assert not authority.is_valid(cert, now + validity + 1.0)
        assert not authority.is_valid(cert, now - 1.0)


class TestEngineProperties:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=1000.0),
                          min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_events_always_fire_in_nondecreasing_time_order(self, times):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule(t, lambda t=t: fired.append(engine.now_s))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(times=st.lists(st.floats(min_value=0.0, max_value=100.0),
                          min_size=1, max_size=30),
           horizon=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=40)
    def test_run_until_never_fires_late_events(self, times, horizon):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run_until(horizon)
        assert all(t <= horizon for t in fired)
        assert len(fired) == sum(1 for t in times if t <= horizon)
