"""Property-based tests for spectrum coordination and antenna scheduling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spectrum import SpectrumCoordinator
from repro.ground.scheduling import AntennaScheduler, ContactRequest
from repro.orbits.contact import ContactWindow
from repro.orbits.walker import random_constellation


class TestSpectrumProperties:
    @given(count=st.integers(min_value=2, max_value=40),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_unconstrained_plan_always_conflict_free(self, count, seed):
        constellation = random_constellation(
            count, np.random.default_rng(seed)
        )
        positions = {
            f"s{i}": p for i, p in enumerate(constellation.positions_at(0.0))
        }
        coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                          grid_resolution=8)
        plan = coordinator.plan(positions)
        assert plan.is_conflict_free()
        assert set(plan.assignments) == set(positions)
        assert plan.slot_count >= 1

    @given(count=st.integers(min_value=2, max_value=30),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_plan_deterministic(self, count, seed):
        constellation = random_constellation(
            count, np.random.default_rng(seed)
        )
        positions = {
            f"s{i}": p for i, p in enumerate(constellation.positions_at(0.0))
        }
        coordinator = SpectrumCoordinator(grid_resolution=8)
        assert (coordinator.plan(positions).assignments
                == coordinator.plan(positions).assignments)


def window_strategy():
    return st.tuples(
        st.floats(min_value=0.0, max_value=5000.0),   # start
        st.floats(min_value=120.0, max_value=1000.0),  # duration
        st.floats(min_value=1.0, max_value=5.0),       # priority
    )


class TestSchedulingProperties:
    @given(specs=st.lists(window_strategy(), min_size=1, max_size=20),
           antennas=st.integers(min_value=1, max_value=3),
           gap=st.floats(min_value=0.0, max_value=60.0))
    @settings(max_examples=40, deadline=None)
    def test_reservations_never_overlap_on_one_antenna(self, specs,
                                                       antennas, gap):
        requests = [
            ContactRequest(
                request_id=f"r{i}", provider=f"op-{i % 3}",
                window=ContactWindow(i, start, start + duration, 1.0),
                min_duration_s=60.0, priority=priority,
            )
            for i, (start, duration, priority) in enumerate(specs)
        ]
        scheduler = AntennaScheduler(antenna_count=antennas, slew_gap_s=gap)
        result = scheduler.schedule(requests)
        by_antenna = {}
        for reservation in result.reservations:
            by_antenna.setdefault(reservation.antenna, []).append(
                (reservation.start_s, reservation.end_s)
            )
        for slots in by_antenna.values():
            ordered = sorted(slots)
            for (s1, e1), (s2, _e2) in zip(ordered[:-1], ordered[1:]):
                assert s2 >= e1 + gap - 1e-9

    @given(specs=st.lists(window_strategy(), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_grants_respect_windows_and_minimums(self, specs):
        requests = [
            ContactRequest(
                request_id=f"r{i}", provider="op",
                window=ContactWindow(i, start, start + duration, 1.0),
                min_duration_s=60.0, priority=priority,
            )
            for i, (start, duration, priority) in enumerate(specs)
        ]
        result = AntennaScheduler(antenna_count=2).schedule(requests)
        windows = {r.request_id: r.window for r in requests}
        minimums = {r.request_id: r.min_duration_s for r in requests}
        for reservation in result.reservations:
            window = windows[reservation.request_id]
            assert reservation.start_s >= window.start_s - 1e-9
            assert reservation.end_s <= window.end_s + 1e-9
            assert reservation.duration_s >= minimums[reservation.request_id] - 1e-9

    @given(specs=st.lists(window_strategy(), min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_every_request_granted_or_rejected_exactly_once(self, specs):
        requests = [
            ContactRequest(
                request_id=f"r{i}", provider="op",
                window=ContactWindow(i, start, start + duration, 1.0),
                priority=priority,
            )
            for i, (start, duration, priority) in enumerate(specs)
        ]
        result = AntennaScheduler().schedule(requests)
        granted = {r.request_id for r in result.reservations}
        rejected = {r.request_id for r in result.rejected}
        assert granted | rejected == {r.request_id for r in requests}
        assert granted & rejected == set()
