"""Property-based tests for handover timelines and policy regions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.handover import HandoverScheme, HandoverSimulator
from repro.core.policy import PolicyRegistry, Region
from repro.orbits.contact import ContactWindow
from repro.orbits.coordinates import GeodeticPoint


def windows_from(specs):
    """Build non-degenerate contact windows from (start, duration) pairs."""
    return [
        ContactWindow(i, start, start + duration, 1.0)
        for i, (start, duration) in enumerate(specs)
    ]


window_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3000.0),
        st.floats(min_value=30.0, max_value=900.0),
    ),
    min_size=0, max_size=12,
)


class TestHandoverProperties:
    @given(specs=window_specs)
    @settings(max_examples=50, deadline=None)
    def test_timeline_invariants(self, specs):
        simulator = HandoverSimulator()
        windows = windows_from(specs)
        for scheme in HandoverScheme:
            timeline = simulator.run(windows, scheme, 0.0, 3600.0)
            assert 0.0 <= timeline.availability <= 1.0
            assert timeline.total_interruption_s >= 0.0
            assert timeline.coverage_gap_s <= timeline.duration_s + 1e-9
            assert timeline.handover_count == max(0, len(timeline.events) - 1)
            # Events are time-ordered.
            times = [event.time_s for event in timeline.events]
            assert times == sorted(times)

    @given(specs=window_specs)
    @settings(max_examples=50, deadline=None)
    def test_predictive_never_worse_than_reauth(self, specs):
        simulator = HandoverSimulator()
        windows = windows_from(specs)
        predictive = simulator.run(windows, HandoverScheme.PREDICTIVE,
                                   0.0, 3600.0)
        reauth = simulator.run(windows, HandoverScheme.REAUTHENTICATE,
                               0.0, 3600.0)
        assert (predictive.total_interruption_s
                <= reauth.total_interruption_s + 1e-9)
        assert predictive.availability >= reauth.availability - 1e-9
        # Same schedule, same gaps and handover count under both schemes.
        assert predictive.coverage_gap_s == pytest.approx(
            reauth.coverage_gap_s
        )
        assert predictive.handover_count == reauth.handover_count


class TestPolicyProperties:
    @given(lat=st.floats(min_value=-89.0, max_value=89.0),
           lon=st.floats(min_value=-179.9, max_value=179.9))
    @settings(max_examples=100)
    def test_region_assignment_deterministic_and_exclusive(self, lat, lon):
        registry = PolicyRegistry()
        point = GeodeticPoint(lat, lon)
        first = registry.region_of(point)
        second = registry.region_of(point)
        assert first is second or (
            first is not None and second is not None
            and first.name == second.name
        )
        if first is not None:
            assert first.contains(point)

    @given(lat=st.floats(min_value=-89.0, max_value=89.0),
           lon=st.floats(min_value=-179.9, max_value=179.9))
    @settings(max_examples=60)
    def test_compliant_gateways_subset_of_all(self, lat, lon):
        from repro.ground.station import default_station_network
        registry = PolicyRegistry()
        stations = default_station_network()
        allowed = registry.compliant_gateways(GeodeticPoint(lat, lon),
                                              stations)
        assert allowed <= {s.station_id for s in stations}

    @given(min_lat=st.floats(min_value=-80.0, max_value=70.0),
           span=st.floats(min_value=1.0, max_value=20.0),
           lon=st.floats(min_value=-170.0, max_value=170.0))
    @settings(max_examples=60)
    def test_box_membership_consistent(self, min_lat, span, lon):
        region = Region("box", min_lat, min_lat + span, lon - 5.0, lon + 5.0)
        inside = GeodeticPoint(min_lat + span / 2.0, lon)
        outside = GeodeticPoint(
            max(-90.0, min(90.0, min_lat - 1.0)), lon
        )
        assert region.contains(inside)
        if outside.latitude_deg < min_lat:
            assert not region.contains(outside)
