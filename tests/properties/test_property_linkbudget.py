"""Property tests: array link budgets equal the scalar path bit for bit.

The batched epoch engine prices stacked edge arrays through
``rf_link_budget_arrays`` / ``optical_link_budget_arrays`` where the
scalar walk calls ``rf_link_budget`` / ``optical_link_budget`` per edge.
The digest gates that hold the two engines together only work if the
budgets agree to the last ulp — not merely to a tolerance — so these
properties assert exact float64 equality of every budget field and every
derived quantity, across the realistic RF and optical parameter ranges.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import (
    OpticalTerminal,
    RFTerminal,
    achievable_rate_bps,
    achievable_rate_bps_array,
    optical_link_budget,
    optical_link_budget_arrays,
    rf_link_budget,
    rf_link_budget_arrays,
)

# LEO slant ranges: a near-overhead user pass out to a long ISL chord.
distance_lists = st.lists(
    st.floats(min_value=300.0, max_value=9000.0), min_size=1, max_size=8
)
elevation_lists = st.lists(
    st.floats(min_value=0.0, max_value=np.pi / 2.0), min_size=1, max_size=8
)
band_names = st.sampled_from(
    ["uhf", "s_band", "ku_uplink", "ku_downlink", "ka_gateway"]
)


def _assert_budget_rows_equal(arrays, scalars):
    """Every row of a LinkBudgetArrays equals its scalar LinkBudget."""
    assert len(arrays) == len(scalars)
    for index, scalar in enumerate(scalars):
        row = arrays.budget_at(index)
        assert row == scalar  # dataclass equality: exact float64 fields
        # Derived quantities come from the same fields, but check the
        # array-side reductions too (they run as whole-array ufuncs).
        assert float(np.asarray(arrays.snr_db)[index]) == scalar.snr_db
        assert (float(np.asarray(arrays.shannon_capacity_bps)[index])
                == scalar.shannon_capacity_bps)


class TestRFBudgetEquivalence:
    @settings(deadline=None, max_examples=50)
    @given(band=band_names, distances=distance_lists,
           elevations=elevation_lists,
           tx_power_w=st.floats(min_value=0.1, max_value=200.0),
           gain_dbi=st.floats(min_value=0.0, max_value=45.0),
           noise_k=st.floats(min_value=50.0, max_value=1200.0),
           rain=st.floats(min_value=0.0, max_value=50.0))
    def test_bitwise_matches_scalar(self, band, distances, elevations,
                                    tx_power_w, gain_dbi, noise_k, rain):
        count = min(len(distances), len(elevations))
        distances, elevations = distances[:count], elevations[:count]
        tx = RFTerminal(band, tx_power_w=tx_power_w,
                        antenna_gain_dbi=gain_dbi)
        rx = RFTerminal(band, antenna_gain_dbi=gain_dbi / 2.0,
                        noise_temp_k=noise_k)
        arrays = rf_link_budget_arrays(
            tx, rx, np.array(distances),
            elevations_rad=np.array(elevations), rain_rate_mm_h=rain,
        )
        scalars = [
            rf_link_budget(tx, rx, d, elevation_rad=e, rain_rate_mm_h=rain)
            for d, e in zip(distances, elevations)
        ]
        _assert_budget_rows_equal(arrays, scalars)

    @settings(deadline=None, max_examples=20)
    @given(band=band_names, distances=distance_lists)
    def test_default_elevation_is_zenith(self, band, distances):
        tx = RFTerminal(band, antenna_gain_dbi=20.0)
        rx = RFTerminal(band, antenna_gain_dbi=10.0)
        arrays = rf_link_budget_arrays(tx, rx, np.array(distances))
        scalars = [rf_link_budget(tx, rx, d) for d in distances]
        _assert_budget_rows_equal(arrays, scalars)


class TestOpticalBudgetEquivalence:
    @settings(deadline=None, max_examples=50)
    @given(distances=distance_lists,
           tx_power_w=st.floats(min_value=0.1, max_value=20.0),
           aperture_m=st.floats(min_value=0.02, max_value=0.5),
           divergence=st.floats(min_value=5.0, max_value=100.0),
           jitter=st.floats(min_value=0.0, max_value=20.0),
           tracking=st.booleans())
    def test_bitwise_matches_scalar(self, distances, tx_power_w,
                                    aperture_m, divergence, jitter,
                                    tracking):
        tx = OpticalTerminal(tx_power_w=tx_power_w, aperture_m=aperture_m,
                             beam_divergence_urad=divergence,
                             pointing_jitter_urad=jitter)
        rx = OpticalTerminal(aperture_m=aperture_m)
        arrays = optical_link_budget_arrays(
            tx, rx, np.array(distances), tracking=tracking
        )
        scalars = [optical_link_budget(tx, rx, d, tracking=tracking)
                   for d in distances]
        _assert_budget_rows_equal(arrays, scalars)


class TestAchievableRateEquivalence:
    @settings(deadline=None, max_examples=50)
    @given(snrs=st.lists(st.floats(min_value=-30.0, max_value=40.0),
                         min_size=1, max_size=12),
           bandwidth_hz=st.floats(min_value=1e6, max_value=10e9))
    def test_bitwise_matches_scalar(self, snrs, bandwidth_hz):
        rates = achievable_rate_bps_array(np.array(snrs), bandwidth_hz)
        for index, snr in enumerate(snrs):
            assert (float(np.asarray(rates)[index])
                    == achievable_rate_bps(snr, bandwidth_hz))
