"""Property-based tests for the OFDMA scheduler and pairing protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interop import medium_spacecraft, small_spacecraft
from repro.core.pairing import PairingProtocol
from repro.mac.ofdm import OfdmConfig, OfdmaScheduler, UserDemand
from repro.orbits.elements import OrbitalElements

user_strategy = st.tuples(
    st.floats(min_value=-20.0, max_value=30.0),   # snr_db
    st.floats(min_value=0.0, max_value=500e6),    # demand_bps
)


class TestOfdmaProperties:
    @given(users=st.lists(user_strategy, min_size=1, max_size=20),
           policy=st.sampled_from(["proportional_fair", "round_robin"]))
    @settings(max_examples=50, deadline=None)
    def test_block_conservation(self, users, policy):
        config = OfdmConfig()
        scheduler = OfdmaScheduler(config, policy=policy)
        demands = [
            UserDemand(f"u{i}", snr, demand)
            for i, (snr, demand) in enumerate(users)
        ]
        grants = scheduler.schedule(demands)
        assert sum(g.blocks for g in grants) <= config.total_blocks
        for grant in grants:
            assert grant.blocks >= 0
            assert grant.rate_bps >= 0.0

    @given(users=st.lists(user_strategy, min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_zero_demand_or_dead_link_gets_nothing(self, users):
        scheduler = OfdmaScheduler(OfdmConfig())
        demands = [
            UserDemand(f"u{i}", snr, demand)
            for i, (snr, demand) in enumerate(users)
        ]
        grants = {g.user_id: g for g in scheduler.schedule(demands)}
        for demand in demands:
            grant = grants[demand.user_id]
            if demand.demand_bps == 0.0 or demand.snr_db < -5.0:
                assert grant.blocks == 0 or grant.rate_bps == 0.0

    @given(users=st.lists(user_strategy, min_size=2, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_grant_never_wildly_exceeds_demand(self, users):
        # The scheduler grants whole blocks, so overshoot is bounded by
        # one block's rate.
        config = OfdmConfig()
        scheduler = OfdmaScheduler(config)
        demands = [
            UserDemand(f"u{i}", snr, demand)
            for i, (snr, demand) in enumerate(users)
        ]
        grants = {g.user_id: g for g in scheduler.schedule(demands)}
        for demand in demands:
            grant = grants[demand.user_id]
            if grant.blocks > 0:
                per_block = grant.rate_bps / grant.blocks
                assert grant.rate_bps <= demand.demand_bps + per_block


class TestPairingProperties:
    @given(distance=st.floats(min_value=100.0, max_value=6000.0),
           bearing=st.floats(min_value=0.0, max_value=359.9),
           hold=st.floats(min_value=0.0, max_value=3600.0),
           a_optical=st.booleans(), b_optical=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_outcome_invariants(self, distance, bearing, hold, a_optical,
                                b_optical):
        factory_a = medium_spacecraft if a_optical else small_spacecraft
        factory_b = medium_spacecraft if b_optical else small_spacecraft
        spec_a = factory_a("a", "op-a", OrbitalElements.circular(
            780.0, inclination_rad=0.9))
        spec_b = factory_b("b", "op-b", OrbitalElements.circular(
            780.0, inclination_rad=0.9, mean_anomaly_rad=0.4))
        outcome = PairingProtocol().pair(
            spec_a, spec_b, distance,
            bearing_a_to_b_deg=bearing, expected_hold_s=hold,
        )
        # Timing components are nonnegative and total is their sum.
        assert outcome.rf_handshake_s > 0.0
        assert outcome.slew_s >= 0.0
        assert outcome.pat_s >= 0.0
        assert outcome.total_time_s == pytest.approx(
            outcome.rf_handshake_s + outcome.slew_s + outcome.pat_s
        )
        # Optical upgrade requires both sides optical-capable.
        if outcome.upgraded_to_optical:
            assert a_optical and b_optical
            assert hold >= PairingProtocol().min_optical_hold_s
            assert outcome.link is not None
            assert not outcome.link.technology.is_rf
        # RF-capable pairs at sane ranges always link somehow.
        if distance <= 4000.0:
            assert outcome.succeeded
