"""Property-based tests for the orbital substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits.constants import EARTH_RADIUS_KM
from repro.orbits.coordinates import (
    GeodeticPoint,
    ecef_to_eci,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
)
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator, solve_kepler
from repro.orbits.tle import elements_from_tle, tle_from_elements
from repro.orbits.visibility import (
    footprint_area_km2,
    footprint_half_angle,
    has_line_of_sight,
)

altitudes = st.floats(min_value=300.0, max_value=2000.0)
angles = st.floats(min_value=0.0, max_value=2 * math.pi - 1e-9)
inclinations = st.floats(min_value=0.0, max_value=math.pi)
times = st.floats(min_value=0.0, max_value=86400.0)


class TestKeplerProperties:
    @given(m=st.floats(min_value=0.0, max_value=2 * math.pi),
           e=st.floats(min_value=0.0, max_value=0.95))
    def test_kepler_solution_satisfies_equation(self, m, e):
        big_e = solve_kepler(m, e)
        # The solver wraps M into [0, 2pi); compare in the same revolution.
        residual = (big_e - e * math.sin(big_e) - m) % (2 * math.pi)
        assert min(residual, 2 * math.pi - residual) < 1e-8

    @given(alt=altitudes, incl=inclinations, raan=angles, anomaly=angles,
           t=times)
    @settings(max_examples=50)
    def test_circular_orbit_radius_invariant(self, alt, incl, raan, anomaly, t):
        el = OrbitalElements.circular(alt, incl, raan, anomaly)
        pos = KeplerPropagator(el).position_at(t)
        assert np.linalg.norm(pos) == pytest.approx(
            EARTH_RADIUS_KM + alt, rel=1e-9
        )

    @given(alt=altitudes, incl=inclinations, t=times)
    @settings(max_examples=30)
    def test_z_bounded_by_inclination(self, alt, incl, t):
        el = OrbitalElements.circular(alt, incl)
        pos = KeplerPropagator(el).position_at(t)
        max_z = (EARTH_RADIUS_KM + alt) * abs(math.sin(incl)) + 1e-6
        assert abs(pos[2]) <= max_z

    @given(alt=altitudes, incl=inclinations, raan=angles, anomaly=angles)
    @settings(max_examples=30)
    def test_period_brings_satellite_back(self, alt, incl, raan, anomaly):
        el = OrbitalElements.circular(alt, incl, raan, anomaly)
        prop = KeplerPropagator(el)
        assert np.allclose(
            prop.position_at(0.0), prop.position_at(el.period_s), atol=1e-5
        )


class TestCoordinateProperties:
    @given(lat=st.floats(min_value=-89.9, max_value=89.9),
           lon=st.floats(min_value=-179.9, max_value=179.9),
           alt=st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=60)
    def test_geodetic_round_trip(self, lat, lon, alt):
        point = GeodeticPoint(lat, lon, alt)
        recovered = ecef_to_geodetic(geodetic_to_ecef(point))
        assert recovered.latitude_deg == pytest.approx(lat, abs=1e-6)
        assert recovered.longitude_deg == pytest.approx(lon, abs=1e-6)
        assert recovered.altitude_km == pytest.approx(alt, abs=1e-5)

    @given(x=st.floats(min_value=-9000, max_value=9000),
           y=st.floats(min_value=-9000, max_value=9000),
           z=st.floats(min_value=-9000, max_value=9000),
           t=times)
    @settings(max_examples=60)
    def test_eci_ecef_round_trip_and_isometry(self, x, y, z, t):
        vec = np.array([x, y, z])
        rotated = eci_to_ecef(vec, t)
        assert np.linalg.norm(rotated) == pytest.approx(
            np.linalg.norm(vec), abs=1e-6
        )
        assert np.allclose(ecef_to_eci(rotated, t), vec, atol=1e-6)


class TestVisibilityProperties:
    @given(alt=altitudes,
           mask=st.floats(min_value=0.0, max_value=45.0))
    def test_footprint_shrinks_with_mask(self, alt, mask):
        assert footprint_half_angle(alt, mask) <= footprint_half_angle(alt, 0.0)

    @given(alt=altitudes, mask=st.floats(min_value=0.0, max_value=60.0))
    def test_footprint_area_positive_and_bounded(self, alt, mask):
        area = footprint_area_km2(alt, mask)
        assert 0.0 < area < 2 * math.pi * EARTH_RADIUS_KM**2

    @given(alt=altitudes, theta=st.floats(min_value=0.0, max_value=math.pi))
    @settings(max_examples=60)
    def test_los_symmetric(self, alt, theta):
        r = EARTH_RADIUS_KM + alt
        a = np.array([r, 0.0, 0.0])
        b = r * np.array([math.cos(theta), math.sin(theta), 0.0])
        assert has_line_of_sight(a, b) == has_line_of_sight(b, a)


class TestTleProperties:
    @given(alt=altitudes, incl=st.floats(min_value=0.01, max_value=math.pi - 0.01),
           raan=st.floats(min_value=0.0, max_value=2 * math.pi - 0.01),
           anomaly=st.floats(min_value=0.0, max_value=2 * math.pi - 0.01))
    @settings(max_examples=40)
    def test_round_trip_preserves_geometry(self, alt, incl, raan, anomaly):
        el = OrbitalElements.circular(alt, incl, raan, anomaly)
        recovered = elements_from_tle(tle_from_elements(el))
        assert recovered.semi_major_axis_km == pytest.approx(
            el.semi_major_axis_km, abs=0.05
        )
        assert recovered.inclination_rad == pytest.approx(
            el.inclination_rad, abs=1e-4
        )
        assert recovered.raan_rad == pytest.approx(el.raan_rad, abs=1e-3)
