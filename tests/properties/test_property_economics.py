"""Property-based tests for the economics layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.ledger import TrafficLedger
from repro.economics.settlement import RateCard, SettlementEngine

isp_names = st.sampled_from(["isp-a", "isp-b", "isp-c", "isp-d"])

transfer = st.tuples(
    isp_names,                                        # source
    st.lists(isp_names, min_size=1, max_size=3),      # carrier path
    st.floats(min_value=0.01, max_value=100.0),       # gigabytes
)


class TestLedgerProperties:
    @given(transfers=st.lists(transfer, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_honest_ledger_never_mismatches(self, transfers):
        ledger = TrafficLedger()
        for index, (source, path, gb) in enumerate(transfers):
            ledger.file_path_transfer(f"t{index}", source, path, gb,
                                      float(index))
        assert ledger.cross_verify() == []

    @given(transfers=st.lists(transfer, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_matrix_totals_bounded_by_filed_volume(self, transfers):
        ledger = TrafficLedger()
        total_filed = 0.0
        for index, (source, path, gb) in enumerate(transfers):
            ledger.file_path_transfer(f"t{index}", source, path, gb,
                                      float(index))
            distinct_foreign = {c for c in path if c != source}
            total_filed += gb * len(distinct_foreign)
        matrix_total = sum(ledger.carried_matrix().values())
        assert matrix_total == pytest.approx(total_filed, rel=1e-9)

    @given(transfers=st.lists(transfer, min_size=1, max_size=20),
           inflation=st.floats(min_value=1.01, max_value=5.0))
    @settings(max_examples=40)
    def test_any_overreport_is_caught(self, transfers, inflation):
        ledger = TrafficLedger()
        fraud_count = 0
        for index, (source, path, gb) in enumerate(transfers):
            misreport = None
            carrier = path[0]
            if carrier != source and index % 3 == 0:
                misreport = {carrier: gb * inflation}
                fraud_count += 1
            ledger.file_path_transfer(f"t{index}", source, path, gb,
                                      float(index), misreport)
        assert len(ledger.cross_verify()) == fraud_count


class TestSettlementProperties:
    @given(transfers=st.lists(transfer, min_size=1, max_size=30),
           rf_rate=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_money_conserved(self, transfers, rf_rate):
        ledger = TrafficLedger()
        for index, (source, path, gb) in enumerate(transfers):
            ledger.file_path_transfer(f"t{index}", source, path, gb,
                                      float(index))
        engine = SettlementEngine(rate_cards={
            name: RateCard(carrier=name, rf_rate_per_gb=rf_rate)
            for name in ("isp-a", "isp-b", "isp-c", "isp-d")
        })
        invoices = engine.invoices_from_ledger(ledger)
        positions = engine.net_positions(invoices)
        assert sum(positions.values()) == pytest.approx(0.0, abs=1e-9)

    @given(transfers=st.lists(transfer, min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_invoices_never_negative(self, transfers):
        ledger = TrafficLedger()
        for index, (source, path, gb) in enumerate(transfers):
            ledger.file_path_transfer(f"t{index}", source, path, gb,
                                      float(index))
        for invoice in SettlementEngine().invoices_from_ledger(ledger):
            assert invoice.amount_usd >= 0.0
            assert invoice.gigabytes >= 0.0
            assert invoice.carrier != invoice.customer
