"""Property-based tests for the spatial grid's superset guarantee."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spatial import SpatialGridIndex

EARTH_RADIUS_KM = 6378.137


def _positions(seed, count):
    rng = np.random.default_rng(seed)
    vecs = rng.normal(size=(count, 3))
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    radii = rng.uniform(EARTH_RADIUS_KM + 300.0, EARTH_RADIUS_KM + 2000.0,
                        size=(count, 1))
    return vecs / norms * radii


class TestSpatialSupersetProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=2, max_value=64),
           cell_deg=st.floats(min_value=2.0, max_value=45.0),
           max_range_km=st.floats(min_value=10.0, max_value=20_000.0))
    @settings(max_examples=40, deadline=None)
    def test_candidates_superset_of_within_range_pairs(
            self, seed, count, cell_deg, max_range_km):
        positions = _positions(seed, count)
        index = SpatialGridIndex(positions, cell_size_deg=cell_deg)
        rows, cols = index.candidate_pairs(max_range_km)
        candidates = set(zip(rows.tolist(), cols.tolist()))

        tri_r, tri_c = np.triu_indices(count, k=1)
        delta = positions[tri_r] - positions[tri_c]
        within = np.sqrt((delta * delta).sum(axis=-1)) <= max_range_km
        truly = set(zip(tri_r[within].tolist(), tri_c[within].tolist()))
        assert truly <= candidates

        # Deterministic traversal contract: i < j, lexicographic, unique.
        assert np.all(rows < cols)
        if rows.size:
            keys = rows * np.int64(count) + cols
            assert np.all(np.diff(keys) > 0)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=48),
           lat_deg=st.floats(min_value=-90.0, max_value=90.0),
           lon_deg=st.floats(min_value=-180.0, max_value=180.0),
           max_range_km=st.floats(min_value=10.0, max_value=10_000.0))
    @settings(max_examples=40, deadline=None)
    def test_query_radius_superset(self, seed, count, lat_deg, lon_deg,
                                   max_range_km):
        positions = _positions(seed, count)
        index = SpatialGridIndex(positions)
        lat, lon = np.radians(lat_deg), np.radians(lon_deg)
        probe = EARTH_RADIUS_KM * np.array([
            np.cos(lat) * np.cos(lon),
            np.cos(lat) * np.sin(lon),
            np.sin(lat),
        ])
        found = set(index.query_radius(probe, max_range_km).tolist())
        distances = np.sqrt(((positions - probe) ** 2).sum(axis=1))
        truly = set(np.nonzero(distances <= max_range_km)[0].tolist())
        assert truly <= found
