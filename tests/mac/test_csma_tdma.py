"""Tests for the CSMA/CA and TDMA MAC simulators."""

import numpy as np
import pytest

from repro.mac.common import MacResult
from repro.mac.csma import CsmaCaConfig, CsmaCaSimulator
from repro.mac.tdma import TdmaConfig, TdmaSimulator


def run_csma(stations, rate, duration=300.0, seed=1, **cfg):
    sim = CsmaCaSimulator(
        stations, CsmaCaConfig(**cfg), rate, np.random.default_rng(seed)
    )
    return sim.run(duration)


def run_tdma(stations, rate, duration=300.0, seed=1, **cfg):
    sim = TdmaSimulator(
        stations, TdmaConfig(**cfg), rate, np.random.default_rng(seed)
    )
    return sim.run(duration)


class TestCsmaConfig:
    def test_rejects_bad_slot_time(self):
        with pytest.raises(ValueError):
            CsmaCaConfig(slot_time_s=0.0)

    def test_rejects_bad_cw(self):
        with pytest.raises(ValueError):
            CsmaCaConfig(cw_min=0)
        with pytest.raises(ValueError):
            CsmaCaConfig(cw_min=32, cw_max=16)

    def test_rejects_zero_frame(self):
        with pytest.raises(ValueError):
            CsmaCaConfig(frame_slots=0)

    def test_overhead_accounting(self):
        cfg = CsmaCaConfig(difs_slots=3, sifs_slots=1, ack_slots=1)
        assert cfg.overhead_slots_per_frame == 5


class TestCsmaBehaviour:
    def test_single_station_no_collisions(self):
        result = run_csma(1, 0.5)
        assert result.frames_collided == 0
        assert result.delivery_ratio > 0.95

    def test_low_load_delivers_everything(self):
        result = run_csma(4, 0.2)
        assert result.delivery_ratio > 0.95

    def test_collisions_appear_with_contention(self):
        result = run_csma(20, 1.5, duration=200.0)
        assert result.frames_collided > 0

    def test_overload_degrades_delivery(self):
        light = run_csma(5, 0.2)
        heavy = run_csma(30, 3.0, duration=200.0)
        assert heavy.delivery_ratio < light.delivery_ratio

    def test_delay_grows_with_contention(self):
        few = run_csma(2, 0.4)
        many = run_csma(24, 0.4, duration=200.0)
        assert many.mean_delay_s > few.mean_delay_s

    def test_goodput_below_utilization(self):
        result = run_csma(10, 1.0, duration=200.0)
        assert result.goodput_efficiency <= result.channel_utilization + 1e-9

    def test_reproducible_with_seed(self):
        a = run_csma(6, 0.5, seed=9)
        b = run_csma(6, 0.5, seed=9)
        assert a.frames_delivered == b.frames_delivered
        assert a.frames_collided == b.frames_collided

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CsmaCaSimulator(0, CsmaCaConfig(), 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            CsmaCaSimulator(2, CsmaCaConfig(), -1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_csma(2, 0.5, duration=0.0)


class TestTdmaBehaviour:
    def test_no_collisions_ever(self):
        result = run_tdma(8, 1.0)
        assert result.frames_collided == 0

    def test_low_load_delivers_everything(self):
        result = run_tdma(4, 0.2, duration=600.0)
        assert result.delivery_ratio > 0.95

    def test_delay_grows_with_station_count(self):
        # Each station waits for its slot: more stations, longer frames.
        few = run_tdma(2, 0.2, duration=600.0)
        many = run_tdma(20, 0.2, duration=600.0)
        assert many.mean_delay_s > few.mean_delay_s

    def test_guard_time_is_pure_overhead(self):
        # At saturation the frame count is slot-limited, so guard time
        # directly reduces deliverable frames.
        lean = run_tdma(4, 10.0, guard_time_s=0.0)
        padded = run_tdma(4, 10.0, guard_time_s=0.05)
        assert padded.frames_delivered < lean.frames_delivered

    def test_fairness_near_one(self):
        result = run_tdma(6, 0.5, duration=600.0)
        assert result.fairness_index > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            TdmaConfig(slot_time_s=0.0)
        with pytest.raises(ValueError):
            TdmaConfig(guard_time_s=-0.1)
        with pytest.raises(ValueError):
            TdmaConfig(frame_slots_per_station=0)
        with pytest.raises(ValueError):
            TdmaSimulator(0, TdmaConfig(), 0.5, np.random.default_rng(0))


class TestPaperClaim:
    def test_csma_pays_ifs_and_backoff_overhead(self):
        """CSMA/CA's per-frame latency exceeds raw frame airtime.

        The paper: CSMA/CA "is prone to higher overhead and corresponding
        larger latency due to Inter-Frame Spacing and backoff window
        requirements".
        """
        cfg = CsmaCaConfig()
        result = run_csma(8, 0.4)
        frame_airtime = cfg.frame_slots * cfg.slot_time_s
        assert result.mean_delay_s > frame_airtime


class TestMacResult:
    def test_empty_result_safe(self):
        result = MacResult(duration_s=0.0)
        assert result.delivery_ratio == 0.0
        assert result.mean_delay_s == 0.0
        assert result.p95_delay_s == 0.0
        assert result.channel_utilization == 0.0
        assert result.fairness_index == 1.0

    def test_p95_at_least_mean_for_skewed(self):
        result = MacResult(duration_s=10.0)
        result.delays_s = [0.1] * 90 + [2.0] * 10
        assert result.p95_delay_s >= result.mean_delay_s
