"""Tests for the slotted-ALOHA comparator."""

import numpy as np
import pytest

from repro.mac.aloha import (
    AlohaConfig,
    SlottedAlohaSimulator,
    theoretical_throughput,
)
from repro.mac.csma import CsmaCaConfig, CsmaCaSimulator


def run_aloha(stations, rate, duration=600.0, seed=6, **cfg):
    sim = SlottedAlohaSimulator(
        stations, AlohaConfig(**cfg), rate, np.random.default_rng(seed)
    )
    return sim.run(duration)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlohaConfig(slot_time_s=0.0)
        with pytest.raises(ValueError):
            AlohaConfig(retransmit_probability=0.0)
        with pytest.raises(ValueError):
            AlohaConfig(max_attempts=0)

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            SlottedAlohaSimulator(0, AlohaConfig(), 0.1,
                                  np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_aloha(2, 0.1, duration=0.0)


class TestBehaviour:
    def test_single_station_never_collides(self):
        result = run_aloha(1, 1.0)
        assert result.frames_collided == 0
        assert result.delivery_ratio > 0.95

    def test_light_load_delivers(self):
        result = run_aloha(4, 0.1)
        assert result.delivery_ratio > 0.9

    def test_contention_causes_collisions(self):
        result = run_aloha(20, 1.0, duration=300.0)
        assert result.frames_collided > 0

    def test_heavy_load_collapses(self):
        light = run_aloha(4, 0.1)
        heavy = run_aloha(40, 2.0, duration=300.0)
        assert heavy.delivery_ratio < light.delivery_ratio

    def test_goodput_ceiling_near_theory(self):
        # Drive the channel near G=1: goodput should not exceed the
        # e^{-1} ~ 0.368 slotted-ALOHA ceiling by any margin.
        result = run_aloha(20, 0.4, duration=900.0)
        assert result.goodput_efficiency <= 0.40

    def test_reproducible(self):
        a = run_aloha(6, 0.3, seed=11)
        b = run_aloha(6, 0.3, seed=11)
        assert a.frames_delivered == b.frames_delivered

    def test_csma_beats_aloha_at_moderate_load(self):
        # Carrier sensing should outperform blind transmission.
        aloha = run_aloha(10, 0.4, duration=400.0)
        csma = CsmaCaSimulator(
            10, CsmaCaConfig(), 0.4, np.random.default_rng(6)
        ).run(400.0)
        assert csma.delivery_ratio >= aloha.delivery_ratio - 0.02


class TestTheory:
    def test_peak_at_g_equals_one(self):
        assert theoretical_throughput(1.0) == pytest.approx(
            np.exp(-1.0)
        )
        assert theoretical_throughput(0.5) < theoretical_throughput(1.0)
        assert theoretical_throughput(2.0) < theoretical_throughput(1.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            theoretical_throughput(-0.1)
