"""Tests for the OFDMA downlink scheduler."""

import pytest

from repro.mac.ofdm import OfdmConfig, OfdmaScheduler, UserDemand


def make_users(snrs, demand_bps=20e6):
    return [
        UserDemand(user_id=f"u{i}", snr_db=snr, demand_bps=demand_bps)
        for i, snr in enumerate(snrs)
    ]


class TestConfig:
    def test_total_blocks(self):
        cfg = OfdmConfig(channel_bandwidth_hz=250e6,
                         subcarrier_spacing_hz=240e3,
                         subcarriers_per_block=12)
        assert cfg.total_blocks == int(250e6 // (240e3 * 12))

    def test_validation(self):
        with pytest.raises(ValueError):
            OfdmConfig(channel_bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            OfdmConfig(cyclic_prefix_overhead=1.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            OfdmaScheduler(OfdmConfig(), policy="fifo")


class TestScheduling:
    def test_grants_cover_demand_when_capacity_allows(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = make_users([15.0, 15.0], demand_bps=5e6)
        grants = sched.schedule(users)
        for grant in grants:
            assert grant.rate_bps >= 5e6

    def test_blocks_never_exceed_total(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = make_users([12.0] * 30, demand_bps=100e6)
        grants = sched.schedule(users)
        assert sum(g.blocks for g in grants) <= sched.config.total_blocks

    def test_unclosable_user_gets_nothing(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = make_users([-10.0, 15.0])
        grants = {g.user_id: g for g in sched.schedule(users)}
        assert grants["u0"].blocks == 0
        assert grants["u0"].modcod_name is None
        assert grants["u1"].blocks > 0

    def test_zero_demand_user_gets_nothing(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = [UserDemand("idle", 15.0, 0.0), UserDemand("busy", 15.0, 50e6)]
        grants = {g.user_id: g for g in sched.schedule(users)}
        assert grants["idle"].blocks == 0
        assert grants["busy"].blocks > 0

    def test_better_channel_higher_rate_per_block(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = make_users([3.0, 16.0], demand_bps=500e6)
        grants = {g.user_id: g for g in sched.schedule(users)}
        if grants["u0"].blocks and grants["u1"].blocks:
            rate0 = grants["u0"].rate_bps / grants["u0"].blocks
            rate1 = grants["u1"].rate_bps / grants["u1"].blocks
            assert rate1 > rate0

    def test_round_robin_spreads_blocks(self):
        sched = OfdmaScheduler(OfdmConfig(), policy="round_robin")
        users = make_users([12.0] * 4, demand_bps=1e9)
        grants = sched.schedule(users)
        blocks = [g.blocks for g in grants]
        assert max(blocks) - min(blocks) <= 1

    def test_proportional_fair_average_updates(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = make_users([12.0, 12.0], demand_bps=1e9)
        assert all(u.average_rate_bps == 1.0 for u in users)
        sched.schedule(users)
        assert all(u.average_rate_bps > 1.0 for u in users)

    def test_pf_starved_user_recovers_priority(self):
        sched = OfdmaScheduler(OfdmConfig())
        rich = UserDemand("rich", 16.0, 1e9, average_rate_bps=5e8)
        poor = UserDemand("poor", 10.0, 1e9, average_rate_bps=1.0)
        grants = {g.user_id: g for g in sched.schedule([rich, poor])}
        assert grants["poor"].blocks > 0

    def test_aggregate_throughput_positive(self):
        sched = OfdmaScheduler(OfdmConfig())
        users = make_users([8.0, 12.0, 16.0], demand_bps=1e9)
        assert sched.aggregate_throughput_bps(users) > 100e6
