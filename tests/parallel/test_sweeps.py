"""Tests for sweep-point error wrapping in ``parallel.run_grid``."""

import pytest

from repro.parallel import SweepPointError, derive_seed, run_grid


def _ok_worker(point):
    return {"value": point[0] * 2}


def _failing_worker(point):
    if point[0] == 2:
        raise KeyError("missing column")
    return {"value": point[0]}


def _failing_dict_worker(point):
    if point["seed"] == 99:
        raise RuntimeError("boom")
    return dict(point)


class TestSweepPointError:
    def test_serial_failure_is_wrapped_with_context(self):
        points = [(1,), (2,), (3,)]
        with pytest.raises(SweepPointError) as excinfo:
            run_grid(_failing_worker, points, jobs=1, label="demo")
        error = excinfo.value
        assert error.label == "demo"
        assert error.index == 1
        assert error.total == 3
        assert error.point == (2,)
        assert "KeyError" in error.cause
        assert isinstance(error.__cause__, KeyError)
        message = str(error)
        assert "demo" in message
        assert "point 2/3" in message
        assert "(2,)" in message

    def test_pooled_failure_is_wrapped_with_context(self):
        points = [(1,), (2,), (3,), (4,)]
        with pytest.raises(SweepPointError) as excinfo:
            run_grid(_failing_worker, points, jobs=2, label="demo")
        error = excinfo.value
        assert error.index == 1
        assert error.total == 4
        assert error.point == (2,)
        assert "KeyError" in error.cause

    def test_seed_reported_for_dict_points(self):
        points = [{"seed": 7}, {"seed": 99}]
        with pytest.raises(SweepPointError) as excinfo:
            run_grid(_failing_dict_worker, points, jobs=1)
        error = excinfo.value
        assert error.seed == 99
        assert "seed=99" in str(error)

    def test_seed_none_for_plain_tuples(self):
        with pytest.raises(SweepPointError) as excinfo:
            run_grid(_failing_worker, [(2,)], jobs=1)
        assert excinfo.value.seed is None
        assert "seed" not in str(excinfo.value)

    def test_success_paths_unchanged(self):
        points = [(1,), (2,), (3,)]
        serial = run_grid(_ok_worker, points, jobs=1)
        pooled = run_grid(_ok_worker, points, jobs=2)
        assert serial == pooled == [{"value": 2}, {"value": 4},
                                    {"value": 6}]

    def test_pickles_cleanly(self):
        import pickle

        error = SweepPointError("lbl", 3, 10, (1, 2), "ValueError: x",
                                seed=42)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.label == "lbl"
        assert clone.index == 3
        assert clone.total == 10
        assert clone.point == (1, 2)
        assert clone.seed == 42
        assert str(clone) == str(error)


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(17, "a", 1.0) == derive_seed(17, "a", 1.0)
        assert derive_seed(17, "a", 1.0) != derive_seed(17, "a", 2.0)
        assert derive_seed(17, "a") != derive_seed(18, "a")
