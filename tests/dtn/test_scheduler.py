"""Scheduler tests: the regional-blackout acceptance scenario.

One gateway serves a sensor region; a blackout takes it down mid-run.
With adequate buffers every bundle originated during the outage must be
delivered after repair (delivery ratio 1.0, delays spanning the
blackout); with undersized buffers the lowest-priority bundles are
dropped first — visible as ``bundle.drop`` events, never an exception.
"""

import math

import pytest

from repro import obs
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.dtn import Bundle, CustodyTransfer, DtnScheduler
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultSchedule
from repro.faults.schedule import regional_blackout_event
from repro.ground.station import GroundStation
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import walker_delta
from repro.reliability.channel import perfect_channel
from repro.simulation.engine import SimulationEngine

REGION_LAT = -1.3
REGION_LON = 36.8
BLACKOUT_START_S = 600.0
BLACKOUT_END_S = 2400.0
EPOCH_STEP_S = 300.0
HORIZON_S = 3600.0
BUNDLE_BYTES = 4096


def _network():
    stations = [GroundStation(
        "gs-region", GeodeticPoint(REGION_LAT, REGION_LON, 0.0),
        "ground-africa",
    )]
    fleet = build_fleet(
        walker_delta(24, 6, phasing=1, altitude_km=780.0,
                     inclination_deg=66.0),
        "dtn-test", SizeClass.MEDIUM,
    )
    return OpenSpaceNetwork(fleet, stations), stations


def _sensor():
    return UserTerminal("sensor-00", GeodeticPoint(-1.0, 36.5, 0.0),
                        "dtn-test", min_elevation_deg=10.0)


def _bundles():
    """One bundle per epoch step, priority cycling 0/1/2."""
    return [
        Bundle(bundle_id=f"b-{index:02d}", source="sensor-00",
               destination="", size_bytes=BUNDLE_BYTES,
               priority=index % 3, created_s=index * EPOCH_STEP_S)
        for index in range(int(HORIZON_S / EPOCH_STEP_S))
    ]


def _run_blackout(buffer_bytes, blackout=True):
    """One scenario run; returns the scheduler's DtnResult."""
    network, stations = _network()
    sensor = _sensor()
    channel = perfect_channel(network)
    custody = CustodyTransfer(channel)
    epoch_times = [i * EPOCH_STEP_S for i in
                   range(int(HORIZON_S / EPOCH_STEP_S))]
    scheduler = DtnScheduler(network, [sensor], custody, epoch_times,
                             buffer_bytes=buffer_bytes)
    for bundle in _bundles():
        scheduler.submit(bundle)
    if blackout:
        schedule = FaultSchedule(
            events=[regional_blackout_event(
                stations, REGION_LAT, REGION_LON, 500.0,
                start_s=BLACKOUT_START_S,
                duration_s=BLACKOUT_END_S - BLACKOUT_START_S,
            )],
            horizon_s=HORIZON_S,
        )
    else:
        schedule = FaultSchedule(horizon_s=HORIZON_S)
    injector = FaultInjector(network, channel=channel)
    engine = SimulationEngine()
    # Injector first so the repair applies before the same-time step.
    injector.schedule_on(engine, schedule, until_s=scheduler.horizon_s)
    return scheduler.run(engine)


class TestSchedulerValidation:
    def test_rejects_empty_epochs(self):
        network, _ = _network()
        custody = CustodyTransfer(perfect_channel(network))
        with pytest.raises(ValueError, match="epoch"):
            DtnScheduler(network, [_sensor()], custody, [])

    def test_rejects_unsorted_epochs(self):
        network, _ = _network()
        custody = CustodyTransfer(perfect_channel(network))
        with pytest.raises(ValueError, match="increasing"):
            DtnScheduler(network, [_sensor()], custody, [0.0, 10.0, 5.0])

    def test_rejects_nonpositive_buffer(self):
        network, _ = _network()
        custody = CustodyTransfer(perfect_channel(network))
        with pytest.raises(ValueError, match="buffer"):
            DtnScheduler(network, [_sensor()], custody, [0.0],
                         buffer_bytes=0.0)

    def test_rejects_no_destinations(self):
        network, _ = _network()
        custody = CustodyTransfer(perfect_channel(network))
        with pytest.raises(ValueError, match="destination"):
            DtnScheduler(network, [_sensor()], custody, [0.0],
                         destinations=[])


class TestBlackoutRecovery:
    def test_no_blackout_control_delivers_everything(self):
        result = _run_blackout(buffer_bytes=float("inf"), blackout=False)
        assert result.created == 12
        assert result.delivery_ratio == 1.0
        assert result.replans == 0
        assert result.dropped == 0

    def test_adequate_buffers_recover_after_blackout(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            result = _run_blackout(buffer_bytes=float("inf"))
        assert result.created == 12
        assert result.delivery_ratio == 1.0
        assert result.dropped == 0
        assert result.custody_failures == 0
        # Blackout plus repair each trigger a replan.
        assert result.replans == 2

        deliveries = {
            event.subject: event
            for event in recorder.events.events
            if event.kind == "bundle.deliver"
        }
        assert len(deliveries) == 12
        bundles = {b.bundle_id: b for b in _bundles()}
        for bundle_id, event in deliveries.items():
            created = bundles[bundle_id].created_s
            if BLACKOUT_START_S <= created < BLACKOUT_END_S:
                # Originated in the dark: held under custody until the
                # repair replan, so delivery waits for recovery.
                assert event.time_s >= BLACKOUT_END_S
                assert dict(event.attrs)["delay_s"] >= (
                    BLACKOUT_END_S - created
                )
        # The earliest blackout-era bundle rode out the whole outage.
        first_dark = deliveries["b-02"]
        assert dict(first_dark.attrs)["delay_s"] >= 1800.0
        assert result.max_delay_s >= 1800.0

    def test_undersized_buffers_drop_lowest_priority_first(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            # Room for three bundles: the six-bundle blackout backlog
            # must spill, lowest priority first.
            result = _run_blackout(buffer_bytes=3.0 * BUNDLE_BYTES)
        assert result.created == 12
        assert result.delivered < 12
        assert result.delivery_ratio < 1.0
        assert result.dropped > 0
        drops = [event for event in recorder.events.events
                 if event.kind == "bundle.drop"]
        assert len(drops) == result.dropped
        # Graceful degradation: the critical class never pays.
        assert all(dict(event.attrs)["priority"] < 2 for event in drops)
        # Every critical bundle still gets through.
        critical = [b.bundle_id for b in _bundles() if b.priority == 2]
        delivered = {event.subject for event in recorder.events.events
                     if event.kind == "bundle.deliver"}
        assert set(critical) <= delivered

    def test_same_scenario_same_result(self):
        first = _run_blackout(buffer_bytes=8.0 * BUNDLE_BYTES)
        second = _run_blackout(buffer_bytes=8.0 * BUNDLE_BYTES)
        assert first == second
        assert not math.isnan(first.delivery_ratio)
