"""Tests for the custody-transfer protocol."""

import networkx as nx
import pytest

from repro import obs
from repro.dtn import Bundle, CustodyTransfer
from repro.reliability.channel import LossyControlChannel, perfect_channel
from repro.reliability.exchange import (
    NO_RETRY,
    CircuitBreakerRegistry,
    RetryPolicy,
)


@pytest.fixture
def hop_graph():
    g = nx.Graph()
    g.add_edge("a", "b", delay_s=0.01, capacity_bps=1e9)
    return g


def _bundle():
    return Bundle(bundle_id="b-0", source="a", destination="g",
                  size_bytes=256)


class TestCustodyTransfer:
    def test_perfect_channel_single_attempt(self, hop_graph):
        custody = CustodyTransfer(perfect_channel())
        result = custody.transfer(hop_graph, _bundle(), "a", "b", now_s=5.0)
        assert result.ok
        assert result.attempts == 1
        assert result.retransmissions == 0
        assert result.elapsed_s == pytest.approx(0.02)
        assert custody.transfer_count == 1
        assert custody.retransmission_count == 0

    def test_missing_edge_fails_without_silently_dropping(self, hop_graph):
        custody = CustodyTransfer(perfect_channel(), policy=NO_RETRY)
        result = custody.transfer(hop_graph, _bundle(), "a", "ghost")
        assert not result.ok
        assert result.reason == "exhausted"
        assert custody.failure_count == 1

    def test_lossy_channel_retries_and_counts(self, hop_graph):
        channel = LossyControlChannel(loss_scale=0.6, base_loss=0.6, seed=3)
        custody = CustodyTransfer(
            channel, policy=RetryPolicy(max_attempts=6, timeout_s=0.1),
        )
        outcomes = [
            custody.transfer(hop_graph, _bundle(), "a", "b", now_s=float(i))
            for i in range(20)
        ]
        retried = [o for o in outcomes if o.ok and o.attempts > 1]
        assert retried, "a 60% lossy hop must force some retransmissions"
        assert custody.retransmission_count == sum(
            o.retransmissions for o in outcomes
        )

    def test_same_seed_same_outcomes(self, hop_graph):
        def run():
            channel = LossyControlChannel(loss_scale=0.5, base_loss=0.5,
                                          seed=9)
            custody = CustodyTransfer(
                channel, policy=RetryPolicy(max_attempts=3, timeout_s=0.1),
            )
            return [
                (r.ok, r.attempts) for r in (
                    custody.transfer(hop_graph, _bundle(), "a", "b",
                                     now_s=float(i))
                    for i in range(12)
                )
            ]

        assert run() == run()

    def test_events_emitted(self, hop_graph):
        recorder = obs.Recorder()
        with obs.use(recorder):
            custody = CustodyTransfer(perfect_channel(), policy=NO_RETRY)
            custody.transfer(hop_graph, _bundle(), "a", "b", now_s=1.0)
            custody.transfer(hop_graph, _bundle(), "a", "ghost", now_s=2.0)
        kinds = [event.kind for event in recorder.events.events]
        assert "custody.accept" in kinds
        assert "custody.timeout" in kinds
        accept = next(e for e in recorder.events.events
                      if e.kind == "custody.accept")
        attrs = dict(accept.attrs)
        assert attrs["sender"] == "a" and attrs["receiver"] == "b"

    def test_breakers_stop_hammering_dead_hop(self, hop_graph):
        breakers = CircuitBreakerRegistry(failure_threshold=2,
                                          recovery_time_s=1e6)
        custody = CustodyTransfer(perfect_channel(), policy=NO_RETRY,
                                  breakers=breakers)
        for i in range(5):
            custody.transfer(hop_graph, _bundle(), "a", "ghost",
                             now_s=float(i))
        last = custody.transfer(hop_graph, _bundle(), "a", "ghost",
                                now_s=10.0)
        assert not last.ok
        assert last.reason == "circuit-open"
        assert last.attempts == 0
