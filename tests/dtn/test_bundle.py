"""Tests for the bundle model and the bounded custody buffer."""

import pytest

from repro import obs
from repro.dtn import (
    PRIORITY_BULK,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    Bundle,
    BundleBuffer,
)


def _bundle(bundle_id="b-0", size=100, priority=PRIORITY_NORMAL,
            ttl=float("inf"), created=0.0):
    return Bundle(bundle_id=bundle_id, source="sensor", destination="",
                  size_bytes=size, priority=priority, ttl_s=ttl,
                  created_s=created)


class TestBundle:
    def test_expiry_clock(self):
        bundle = _bundle(ttl=10.0, created=5.0)
        assert bundle.expires_s == 15.0
        assert not bundle.expired(14.999)
        assert bundle.expired(15.0)

    def test_infinite_ttl_never_expires(self):
        assert not _bundle().expired(1e12)

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            _bundle(size=0)
        with pytest.raises(ValueError):
            _bundle(size=-5)
        with pytest.raises(ValueError):
            _bundle(ttl=0.0)
        with pytest.raises(ValueError):
            _bundle(ttl=-1.0)
        with pytest.raises(ValueError):
            _bundle(priority=-1)
        with pytest.raises(ValueError):
            Bundle(bundle_id="", source="s", destination="", size_bytes=1)


class TestBundleBuffer:
    def test_accepts_within_capacity(self):
        buffer = BundleBuffer("node", capacity_bytes=250)
        accepted, dropped = buffer.offer(_bundle("a"))
        assert accepted and not dropped
        accepted, dropped = buffer.offer(_bundle("b"))
        assert accepted and not dropped
        assert buffer.used_bytes == 200
        assert len(buffer) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BundleBuffer("node", capacity_bytes=0.0)

    def test_duplicate_id_rejected(self):
        buffer = BundleBuffer("node")
        buffer.offer(_bundle("a"))
        with pytest.raises(ValueError):
            buffer.offer(_bundle("a"))

    def test_evicts_lowest_priority_first(self):
        buffer = BundleBuffer("node", capacity_bytes=200)
        buffer.offer(_bundle("bulk", priority=PRIORITY_BULK))
        buffer.offer(_bundle("crit", priority=PRIORITY_CRITICAL))
        accepted, dropped = buffer.offer(
            _bundle("norm", priority=PRIORITY_NORMAL)
        )
        assert accepted
        assert [b.bundle_id for b in dropped] == ["bulk"]
        assert "crit" in buffer and "norm" in buffer
        assert buffer.drop_count == 1

    def test_evicts_youngest_among_equal_priority(self):
        buffer = BundleBuffer("node", capacity_bytes=200)
        buffer.offer(_bundle("old", created=0.0), now_s=10.0)
        buffer.offer(_bundle("young", created=9.0), now_s=10.0)
        accepted, dropped = buffer.offer(
            _bundle("incoming", priority=PRIORITY_CRITICAL, created=10.0),
            now_s=10.0,
        )
        assert accepted
        assert [b.bundle_id for b in dropped] == ["young"]
        assert "old" in buffer

    def test_incoming_is_its_own_victim_when_least_valuable(self):
        buffer = BundleBuffer("node", capacity_bytes=200)
        buffer.offer(_bundle("a", priority=PRIORITY_NORMAL))
        buffer.offer(_bundle("b", priority=PRIORITY_NORMAL))
        accepted, dropped = buffer.offer(
            _bundle("cheap", priority=PRIORITY_BULK)
        )
        assert not accepted
        assert [b.bundle_id for b in dropped] == ["cheap"]
        assert len(buffer) == 2 and buffer.used_bytes == 200

    def test_no_pointless_sacrifice(self):
        """Refusal must not evict residents it cannot make room with."""
        buffer = BundleBuffer("node", capacity_bytes=250)
        buffer.offer(_bundle("bulk", size=50, priority=PRIORITY_BULK))
        buffer.offer(_bundle("crit", size=200, priority=PRIORITY_CRITICAL))
        # 100 bytes needed, only 50 evictable below NORMAL: refuse alone.
        accepted, dropped = buffer.offer(
            _bundle("norm", size=100, priority=PRIORITY_NORMAL)
        )
        assert not accepted
        assert [b.bundle_id for b in dropped] == ["norm"]
        assert "bulk" in buffer and "crit" in buffer

    def test_oversized_bundle_never_fits(self):
        buffer = BundleBuffer("node", capacity_bytes=100)
        accepted, dropped = buffer.offer(_bundle("big", size=101))
        assert not accepted
        assert [b.bundle_id for b in dropped] == ["big"]
        assert buffer.drop_count == 1

    def test_expired_offer_refused_as_expiry(self):
        buffer = BundleBuffer("node", capacity_bytes=1000)
        accepted, dropped = buffer.offer(
            _bundle("late", ttl=5.0, created=0.0), now_s=6.0,
        )
        assert not accepted and not dropped
        assert buffer.expire_count == 1
        assert buffer.drop_count == 0

    def test_purge_expired(self):
        buffer = BundleBuffer("node")
        buffer.offer(_bundle("short", ttl=10.0))
        buffer.offer(_bundle("long", ttl=100.0))
        expired = buffer.purge_expired(50.0)
        assert [b.bundle_id for b in expired] == ["short"]
        assert "long" in buffer and "short" not in buffer
        assert buffer.used_bytes == 100
        assert buffer.expire_count == 1

    def test_forwarding_order_most_valuable_first(self):
        buffer = BundleBuffer("node")
        buffer.offer(_bundle("n-late", priority=PRIORITY_NORMAL, created=5.0))
        buffer.offer(_bundle("c", priority=PRIORITY_CRITICAL, created=9.0))
        buffer.offer(_bundle("n-early", priority=PRIORITY_NORMAL,
                             created=1.0))
        assert [b.bundle_id for b in buffer.bundles()] == [
            "c", "n-early", "n-late",
        ]

    def test_remove_releases_bytes(self):
        buffer = BundleBuffer("node")
        buffer.offer(_bundle("a"))
        removed = buffer.remove("a")
        assert removed is not None and removed.bundle_id == "a"
        assert buffer.used_bytes == 0
        assert buffer.remove("ghost") is None

    def test_drop_and_expire_events_emitted(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            buffer = BundleBuffer("node", capacity_bytes=100)
            buffer.offer(_bundle("keep"), now_s=0.0)
            buffer.offer(_bundle("spill", priority=PRIORITY_BULK),
                         now_s=1.0)
            buffer = BundleBuffer("node2")
            buffer.offer(_bundle("brief", ttl=1.0), now_s=0.0)
            buffer.purge_expired(2.0)
        kinds = [event.kind for event in recorder.events.events]
        assert kinds == ["bundle.drop", "bundle.expire"]
        drop = recorder.events.events[0]
        assert drop.subject == "spill"
        assert dict(drop.attrs)["reason"] == "capacity"
