"""Tests for RF terminals, optical terminals, and their link budgets."""

import math

import pytest

from repro.phy.antennas import (
    dish_gain_dbi,
    effective_aperture_m2,
    half_power_beamwidth_deg,
    pointing_loss_db_rf,
)
from repro.phy.bands import BAND_CATALOG, get_band
from repro.phy.modulation import achievable_rate_bps
from repro.phy.optical import (
    LASER_TERMINAL_COST_USD,
    LASER_TERMINAL_MASS_KG,
    OpticalTerminal,
    PATController,
    PATState,
    optical_link_budget,
    pointing_loss_db,
)
from repro.phy.rf import (
    RFTerminal,
    rf_link_budget,
    standard_gateway_terminal,
    standard_ku_user_terminal,
    standard_sband_isl_terminal,
    standard_uhf_isl_terminal,
)


class TestBands:
    def test_catalog_contains_paper_bands(self):
        for name in ("uhf", "s_band", "ku_downlink", "optical_1550nm"):
            assert name in BAND_CATALOG

    def test_isl_bands_not_atmospheric(self):
        assert not get_band("uhf").atmospheric
        assert not get_band("s_band").atmospheric
        assert get_band("ku_downlink").atmospheric

    def test_unknown_band_lists_known(self):
        with pytest.raises(KeyError, match="known bands"):
            get_band("x_band")

    def test_wavelength(self):
        band = get_band("s_band")
        assert band.wavelength_m == pytest.approx(
            299792458.0 / band.centre_frequency_hz
        )


class TestAntennas:
    def test_gain_grows_with_diameter(self):
        assert dish_gain_dbi(2.0, 12e9) > dish_gain_dbi(0.5, 12e9)

    def test_known_gain(self):
        # A 1 m dish at 11.7 GHz with 60% efficiency: ~39.5 dBi.
        assert dish_gain_dbi(1.0, 11.7e9) == pytest.approx(39.5, abs=0.5)

    def test_beamwidth_shrinks_with_diameter(self):
        assert half_power_beamwidth_deg(3.0, 12e9) < half_power_beamwidth_deg(
            0.5, 12e9
        )

    def test_aperture_round_trip(self):
        gain = dish_gain_dbi(1.0, 12e9, efficiency=1.0)
        aperture = effective_aperture_m2(gain, 12e9)
        assert aperture == pytest.approx(math.pi * 0.25, rel=0.01)

    def test_pointing_loss_quadratic(self):
        assert pointing_loss_db_rf(1.0, 2.0) == pytest.approx(3.0)
        assert pointing_loss_db_rf(2.0, 2.0) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dish_gain_dbi(0.0, 12e9)
        with pytest.raises(ValueError):
            dish_gain_dbi(1.0, 12e9, efficiency=1.5)


class TestRFTerminal:
    def test_requires_gain_or_dish(self):
        with pytest.raises(ValueError, match="antenna_gain_dbi or dish"):
            RFTerminal(band_name="s_band", antenna_gain_dbi=None)

    def test_dish_terminal_derives_gain(self):
        t = RFTerminal(band_name="ku_downlink", dish_diameter_m=1.0)
        assert t.gain_dbi == pytest.approx(dish_gain_dbi(1.0, 11.7e9))

    def test_validates_band_eagerly(self):
        with pytest.raises(KeyError):
            RFTerminal(band_name="nonsense", antenna_gain_dbi=3.0)

    def test_eirp(self):
        t = RFTerminal(band_name="s_band", tx_power_w=10.0,
                       antenna_gain_dbi=12.0)
        assert t.eirp_dbw == pytest.approx(22.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            RFTerminal(band_name="s_band", tx_power_w=0.0,
                       antenna_gain_dbi=3.0)


class TestRFLinkBudget:
    def test_band_mismatch_rejected(self):
        uhf = standard_uhf_isl_terminal()
        sband = standard_sband_isl_terminal()
        with pytest.raises(ValueError, match="band mismatch"):
            rf_link_budget(uhf, sband, 1000.0)

    def test_sband_isl_closes_at_iridium_ranges(self):
        t = standard_sband_isl_terminal()
        budget = rf_link_budget(t, t, 4000.0)
        assert budget.snr_db > 3.0
        assert achievable_rate_bps(budget.snr_db, budget.bandwidth_hz) > 5e6

    def test_snr_decreases_with_distance(self):
        t = standard_sband_isl_terminal()
        assert rf_link_budget(t, t, 500.0).snr_db > rf_link_budget(
            t, t, 5000.0
        ).snr_db

    def test_uhf_slower_than_sband(self):
        uhf = standard_uhf_isl_terminal()
        sband = standard_sband_isl_terminal()
        uhf_rate = achievable_rate_bps(
            rf_link_budget(uhf, uhf, 2000.0).snr_db,
            rf_link_budget(uhf, uhf, 2000.0).bandwidth_hz,
        )
        sband_rate = achievable_rate_bps(
            rf_link_budget(sband, sband, 2000.0).snr_db,
            rf_link_budget(sband, sband, 2000.0).bandwidth_hz,
        )
        assert sband_rate > uhf_rate > 0.0

    def test_ground_link_includes_atmosphere(self):
        space = RFTerminal(band_name="ku_downlink", tx_power_w=20.0,
                           antenna_gain_dbi=32.0)
        user = standard_ku_user_terminal()
        clear = rf_link_budget(space, user, 1000.0,
                               elevation_rad=math.radians(45.0))
        rainy = rf_link_budget(space, user, 1000.0,
                               elevation_rad=math.radians(45.0),
                               rain_rate_mm_h=25.0)
        assert rainy.snr_db < clear.snr_db

    def test_user_downlink_closes_overhead(self):
        space = RFTerminal(band_name="ku_downlink", tx_power_w=20.0,
                           antenna_gain_dbi=32.0)
        user = standard_ku_user_terminal()
        budget = rf_link_budget(space, user, 900.0,
                                elevation_rad=math.radians(60.0))
        assert budget.closes(required_snr_db=1.0)

    def test_gateway_terminal_has_big_gain(self):
        assert standard_gateway_terminal().gain_dbi > 50.0


class TestOpticalTerminal:
    def test_paper_economics_constants(self):
        t = OpticalTerminal()
        assert t.unit_cost_usd == LASER_TERMINAL_COST_USD == 500_000.0
        assert t.mass_kg == LASER_TERMINAL_MASS_KG == 15.0
        assert t.volume_m3 == pytest.approx(0.0234)

    def test_narrow_beam_huge_gain(self):
        t = OpticalTerminal(beam_divergence_urad=15.0)
        assert t.tx_gain_dbi > 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OpticalTerminal(tx_power_w=0.0)
        with pytest.raises(ValueError):
            OpticalTerminal(beam_divergence_urad=-1.0)


class TestPointingLoss:
    def test_zero_jitter_zero_loss(self):
        assert pointing_loss_db(0.0, 15.0) == 0.0

    def test_loss_grows_with_jitter(self):
        assert pointing_loss_db(5.0, 15.0) > pointing_loss_db(1.0, 15.0)

    def test_capped_at_30db(self):
        assert pointing_loss_db(1000.0, 15.0) == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pointing_loss_db(1.0, 0.0)
        with pytest.raises(ValueError):
            pointing_loss_db(-1.0, 15.0)


class TestOpticalLinkBudget:
    def test_closes_at_long_range_with_huge_margin(self):
        t = OpticalTerminal()
        budget = optical_link_budget(t, t, 4000.0)
        assert budget.snr_db > 20.0
        assert budget.shannon_capacity_bps > 1e9

    def test_acquisition_mode_much_worse(self):
        t = OpticalTerminal()
        tracking = optical_link_budget(t, t, 2000.0, tracking=True)
        acquiring = optical_link_budget(t, t, 2000.0, tracking=False)
        assert acquiring.snr_db < tracking.snr_db - 20.0


class TestPATController:
    def test_full_sequence_reaches_tracking(self):
        pat = PATController(OpticalTerminal())
        total = pat.establish(slew_angle_deg=20.0)
        assert pat.state is PATState.TRACKING
        assert pat.is_tracking
        assert total > 0.0

    def test_acquisition_scales_with_uncertainty(self):
        tight = PATController(OpticalTerminal(), open_loop_error_urad=100.0)
        loose = PATController(OpticalTerminal(), open_loop_error_urad=1000.0)
        assert loose.acquisition_time_s() > tight.acquisition_time_s()

    def test_drop_resets(self):
        pat = PATController(OpticalTerminal())
        pat.establish(5.0)
        pat.drop()
        assert pat.state is PATState.IDLE

    def test_rejects_negative_slew(self):
        pat = PATController(OpticalTerminal())
        with pytest.raises(ValueError):
            pat.pointing_time_s(-1.0)
