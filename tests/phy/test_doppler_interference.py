"""Tests for Doppler and co-channel interference models."""

import math

import numpy as np
import pytest

from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator
from repro.phy.doppler import (
    doppler_shift_hz,
    ground_observer,
    max_doppler_over_pass,
    range_rate_km_s,
    worst_case_doppler_ppm,
)
from repro.phy.interference import (
    angular_separation_rad,
    downlink_sinr_db,
    interference_pairs,
    received_power_dbw,
)
from repro.phy.rf import RFTerminal, standard_ku_user_terminal

R_ORBIT = 6378.137 + 780.0


class TestRangeRate:
    def test_receding_target_positive(self):
        rate = range_rate_km_s([0, 0, 0], [0, 0, 0], [100, 0, 0], [5, 0, 0])
        assert rate == pytest.approx(5.0)

    def test_approaching_target_negative(self):
        rate = range_rate_km_s([0, 0, 0], [0, 0, 0], [100, 0, 0], [-5, 0, 0])
        assert rate == pytest.approx(-5.0)

    def test_tangential_motion_zero(self):
        rate = range_rate_km_s([0, 0, 0], [0, 0, 0], [100, 0, 0], [0, 7, 0])
        assert rate == pytest.approx(0.0)

    def test_coincident_zero(self):
        assert range_rate_km_s([1, 1, 1], [0, 0, 0], [1, 1, 1], [3, 0, 0]) == 0.0


class TestDopplerShift:
    def test_sign_convention(self):
        # Receding (positive range rate) -> negative (red) shift.
        assert doppler_shift_hz(1e9, 7.5) < 0.0
        assert doppler_shift_hz(1e9, -7.5) > 0.0

    def test_magnitude(self):
        # 7.5 km/s at 12 GHz: ~300 kHz.
        shift = abs(doppler_shift_hz(12e9, 7.5))
        assert shift == pytest.approx(300e3, rel=0.01)

    def test_rejects_bad_carrier(self):
        with pytest.raises(ValueError):
            doppler_shift_hz(0.0, 1.0)

    def test_pass_extremes_within_theoretical_bound(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        propagator = KeplerPropagator(element)
        observer = ground_observer(GeodeticPoint(0.0, 0.0))
        carrier = 11.7e9
        lo, hi = max_doppler_over_pass(carrier, propagator, observer,
                                       0.0, 6000.0)
        bound_hz = worst_case_doppler_ppm() * 1e-6 * carrier
        assert abs(lo) <= bound_hz * 1.05
        assert abs(hi) <= bound_hz * 1.05
        # A full orbit sees both approach and recession.
        assert lo < 0.0 < hi or hi == pytest.approx(0.0, abs=1e3)

    def test_worst_case_ppm_reasonable(self):
        # LEO orbital speed ~7.5 km/s -> ~25 ppm.
        assert 20.0 < worst_case_doppler_ppm(780.0) < 30.0

    def test_bad_window_rejected(self):
        element = OrbitalElements.circular(780.0, inclination_rad=0.0)
        observer = ground_observer(GeodeticPoint(0.0, 0.0))
        with pytest.raises(ValueError):
            max_doppler_over_pass(1e9, KeplerPropagator(element), observer,
                                  10.0, 10.0)


class TestAngularSeparation:
    def test_same_direction_zero(self):
        ground = np.array([6378.0, 0, 0])
        sat = np.array([R_ORBIT, 0, 0])
        assert angular_separation_rad(ground, sat, sat) == 0.0

    def test_opposite_horizon_satellites_large(self):
        ground = np.array([6378.0, 0, 0])
        a = np.array([6378.0 + 200.0, 2000.0, 0.0])
        b = np.array([6378.0 + 200.0, -2000.0, 0.0])
        assert angular_separation_rad(ground, a, b) > math.radians(90.0)


class TestReceivedPower:
    def _terminals(self):
        space = RFTerminal(band_name="ku_downlink", tx_power_w=20.0,
                           antenna_gain_dbi=32.0)
        return space, standard_ku_user_terminal()

    def test_off_axis_weaker_than_boresight(self):
        space, user = self._terminals()
        boresight = received_power_dbw(space, user, 1000.0, 0.0, 6.0)
        off = received_power_dbw(space, user, 1000.0, 12.0, 6.0)
        assert off < boresight

    def test_sidelobe_floor(self):
        space, user = self._terminals()
        far_off = received_power_dbw(space, user, 1000.0, 90.0, 6.0)
        farther_off = received_power_dbw(space, user, 1000.0, 150.0, 6.0)
        assert far_off == pytest.approx(farther_off)


class TestSinr:
    def _geometry(self):
        ground = np.array([6378.137, 0.0, 0.0])
        serving = np.array([R_ORBIT, 0.0, 0.0])
        space = RFTerminal(band_name="ku_downlink", tx_power_w=20.0,
                           antenna_gain_dbi=32.0)
        user = standard_ku_user_terminal()
        return ground, serving, space, user

    def test_no_interferers_equals_snr(self):
        ground, serving, space, user = self._geometry()
        sinr = downlink_sinr_db(ground, serving, space, user, [], [])
        assert sinr > 5.0

    def test_close_interferer_crushes_sinr(self):
        ground, serving, space, user = self._geometry()
        clean = downlink_sinr_db(ground, serving, space, user, [], [])
        # 0.3 deg of Earth-central angle is ~33 km laterally at 780 km,
        # i.e. only ~2.4 deg off the user's boresight — inside the beam.
        theta = math.radians(0.3)
        interferer = R_ORBIT * np.array(
            [math.cos(theta), math.sin(theta), 0.0]
        )
        jammed = downlink_sinr_db(
            ground, serving, space, user, [interferer], [space]
        )
        assert jammed < clean - 10.0

    def test_distant_interferer_negligible(self):
        ground, serving, space, user = self._geometry()
        clean = downlink_sinr_db(ground, serving, space, user, [], [])
        theta = math.radians(40.0)
        interferer = R_ORBIT * np.array(
            [math.cos(theta), math.sin(theta), 0.0]
        )
        polite = downlink_sinr_db(
            ground, serving, space, user, [interferer], [space]
        )
        assert polite > clean - 3.0

    def test_length_mismatch_rejected(self):
        ground, serving, space, user = self._geometry()
        with pytest.raises(ValueError, match="interferer"):
            downlink_sinr_db(ground, serving, space, user,
                             [serving], [])


class TestInterferencePairs:
    def test_close_pair_detected(self):
        ground_points = [np.array([6378.137, 0.0, 0.0])]
        # 1 deg central angle -> ~111 km lateral -> ~8 deg apparent
        # separation from the subsatellite point: inside the 10 deg limit.
        theta = math.radians(1.0)
        sats = [
            np.array([R_ORBIT, 0.0, 0.0]),
            R_ORBIT * np.array([math.cos(theta), math.sin(theta), 0.0]),
        ]
        assert interference_pairs(ground_points, sats,
                                  min_separation_deg=10.0) == [(0, 1)]

    def test_separated_pair_clear(self):
        ground_points = [np.array([6378.137, 0.0, 0.0])]
        theta = math.radians(25.0)  # far outside any discrimination limit
        sats = [
            np.array([R_ORBIT, 0.0, 0.0]),
            R_ORBIT * np.array([math.cos(theta), math.sin(theta), 0.0]),
        ]
        assert interference_pairs(ground_points, sats,
                                  min_separation_deg=10.0) == []

    def test_invisible_satellite_ignored(self):
        ground_points = [np.array([6378.137, 0.0, 0.0])]
        sats = [
            np.array([R_ORBIT, 0.0, 0.0]),
            np.array([-R_ORBIT, 0.0, 0.0]),  # other side of the Earth
        ]
        assert interference_pairs(ground_points, sats) == []
