"""Tests for channel models."""

import math

import pytest

from repro.phy.channel import (
    atmospheric_loss_db,
    db_to_linear,
    free_space_path_loss_db,
    linear_to_db,
    noise_power_dbw,
    rain_attenuation_db,
)


class TestFreeSpacePathLoss:
    def test_known_value(self):
        # 1 km at 1 GHz: FSPL = 32.45 + 20log10(f_MHz) + 20log10(d_km)
        assert free_space_path_loss_db(1.0, 1e9) == pytest.approx(92.45, abs=0.05)

    def test_doubling_distance_adds_6db(self):
        base = free_space_path_loss_db(1000.0, 2e9)
        assert free_space_path_loss_db(2000.0, 2e9) == pytest.approx(
            base + 6.0206, abs=0.01
        )

    def test_doubling_frequency_adds_6db(self):
        base = free_space_path_loss_db(1000.0, 2e9)
        assert free_space_path_loss_db(1000.0, 4e9) == pytest.approx(
            base + 6.0206, abs=0.01
        )

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 1e9)
        with pytest.raises(ValueError):
            free_space_path_loss_db(100.0, -1.0)


class TestAtmosphericLoss:
    def test_zenith_loss_small(self):
        loss = atmospheric_loss_db(12e9, math.pi / 2)
        assert 0.0 < loss < 0.5

    def test_low_elevation_increases_loss(self):
        high = atmospheric_loss_db(12e9, math.radians(90.0))
        low = atmospheric_loss_db(12e9, math.radians(10.0))
        assert low > high

    def test_elevation_clamped_at_five_degrees(self):
        at_five = atmospheric_loss_db(12e9, math.radians(5.0))
        below = atmospheric_loss_db(12e9, math.radians(1.0))
        assert below == pytest.approx(at_five)

    def test_higher_band_higher_zenith_loss(self):
        ku = atmospheric_loss_db(12e9, math.pi / 2)
        ka = atmospheric_loss_db(28e9, math.pi / 2)
        assert ka > ku

    def test_override_zenith_loss(self):
        loss = atmospheric_loss_db(12e9, math.pi / 2, zenith_loss_db=1.0)
        assert loss == pytest.approx(1.0)


class TestRainAttenuation:
    def test_clear_sky_is_zero(self):
        assert rain_attenuation_db(12e9, math.pi / 2, 0.0) == 0.0

    def test_low_frequency_immune(self):
        assert rain_attenuation_db(2e9, math.pi / 2, 50.0) == 0.0

    def test_heavier_rain_more_loss(self):
        light = rain_attenuation_db(12e9, math.pi / 2, 5.0)
        heavy = rain_attenuation_db(12e9, math.pi / 2, 50.0)
        assert heavy > light > 0.0

    def test_ku_heavy_rain_magnitude_reasonable(self):
        # 25 mm/h at Ku, 30 deg elevation: a few dB to ~15 dB.
        loss = rain_attenuation_db(12e9, math.radians(30.0), 25.0)
        assert 1.0 < loss < 20.0

    def test_rejects_negative_rain(self):
        with pytest.raises(ValueError):
            rain_attenuation_db(12e9, 1.0, -1.0)


class TestNoise:
    def test_ktb_at_290k_1hz(self):
        # kT at 290 K is about -203.98 dBW/Hz.
        assert noise_power_dbw(1.0, 290.0) == pytest.approx(-203.98, abs=0.05)

    def test_wider_band_more_noise(self):
        assert noise_power_dbw(10e6) > noise_power_dbw(1e6)

    def test_ten_x_bandwidth_adds_10db(self):
        assert noise_power_dbw(10e6) - noise_power_dbw(1e6) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            noise_power_dbw(0.0)
        with pytest.raises(ValueError):
            noise_power_dbw(1e6, 0.0)


class TestDbHelpers:
    def test_round_trip(self):
        assert linear_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_db_to_linear_known(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(2.0, abs=0.01)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
