"""Tests for MODCOD selection and link-budget capacity."""

import pytest

from repro.phy.linkbudget import LinkBudget, shannon_capacity_bps
from repro.phy.modulation import (
    MODCOD_TABLE,
    ModCod,
    achievable_rate_bps,
    select_modcod,
)


class TestModCodTable:
    def test_table_ordered_by_efficiency(self):
        # The table is rate-ordered; SNR order genuinely differs in DVB-S2
        # (16APSK 3/4 needs less SNR than 8PSK 8/9).
        effs = [m.spectral_efficiency_bps_hz for m in MODCOD_TABLE]
        assert effs == sorted(effs)
        assert MODCOD_TABLE[0].required_snr_db == min(
            m.required_snr_db for m in MODCOD_TABLE
        )

    def test_efficiency_monotone_with_snr(self):
        effs = [m.spectral_efficiency_bps_hz for m in MODCOD_TABLE]
        assert effs == sorted(effs)

    def test_rate_scales_with_bandwidth(self):
        m = MODCOD_TABLE[3]
        assert m.rate_bps(2e6) == pytest.approx(2 * m.rate_bps(1e6))

    def test_rate_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            MODCOD_TABLE[0].rate_bps(0.0)


class TestSelection:
    def test_high_snr_picks_top_point(self):
        assert select_modcod(30.0).name == "32APSK 9/10"

    def test_very_low_snr_returns_none(self):
        assert select_modcod(-10.0) is None

    def test_margin_is_subtracted(self):
        # QPSK 1/2 needs 1.0 dB; at snr 1.5 with 1 dB margin it fails.
        chosen = select_modcod(1.5, margin_db=1.0)
        assert chosen.required_snr_db <= 0.5

    def test_selection_is_best_affordable(self):
        chosen = select_modcod(8.0, margin_db=0.0)
        assert chosen.name == "8PSK 3/4"

    def test_custom_table(self):
        table = [ModCod("only", 5.0, 1.0)]
        assert select_modcod(10.0, table=table).name == "only"
        assert select_modcod(3.0, table=table) is None

    def test_achievable_rate_zero_when_unclosable(self):
        assert achievable_rate_bps(-20.0, 1e6) == 0.0

    def test_achievable_rate_below_shannon(self):
        for snr in (2.0, 8.0, 15.0):
            assert achievable_rate_bps(snr, 1e6, margin_db=0.0) <= (
                shannon_capacity_bps(1e6, snr)
            )


class TestLinkBudgetType:
    def _budget(self, snr_target_db):
        noise = -130.0
        return LinkBudget(
            tx_power_dbw=10.0,
            tx_gain_dbi=20.0,
            rx_gain_dbi=20.0,
            path_loss_db=10.0 + 20.0 + 20.0 - (noise + snr_target_db),
            extra_loss_db=0.0,
            noise_power_dbw=noise,
            bandwidth_hz=1e6,
        )

    def test_snr_arithmetic(self):
        assert self._budget(7.0).snr_db == pytest.approx(7.0)

    def test_closes_with_margin(self):
        budget = self._budget(7.0)
        assert budget.closes(required_snr_db=3.0, margin_db=3.0)
        assert not budget.closes(required_snr_db=5.0, margin_db=3.0)

    def test_shannon_capacity_property(self):
        budget = self._budget(10.0)
        assert budget.shannon_capacity_bps == pytest.approx(
            shannon_capacity_bps(1e6, 10.0)
        )

    def test_shannon_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            shannon_capacity_bps(0.0, 10.0)

    def test_shannon_known_value(self):
        # B log2(1 + 10^(20/10)) = B log2(101) ~ 6.66 B
        assert shannon_capacity_bps(1e6, 20.0) == pytest.approx(6.66e6, rel=0.01)
