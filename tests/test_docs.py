"""Documentation-consistency tests.

DESIGN.md's experiment index and EXPERIMENTS.md's bench pointers must
reference files that exist, and every example README advertises must run
as a script.  Docs that drift from the tree fail here, not in a reader's
terminal.
"""

import re
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent


def referenced_paths(doc_name, pattern):
    text = (REPO / doc_name).read_text()
    return sorted(set(re.findall(pattern, text)))


class TestDesignDoc:
    def test_exists(self):
        assert (REPO / "DESIGN.md").is_file()

    def test_bench_targets_exist(self):
        for path in referenced_paths("DESIGN.md",
                                     r"benchmarks/\w+\.py"):
            assert (REPO / path).is_file(), f"DESIGN.md references {path}"

    def test_modules_in_inventory_exist(self):
        for dotted in referenced_paths("DESIGN.md", r"`repro\.(\w+)`"):
            assert (REPO / "src" / "repro" / dotted).is_dir() or (
                REPO / "src" / "repro" / f"{dotted}.py"
            ).is_file(), f"DESIGN.md inventory names repro.{dotted}"


class TestExperimentsDoc:
    def test_exists(self):
        assert (REPO / "EXPERIMENTS.md").is_file()

    def test_bench_pointers_exist(self):
        for path in referenced_paths("EXPERIMENTS.md",
                                     r"benchmarks/\w+\.py"):
            assert (REPO / path).is_file(), f"EXPERIMENTS.md references {path}"

    def test_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for figure in ("Figure 2(a)", "Figure 2(b)", "Figure 2(c)"):
            assert figure in text


class TestReadme:
    def test_exists(self):
        assert (REPO / "README.md").is_file()

    def test_examples_exist(self):
        for path in referenced_paths("README.md", r"examples/\w+\.py"):
            assert (REPO / path).is_file(), f"README.md references {path}"

    def test_every_example_is_documented(self):
        readme = (REPO / "README.md").read_text()
        for script in sorted((REPO / "examples").glob("*.py")):
            assert f"examples/{script.name}" in readme, (
                f"{script.name} is not listed in README.md"
            )

    def test_cli_commands_exist(self):
        from repro.cli import build_parser
        readme = (REPO / "README.md").read_text()
        known = set()
        parser = build_parser()
        for action in parser._subparsers._group_actions:
            known |= set(action.choices)
        for command in re.findall(r"python -m repro (\w+)", readme):
            assert command in known, f"README shows unknown command {command}"


class TestBenchInventory:
    def test_every_bench_file_in_design_index(self):
        design = (REPO / "DESIGN.md").read_text()
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("test_*.py")):
            if bench.name.startswith("test_perf_"):
                continue  # perf benches are not paper experiments
            assert (f"benchmarks/{bench.name}" in design
                    or f"benchmarks/{bench.name}" in experiments), (
                f"{bench.name} is documented in neither DESIGN.md nor "
                "EXPERIMENTS.md"
            )
