"""Tests for the equal-area population grid."""

import math

import numpy as np
import pytest

from repro.demand.grid import (
    GridSpec,
    PopulationGrid,
    grid_from_population,
    population_grid,
)
from repro.simulation.traffic import (
    underserved_region_users,
    uniform_land_users,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestGridSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridSpec(bands=0)
        with pytest.raises(ValueError):
            GridSpec(equator_columns=0)
        with pytest.raises(ValueError):
            GridSpec(max_latitude_deg=95.0)

    def test_bands_are_equal_area(self):
        edges = GridSpec(bands=10).band_sin_edges()
        widths = np.diff(edges)
        assert np.allclose(widths, widths[0])

    def test_columns_shrink_with_latitude(self):
        spec = GridSpec(bands=18, equator_columns=36)
        columns = spec.columns_per_band()
        centers = spec.band_center_latitudes()
        equator_band = int(np.argmin(np.abs(centers)))
        assert columns[equator_band] == columns.max()
        assert columns[0] < columns[equator_band]
        assert columns.min() >= 1

    def test_cell_areas_sum_to_one(self):
        spec = GridSpec(bands=7, equator_columns=19)
        from repro.demand.grid import _cell_geometry
        _, _, area, _ = _cell_geometry(spec)
        assert area.sum() == pytest.approx(1.0)


class TestPopulationGrid:
    def test_user_count_conserved_exactly(self, rng):
        grid = population_grid(1_000_000, rng)
        assert grid.total_users == 1_000_000

    def test_deterministic_per_seed(self):
        a = population_grid(10_000, np.random.default_rng(5))
        b = population_grid(10_000, np.random.default_rng(5))
        c = population_grid(10_000, np.random.default_rng(6))
        assert np.array_equal(a.users, b.users)
        assert not np.array_equal(a.users, c.users)

    def test_negative_users_rejected(self, rng):
        grid = population_grid(100, rng)
        with pytest.raises(ValueError, match=">= 0"):
            PopulationGrid(spec=grid.spec, lat_deg=grid.lat_deg,
                           lon_deg=grid.lon_deg,
                           area_weight=grid.area_weight,
                           users=grid.users - 1_000_000)

    def test_latitudes_respect_cap(self, rng):
        grid = population_grid(1000, rng,
                               GridSpec(max_latitude_deg=60.0))
        assert np.all(np.abs(grid.lat_deg) < 60.0)

    def test_longitudes_wrapped(self, rng):
        grid = population_grid(1000, rng)
        assert np.all(grid.lon_deg > -180.0)
        assert np.all(grid.lon_deg <= 180.0)

    def test_underserved_weights_cluster(self, rng):
        uniform = population_grid(100_000, np.random.default_rng(1))
        clustered = population_grid(100_000, np.random.default_rng(1),
                                    distribution="underserved")
        # Clustered mass concentrates: top-10 cells hold far more users.
        top = 10
        uniform_top = np.sort(uniform.users)[-top:].sum()
        clustered_top = np.sort(clustered.users)[-top:].sum()
        assert clustered_top > 2 * uniform_top

    def test_unknown_distribution_rejected(self, rng):
        with pytest.raises(ValueError, match="distribution"):
            population_grid(100, rng, distribution="martian")

    def test_terminals_one_per_occupied_cell(self, rng):
        grid = population_grid(500, rng,
                               GridSpec(bands=6, equator_columns=12))
        terminals = grid.terminals(["op-a", "op-b"])
        assert len(terminals) == len(grid.occupied)
        assert len({t.user_id for t in terminals}) == len(terminals)
        providers = {t.home_provider for t in terminals}
        assert providers == {"op-a", "op-b"}

    def test_terminals_require_provider(self, rng):
        grid = population_grid(100, rng)
        with pytest.raises(ValueError, match="provider"):
            grid.terminals([])


class TestGridFromPopulation:
    def test_conserves_users(self, rng):
        pop = uniform_land_users(300, rng, ["op"])
        grid = grid_from_population(pop)
        assert grid.total_users == 300

    def test_cells_match_user_locations(self, rng):
        pop = uniform_land_users(50, rng, ["op"])
        spec = GridSpec(bands=18, equator_columns=36)
        grid = grid_from_population(pop, spec)
        # Every occupied cell is within one band height + column width
        # of some user.
        for index in grid.occupied:
            nearest = min(
                abs(grid.lat_deg[index] - u.location.latitude_deg)
                for u in pop.users
            )
            assert nearest < 180.0 / spec.bands

    def test_out_of_band_users_clip_to_edge_bands(self, rng):
        # Underserved jitter can land users beyond the 70 deg cap; they
        # must bin into the outermost bands, not crash.
        pop = underserved_region_users(20, rng, ["op"], spread_deg=40.0)
        grid = grid_from_population(pop)
        assert grid.total_users == len(pop.users)
        assert math.isclose(float(grid.area_weight.sum()), 1.0)
