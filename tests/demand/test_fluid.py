"""Tests for the vectorized fluid-flow engine."""

import networkx as nx
import numpy as np
import pytest

from repro.demand.fluid import (
    map_cells_to_routes,
    run_fluid,
    waterfill_rates,
    weighted_percentile,
)


def star_graph():
    """Two cells -> one satellite -> one gateway, plus a spur cell."""
    g = nx.Graph()
    g.add_node("cell-00000", kind="user", owner="op-a")
    g.add_node("cell-00001", kind="user", owner="op-b")
    g.add_node("cell-00002", kind="user", owner="op-a")  # isolated
    g.add_node("sat-0", kind="satellite", owner="fleet")
    g.add_node("gw", kind="ground_station", owner="gs-op")
    g.add_edge("cell-00000", "sat-0", delay_s=0.004, capacity_bps=100e6)
    g.add_edge("cell-00001", "sat-0", delay_s=0.004, capacity_bps=100e6)
    g.add_edge("sat-0", "gw", delay_s=0.003, capacity_bps=50e6)
    return g


class TestWaterfill:
    def test_classic_three_flow_example(self):
        # flow 0 on edges {0,1}, flow 1 on {0}, flow 2 on {1};
        # caps 10 and 8 -> bottleneck edge 1 at 4, flow 1 tops up to 6.
        entry_flow = np.array([0, 0, 1, 2])
        entry_edge = np.array([0, 1, 0, 1])
        rates, iterations, converged = waterfill_rates(
            np.array([100.0, 100.0, 100.0]), entry_flow, entry_edge,
            np.array([10.0, 8.0]))
        assert converged
        assert rates == pytest.approx([4.0, 6.0, 4.0])

    def test_demand_capped_flows_release_capacity(self):
        entry_flow = np.array([0, 0, 1, 2])
        entry_edge = np.array([0, 1, 0, 1])
        rates, _, converged = waterfill_rates(
            np.array([2.0, 100.0, 100.0]), entry_flow, entry_edge,
            np.array([10.0, 8.0]))
        assert converged
        assert rates == pytest.approx([2.0, 8.0, 6.0])

    def test_zero_capacity_edge_starves(self):
        rates, _, converged = waterfill_rates(
            np.array([5.0, 5.0]), np.array([0, 1]), np.array([0, 0]),
            np.array([0.0]))
        assert converged
        assert rates == pytest.approx([0.0, 0.0])

    def test_flows_off_constrained_edges_get_demand(self):
        rates, _, converged = waterfill_rates(
            np.array([7.0]), np.array([], dtype=np.int64),
            np.array([], dtype=np.int64), np.array([]))
        assert converged
        assert rates == pytest.approx([7.0])

    def test_empty(self):
        rates, iterations, converged = waterfill_rates(
            np.array([]), np.array([], dtype=np.int64),
            np.array([], dtype=np.int64), np.array([1.0]))
        assert converged and iterations == 0 and rates.size == 0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            waterfill_rates(np.array([-1.0]), np.array([0]),
                            np.array([0]), np.array([1.0]))

    def test_capacity_never_exceeded_random(self):
        rng = np.random.default_rng(8)
        flows, edges = 60, 15
        lengths = rng.integers(1, 5, size=flows)
        entry_flow, entry_edge = [], []
        for f in range(flows):
            for e in rng.choice(edges, size=lengths[f], replace=False):
                entry_flow.append(f)
                entry_edge.append(int(e))
        demand = rng.uniform(0.0, 50.0, size=flows)
        capacity = rng.uniform(1.0, 100.0, size=edges)
        rates, _, converged = waterfill_rates(
            demand, np.array(entry_flow), np.array(entry_edge), capacity)
        assert converged
        assert np.all(rates <= demand * (1 + 1e-9))
        loads = np.bincount(np.array(entry_edge),
                            weights=rates[np.array(entry_flow)],
                            minlength=edges)
        assert np.all(loads <= capacity * (1 + 1e-9))


class TestRouteMapping:
    def test_routes_reach_gateway(self):
        paths = map_cells_to_routes(star_graph(),
                                    ["cell-00000", "cell-00001"])
        for path in paths:
            assert path is not None
            assert path[-1] == "gw"

    def test_unreachable_cell_gets_none(self):
        paths = map_cells_to_routes(star_graph(), ["cell-00002"])
        assert paths == [None]

    def test_unknown_cell_gets_none(self):
        paths = map_cells_to_routes(star_graph(), ["cell-99999"])
        assert paths == [None]

    def test_backends_agree(self):
        cells = ["cell-00000", "cell-00001", "cell-00002"]
        csr = map_cells_to_routes(star_graph(), cells, backend="csr")
        ref = map_cells_to_routes(star_graph(), cells, backend="networkx")
        assert csr == ref


class TestRunFluid:
    def test_shared_gateway_link_splits_fairly(self):
        result = run_fluid(star_graph(), ["cell-00000", "cell-00001"],
                           [100e6, 100e6])
        assert result.converged
        assert result.rate_bps == pytest.approx([25e6, 25e6])
        util = result.utilization[("gw", "sat-0")]
        assert util == pytest.approx(1.0)

    def test_unrouted_cell_rate_zero(self):
        result = run_fluid(star_graph(),
                           ["cell-00000", "cell-00002"], [10e6, 10e6])
        assert result.converged
        assert bool(result.routed[0]) and not bool(result.routed[1])
        assert result.rate_bps[1] == 0.0
        assert result.served_fraction == pytest.approx(0.5)

    def test_light_load_fully_served(self):
        result = run_fluid(star_graph(), ["cell-00000", "cell-00001"],
                           [1e6, 2e6])
        assert result.converged
        assert result.served_fraction == pytest.approx(1.0)
        assert result.rate_bps == pytest.approx([1e6, 2e6])

    def test_delay_inflation_grows_under_load(self):
        light = run_fluid(star_graph(), ["cell-00000"], [1e6])
        heavy = run_fluid(star_graph(), ["cell-00000"], [200e6])
        assert float(light.delay_inflation()[0]) < \
            float(heavy.delay_inflation()[0])
        assert float(light.delay_inflation()[0]) >= 1.0

    def test_demand_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            run_fluid(star_graph(), ["cell-00000"], [1e6, 2e6])

    def test_deterministic(self):
        a = run_fluid(star_graph(), ["cell-00000", "cell-00001"],
                      [60e6, 70e6])
        b = run_fluid(star_graph(), ["cell-00000", "cell-00001"],
                      [60e6, 70e6])
        assert np.array_equal(a.rate_bps, b.rate_bps)
        assert a.edge_keys == b.edge_keys
        assert a.utilization == b.utilization


class TestWeightedPercentile:
    def test_simple_median(self):
        values = np.array([1.0, 2.0, 3.0])
        weights = np.array([1.0, 1.0, 1.0])
        assert weighted_percentile(values, weights, 0.5) == 2.0

    def test_weights_shift_percentile(self):
        values = np.array([1.0, 10.0])
        weights = np.array([99.0, 1.0])
        assert weighted_percentile(values, weights, 0.95) == 1.0
        assert weighted_percentile(values, weights, 0.999) == 10.0

    def test_empty_is_nan(self):
        assert np.isnan(weighted_percentile(np.array([]), np.array([]),
                                            0.5))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            weighted_percentile(np.array([1.0]), np.array([1.0]), 1.5)
