"""Tests for congestion wiring: routing costs, health, settlement."""

import networkx as nx
import pytest

from repro import obs as _obs
from repro.demand.congestion import (
    congestion_state,
    peak_statistics,
    settle_demand,
)
from repro.demand.fluid import run_fluid
from repro.routing.adaptive import LoadAdaptiveRouter
from repro.routing.qos import BEST_EFFORT, QosRouter
from repro.simulation.traffic import FlowSpec


def loaded_graph():
    """Two parallel satellite routes; the short one will congest."""
    g = nx.Graph()
    g.add_node("cell-00000", kind="user", owner="op-a")
    g.add_node("sat-short", kind="satellite", owner="fleet")
    g.add_node("sat-long", kind="satellite", owner="fleet")
    g.add_node("gw", kind="ground_station", owner="gs-op")
    g.add_edge("cell-00000", "sat-short", delay_s=0.004,
               capacity_bps=200e6)
    g.add_edge("cell-00000", "sat-long", delay_s=0.009,
               capacity_bps=200e6)
    g.add_edge("sat-short", "gw", delay_s=0.003, capacity_bps=40e6)
    g.add_edge("sat-long", "gw", delay_s=0.008, capacity_bps=200e6)
    return g


def congested_result():
    graph = loaded_graph()
    result = run_fluid(graph, ["cell-00000"], [120e6])
    return graph, result


class TestCongestionState:
    def test_utilization_and_loads(self):
        graph, result = congested_result()
        state = congestion_state(result)
        # The fluid plane picked the short route and filled its 40 Mbps
        # gateway link.
        assert state.utilization[("gw", "sat-short")] == pytest.approx(1.0)
        assert state.background_load_bps()[("gw", "sat-short")] == \
            pytest.approx(40e6)

    def test_queue_delay_written_onto_graph(self):
        graph, result = congested_result()
        state = congestion_state(result)
        touched = state.inflate_queue_delays(graph)
        assert touched >= 1
        data = graph["sat-short"]["gw"]
        # Saturated link: inflation clamps at u=0.99 -> 99x delay.
        assert data["queue_delay_s"] == pytest.approx(
            0.003 * 0.99 / 0.01)

    def test_keys_sorted_for_determinism(self):
        _, result = congested_result()
        state = congestion_state(result)
        keys = list(state.utilization)
        assert keys == sorted(keys)

    def test_peak_statistics(self):
        _, result = congested_result()
        stats = peak_statistics(result)
        assert stats["peak_utilization"] == pytest.approx(1.0)
        assert 0.0 < stats["mean_utilization"] <= 1.0
        assert 0.0 <= stats["hot_link_share"] <= 1.0


class TestRoutingIntegration:
    def test_adaptive_router_diverts_around_background_load(self):
        graph = loaded_graph()
        flow = FlowSpec("f1", "cell-00000", 0.0, 1e6)
        clean = LoadAdaptiveRouter()(graph, flow, [])
        assert clean[1] == "sat-short"

        _, result = congested_result()
        state = congestion_state(result)
        loaded = LoadAdaptiveRouter(
            background_load_bps=state.background_load_bps()
        )(graph, flow, [])
        assert loaded[1] == "sat-long"

    def test_qos_router_prices_congestion(self):
        graph = loaded_graph()
        clean = QosRouter().route(graph, "cell-00000", "gw", BEST_EFFORT)
        assert clean.metrics.path[1] == "sat-short"

        _, result = congested_result()
        state = congestion_state(result)
        congested = QosRouter(link_utilization=state.utilization).route(
            graph, "cell-00000", "gw", BEST_EFFORT)
        assert congested.admitted
        assert congested.metrics.path[1] == "sat-long"

    def test_qos_backends_agree_under_utilization(self):
        graph = loaded_graph()
        _, result = congested_result()
        util = congestion_state(result).utilization
        for requirement in (BEST_EFFORT,):
            csr = QosRouter(backend="csr", link_utilization=util).route(
                graph, "cell-00000", "gw", requirement)
            ref = QosRouter(backend="networkx",
                            link_utilization=util).route(
                graph, "cell-00000", "gw", requirement)
            assert csr.metrics.path == ref.metrics.path

    def test_inflated_queue_delay_feeds_default_cost_model(self):
        # The alternative wiring: write queue delay onto the snapshot
        # and let the stock cost model (queue_weight=1) price it.
        graph, result = congested_result()
        congestion_state(result).inflate_queue_delays(graph)
        routed = QosRouter().route(graph, "cell-00000", "gw", BEST_EFFORT)
        assert routed.metrics.path[1] == "sat-long"


class TestHealthIntegration:
    def test_utilization_lands_in_health_plane(self):
        graph, result = congested_result()
        state = congestion_state(result)
        recorder = _obs.Recorder()
        with _obs.use(recorder):
            recorder.sample_health(0.0, graph,
                                   utilization=state.utilization,
                                   reset=True)
        rows = recorder.health.rows()
        links = next(row for row in rows
                     if row["type"] == "health_links")
        slot = links["ids"].index("gw--sat-short")
        samples = [util for link, util in zip(links["link"],
                                              links["utilization"])
                   if link == slot]
        assert samples == [pytest.approx(1.0)]


class TestSettlement:
    def test_cross_operator_transit_is_billed(self):
        graph, result = congested_result()
        settlement = settle_demand(result, graph, duration_s=3600.0)
        assert settlement.carried_gb == pytest.approx(
            40e6 * 3600.0 / 8.0 / 1e9 * 2)  # fleet + gateway segments
        assert settlement.revenue_usd > 0.0
        payers = {invoice.customer for invoice in settlement.invoices}
        assert payers == {"op-a"}
        carriers = {invoice.carrier for invoice in settlement.invoices}
        assert carriers == {"fleet", "gs-op"}

    def test_net_positions_balance(self):
        graph, result = congested_result()
        settlement = settle_demand(result, graph, duration_s=600.0)
        assert sum(settlement.net_positions.values()) == pytest.approx(0.0)

    def test_zero_duration_rejected(self):
        graph, result = congested_result()
        with pytest.raises(ValueError, match="duration"):
            settle_demand(result, graph, duration_s=0.0)

    def test_deterministic(self):
        graph, result = congested_result()
        a = settle_demand(result, graph, duration_s=3600.0)
        b = settle_demand(result, graph, duration_s=3600.0)
        assert a.invoices == b.invoices
