"""Tests for diurnal curves and heavy-tail QoS demand mixes."""

import numpy as np
import pytest

from repro.demand.profile import (
    DEFAULT_QOS_MIX,
    QosClassDemand,
    diurnal_factor,
    local_solar_hour,
    mean_demand_bps_per_user,
    offered_load_bps,
    validate_qos_mix,
)


class TestDiurnal:
    def test_solar_hour_follows_longitude(self):
        assert float(local_solar_hour(12.0, 0.0)) == pytest.approx(12.0)
        assert float(local_solar_hour(12.0, 90.0)) == pytest.approx(18.0)
        assert float(local_solar_hour(12.0, -90.0)) == pytest.approx(6.0)
        assert float(local_solar_hour(20.0, 90.0)) == pytest.approx(2.0)

    def test_peak_is_normalized_to_one(self):
        hours = np.arange(0.0, 24.0, 1.0 / 60.0)
        factors = diurnal_factor(hours)
        assert factors.max() == pytest.approx(1.0)
        assert factors.min() > 0.0

    def test_evening_beats_predawn(self):
        assert float(diurnal_factor(20.5)) > 2 * float(diurnal_factor(4.0))

    def test_wraps_midnight(self):
        late = float(diurnal_factor(23.9))
        early = float(diurnal_factor(0.1))
        assert late == pytest.approx(early, rel=0.1)


class TestQosClasses:
    def test_default_mix_is_valid(self):
        validate_qos_mix(DEFAULT_QOS_MIX)

    def test_share_sum_enforced(self):
        broken = (QosClassDemand("only", 0.5, 1.0),)
        with pytest.raises(ValueError, match="sum"):
            validate_qos_mix(broken)

    def test_pareto_alpha_must_exceed_one(self):
        with pytest.raises(ValueError, match="alpha"):
            QosClassDemand("p", 1.0, 1.0, "pareto", pareto_alpha=0.9)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            QosClassDemand("p", 1.0, 1.0, "zipf")

    def test_lognormal_sample_mean_matches_analytic(self):
        cls = QosClassDemand("be", 1.0, 6.0, "lognormal",
                             mean_flow_mb=20.0, sigma=1.2)
        rng = np.random.default_rng(2)
        sizes = cls.sample_flow_sizes(rng, 200_000)
        assert sizes.mean() == pytest.approx(cls.mean_flow_bytes(),
                                             rel=0.05)

    def test_pareto_sample_mean_matches_analytic(self):
        cls = QosClassDemand("std", 1.0, 8.0, "pareto",
                             pareto_alpha=2.5, pareto_min_mb=8.0)
        rng = np.random.default_rng(3)
        sizes = cls.sample_flow_sizes(rng, 200_000)
        assert sizes.min() >= 8.0 * 1e6
        assert sizes.mean() == pytest.approx(cls.mean_flow_bytes(),
                                             rel=0.05)

    def test_pareto_is_heavy_tailed(self):
        cls = QosClassDemand("std", 1.0, 8.0, "pareto",
                             pareto_alpha=1.6, pareto_min_mb=8.0)
        rng = np.random.default_rng(4)
        sizes = cls.sample_flow_sizes(rng, 100_000)
        assert sizes.max() > 50 * sizes.mean()


class TestOfferedLoad:
    def test_scales_with_users_and_diurnal(self):
        users = np.array([1000.0, 1000.0])
        lons = np.array([0.0, 0.0])
        peak = offered_load_bps(users, lons, hour_utc=20.5)
        trough = offered_load_bps(users, lons, hour_utc=4.0)
        assert np.all(peak > 2 * trough)
        doubled = offered_load_bps(2 * users, lons, hour_utc=20.5)
        assert np.allclose(doubled, 2 * peak)

    def test_follows_the_sun(self):
        users = np.array([1000.0, 1000.0])
        lons = np.array([0.0, 180.0])
        at_8 = offered_load_bps(users, lons, hour_utc=8.0)
        # At 08:00 UTC it is 20:00 solar at lon 180 — that cell peaks.
        assert at_8[1] > 2 * at_8[0]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            offered_load_bps(np.ones(3), np.ones(2), 12.0)

    def test_mean_demand_positive(self):
        assert mean_demand_bps_per_user() > 0.0
