"""Tests for antenna-time scheduling at shared ground stations."""

import pytest

from repro.ground.scheduling import AntennaScheduler, ContactRequest
from repro.orbits.contact import ContactWindow


def request(request_id, provider, start, end, priority=1.0, min_dur=60.0):
    return ContactRequest(
        request_id=request_id, provider=provider,
        window=ContactWindow(0, start, end, 1.0),
        min_duration_s=min_dur, priority=priority,
    )


class TestValidation:
    def test_scheduler_arguments(self):
        with pytest.raises(ValueError):
            AntennaScheduler(antenna_count=0)
        with pytest.raises(ValueError):
            AntennaScheduler(slew_gap_s=-1.0)

    def test_request_arguments(self):
        with pytest.raises(ValueError):
            request("r", "p", 0.0, 100.0, min_dur=0.0)
        with pytest.raises(ValueError):
            ContactRequest("r", "p", ContactWindow(0, 100.0, 100.0, 1.0))


class TestSingleAntenna:
    def test_non_overlapping_all_granted(self):
        scheduler = AntennaScheduler(antenna_count=1, slew_gap_s=0.0)
        result = scheduler.schedule([
            request("r1", "op-a", 0.0, 300.0),
            request("r2", "op-b", 400.0, 700.0),
        ])
        assert result.grant_ratio == 1.0
        assert len(result.reservations) == 2

    def test_conflicting_requests_arbitrated(self):
        scheduler = AntennaScheduler(antenna_count=1, slew_gap_s=0.0)
        result = scheduler.schedule([
            request("r1", "op-a", 0.0, 300.0, min_dur=250.0),
            request("r2", "op-b", 0.0, 300.0, min_dur=250.0),
        ])
        assert len(result.reservations) == 1
        assert len(result.rejected) == 1

    def test_priority_wins_conflicts(self):
        scheduler = AntennaScheduler(antenna_count=1, slew_gap_s=0.0)
        result = scheduler.schedule([
            request("cheap", "op-a", 0.0, 300.0, priority=1.0,
                    min_dur=250.0),
            request("vip", "op-b", 0.0, 300.0, priority=5.0, min_dur=250.0),
        ])
        assert result.reservations[0].request_id == "vip"
        assert result.rejected[0].request_id == "cheap"

    def test_slew_gap_enforced(self):
        scheduler = AntennaScheduler(antenna_count=1, slew_gap_s=60.0)
        result = scheduler.schedule([
            request("r1", "op-a", 0.0, 300.0, min_dur=290.0),
            request("r2", "op-b", 310.0, 600.0, min_dur=280.0),
        ])
        # r2's window starts only 10 s after r1 ends: the 60 s slew gap
        # forces a rejection (cannot fit 280 s after the gap).
        assert len(result.reservations) == 1

    def test_short_windows_rejected(self):
        scheduler = AntennaScheduler()
        result = scheduler.schedule([
            request("r1", "op-a", 0.0, 50.0, min_dur=60.0),
        ])
        assert result.rejected and not result.reservations


class TestMultiAntenna:
    def test_parallel_antennas_double_capacity(self):
        conflicting = [
            request(f"r{i}", f"op-{i}", 0.0, 300.0, min_dur=250.0)
            for i in range(3)
        ]
        single = AntennaScheduler(antenna_count=1,
                                  slew_gap_s=0.0).schedule(conflicting)
        double = AntennaScheduler(antenna_count=2,
                                  slew_gap_s=0.0).schedule(conflicting)
        assert len(double.reservations) == len(single.reservations) + 1

    def test_busy_time_tracked_per_antenna(self):
        scheduler = AntennaScheduler(antenna_count=2, slew_gap_s=0.0)
        result = scheduler.schedule([
            request("r1", "op-a", 0.0, 300.0, min_dur=250.0),
            request("r2", "op-b", 0.0, 300.0, min_dur=250.0),
        ])
        assert all(busy > 0 for busy in result.antenna_busy_s.values())


class TestAccounting:
    def test_provider_time(self):
        scheduler = AntennaScheduler(antenna_count=2, slew_gap_s=0.0)
        result = scheduler.schedule([
            request("r1", "op-a", 0.0, 300.0),
            request("r2", "op-a", 400.0, 600.0),
            request("r3", "op-b", 0.0, 300.0),
        ])
        usage = result.provider_time_s()
        assert usage["op-a"] > usage["op-b"]

    def test_empty_schedule(self):
        result = AntennaScheduler().schedule([])
        assert result.grant_ratio == 0.0
        assert result.provider_time_s() == {}

    def test_earliest_deadline_maximizes_grants(self):
        # Classic interval scheduling: EDF grants both short passes where
        # a naive order could block with the long one.
        scheduler = AntennaScheduler(antenna_count=1, slew_gap_s=0.0)
        result = scheduler.schedule([
            request("long", "op-a", 0.0, 1000.0, min_dur=900.0),
            request("early", "op-b", 0.0, 200.0, min_dur=150.0),
        ])
        granted = {r.request_id for r in result.reservations}
        assert "early" in granted
