"""Tests for the ground segment: stations, users, gateway pricing."""

import numpy as np
import pytest

from repro.ground.gsaas import GatewayPricing, GatewayUsageMeter
from repro.ground.station import GroundStation, default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint


class TestGatewayPricing:
    def test_owner_traffic_at_base_rate(self):
        pricing = GatewayPricing(base_rate_per_gb=0.02, visitor_rate_per_gb=0.05)
        assert pricing.effective_rate_per_gb(0.9, visitor=False) == 0.02

    def test_visitor_surcharge_under_congestion(self):
        pricing = GatewayPricing(visitor_rate_per_gb=0.05,
                                 congestion_multiplier=3.0,
                                 congestion_threshold=0.7)
        calm = pricing.effective_rate_per_gb(0.5, visitor=True)
        full = pricing.effective_rate_per_gb(1.0, visitor=True)
        assert calm == 0.05
        assert full == pytest.approx(0.15)

    def test_surcharge_ramps_linearly(self):
        pricing = GatewayPricing(visitor_rate_per_gb=0.05,
                                 congestion_multiplier=3.0,
                                 congestion_threshold=0.5)
        mid = pricing.effective_rate_per_gb(0.75, visitor=True)
        assert mid == pytest.approx(0.05 * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GatewayPricing(base_rate_per_gb=-0.1)
        with pytest.raises(ValueError):
            GatewayPricing(congestion_threshold=1.5)


class TestUsageMeter:
    def test_owner_rides_free_per_pass(self):
        meter = GatewayUsageMeter("gs1", owner="op-a")
        assert meter.record_pass("op-a") == 0.0
        assert meter.record_pass("op-b") == meter.pricing.per_pass_fee

    def test_transfer_charges_by_class(self):
        meter = GatewayUsageMeter("gs1", owner="op-a")
        own = meter.record_transfer("op-a", 1e9)
        visitor = meter.record_transfer("op-b", 1e9)
        assert visitor > own

    def test_statement_aggregates(self):
        meter = GatewayUsageMeter("gs1", owner="op-a")
        meter.record_transfer("op-b", 2e9)
        meter.record_transfer("op-b", 3e9)
        meter.record_pass("op-b")
        statement = dict(
            (provider, (volume, passes))
            for provider, volume, passes in meter.statement()
        )
        assert statement["op-b"] == (5e9, 1)

    def test_rejects_negative_bytes(self):
        meter = GatewayUsageMeter("gs1", owner="op-a")
        with pytest.raises(ValueError):
            meter.record_transfer("op-b", -1.0)


class TestGroundStation:
    def _station(self, **kwargs):
        return GroundStation(
            station_id="gs-test",
            location=GeodeticPoint(0.0, 0.0, 0.0),
            owner="op-a",
            **kwargs,
        )

    def test_position_rotates_with_earth(self):
        station = self._station()
        p0 = station.position_eci(0.0)
        p1 = station.position_eci(3600.0)
        assert not np.allclose(p0, p1)
        assert np.linalg.norm(p0) == pytest.approx(np.linalg.norm(p1))

    def test_load_accounting(self):
        station = self._station(backhaul_capacity_bps=1e9)
        assert station.offer_load(0.6e9)
        assert station.utilization == pytest.approx(0.6)
        assert not station.offer_load(0.5e9)
        station.release_load(0.6e9)
        assert station.current_load_bps == 0.0

    def test_release_clamps_at_zero(self):
        station = self._station()
        station.release_load(1e9)
        assert station.current_load_bps == 0.0

    def test_queue_delay_grows_with_load(self):
        station = self._station(backhaul_capacity_bps=1e9)
        idle = station.queue_delay_s()
        station.offer_load(0.95e9)
        assert station.queue_delay_s() > idle

    def test_queue_delay_bounded(self):
        station = self._station(backhaul_capacity_bps=1e9)
        station.offer_load(1e9)
        assert station.queue_delay_s() <= 1.0

    def test_visitor_tariff_reflects_congestion(self):
        station = self._station(backhaul_capacity_bps=1e9)
        calm = station.visitor_tariff_per_gb()
        station.offer_load(0.99e9)
        assert station.visitor_tariff_per_gb() > calm

    def test_rejects_bad_backhaul(self):
        with pytest.raises(ValueError):
            self._station(backhaul_capacity_bps=0.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            self._station().offer_load(-1.0)


class TestDefaultNetwork:
    def test_fifteen_stations(self):
        stations = default_station_network()
        assert len(stations) == 15

    def test_unique_ids_multiple_owners(self):
        stations = default_station_network()
        ids = [s.station_id for s in stations]
        assert len(set(ids)) == len(ids)
        assert len({s.owner for s in stations}) >= 5

    def test_global_spread(self):
        stations = default_station_network()
        lats = [s.location.latitude_deg for s in stations]
        assert min(lats) < -30.0
        assert max(lats) > 60.0


class TestUserTerminal:
    def test_relocate_drops_session(self):
        user = UserTerminal("u1", GeodeticPoint(0.0, 0.0), "op-a")
        user.associated_satellite = "sat-1"
        user.session_certificate = "serial"
        user.relocate(GeodeticPoint(10.0, 10.0))
        assert not user.is_associated
        assert user.session_certificate is None
        assert user.location.latitude_deg == 10.0

    def test_position_on_surface(self):
        user = UserTerminal("u1", GeodeticPoint(45.0, 90.0), "op-a")
        assert np.linalg.norm(user.position_eci(0.0)) == pytest.approx(
            6367.5, abs=25.0
        )


class TestRainFade:
    def test_rejects_negative_rain(self):
        with pytest.raises(ValueError, match="rain rate"):
            GroundStation(
                station_id="wet", location=GeodeticPoint(0.0, 0.0),
                owner="op", rain_rate_mm_h=-1.0,
            )

    def test_heavy_rain_kills_low_elevation_links(self):
        """Tropical downpour breaks low-elevation Ku links entirely."""
        import math
        from repro.phy.modulation import achievable_rate_bps
        from repro.phy.rf import RFTerminal, rf_link_budget, \
            standard_ku_space_terminal
        space = standard_ku_space_terminal()
        gateway = RFTerminal(band_name="ku_downlink", tx_power_w=50.0,
                             dish_diameter_m=3.5, noise_temp_k=180.0)
        budget = rf_link_budget(space, gateway, 1500.0,
                                elevation_rad=math.radians(10.0),
                                rain_rate_mm_h=60.0)
        assert achievable_rate_bps(budget.snr_db, budget.bandwidth_hz) == 0.0

    def test_rainy_station_loses_low_passes_in_network(self, medium_fleet):
        """A drenched gateway keeps only high-elevation contacts."""
        from repro.core.network import OpenSpaceNetwork
        dry = GroundStation("gs-dry", GeodeticPoint(-1.3, 36.8), "op")
        wet = GroundStation("gs-wet", GeodeticPoint(-1.3, 36.8), "op",
                            rain_rate_mm_h=60.0)
        dry_net = OpenSpaceNetwork(medium_fleet, [dry])
        wet_net = OpenSpaceNetwork(medium_fleet, [wet])
        dry_links = dry_net.snapshot(0.0).graph.degree("gs-dry")
        wet_links = wet_net.snapshot(0.0).graph.degree("gs-wet")
        assert wet_links <= dry_links
