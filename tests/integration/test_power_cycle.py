"""Integration: power budgets through eclipse cycles.

The paper: satellites "may have power consumption constraints that limit
the number of ISLs they can establish and the size of data transfers they
can facilitate."  This test drives a spacecraft's power budget through a
real orbit's eclipse windows with ISLs active, verifying the battery
cycles as physics says it should and that an undersized craft must shed
ISL load to survive the night.
"""

import pytest

from repro.isl.power import PowerBudget
from repro.orbits.eclipse import eclipse_windows, in_eclipse, sun_direction
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import KeplerPropagator


def run_orbit(budget, propagator, isl_draw_w, step_s=60.0):
    """Step a budget through one orbit, gating generation on eclipse.

    Returns the minimum charge reached.
    """
    period = propagator.period_s
    base_generation = budget.solar_generation_w
    min_charge = budget.charge_wh
    t = 0.0
    budget.activate_isl("isl", isl_draw_w)
    while t < period:
        dark = in_eclipse(propagator.position_at(t), t)
        budget.solar_generation_w = 0.0 if dark else base_generation
        budget.step(step_s)
        min_charge = min(min_charge, budget.charge_wh)
        t += step_s
    budget.solar_generation_w = base_generation
    return min_charge


@pytest.fixture(scope="module")
def equatorial_propagator():
    return KeplerPropagator(
        OrbitalElements.circular(780.0, inclination_rad=0.0)
    )


class TestPowerThroughEclipse:
    def test_healthy_budget_survives_the_night(self, equatorial_propagator):
        budget = PowerBudget(battery_capacity_wh=600.0,
                             solar_generation_w=300.0, bus_load_w=60.0,
                             max_concurrent_isls=3)
        min_charge = run_orbit(budget, equatorial_propagator,
                               isl_draw_w=60.0)
        assert min_charge > 0.0
        assert not budget.depleted

    def test_undersized_battery_depletes_in_eclipse(self,
                                                    equatorial_propagator):
        # ~35 min of eclipse at 120 W net drain needs ~70 Wh; give 30.
        budget = PowerBudget(battery_capacity_wh=30.0,
                             solar_generation_w=300.0, bus_load_w=60.0,
                             max_concurrent_isls=3)
        min_charge = run_orbit(budget, equatorial_propagator,
                               isl_draw_w=60.0)
        assert min_charge == 0.0

    def test_shedding_isl_load_saves_the_undersized_craft(
            self, equatorial_propagator):
        budget = PowerBudget(battery_capacity_wh=45.0,
                             solar_generation_w=300.0, bus_load_w=60.0,
                             max_concurrent_isls=3)
        # Same craft, no ISL during eclipse: only the 60 W bus drains.
        min_charge = run_orbit(budget, equatorial_propagator,
                               isl_draw_w=0.0)
        assert min_charge > 0.0

    def test_battery_recharges_after_eclipse(self, equatorial_propagator):
        budget = PowerBudget(battery_capacity_wh=600.0,
                             solar_generation_w=300.0, bus_load_w=60.0,
                             max_concurrent_isls=3)
        run_orbit(budget, equatorial_propagator, isl_draw_w=60.0)
        # After a full orbit the craft is back in sun with net surplus;
        # within another half-orbit of sunlight the battery refills.
        budget.deactivate_isl("isl")
        budget.step(equatorial_propagator.period_s / 2.0)
        assert budget.charge_wh == pytest.approx(600.0)

    def test_eclipse_windows_drive_the_cycle(self, equatorial_propagator):
        windows = eclipse_windows(
            equatorial_propagator, 0.0, equatorial_propagator.period_s,
            step_s=30.0,
        )
        assert windows, "an equatorial LEO orbit at equinox must eclipse"
        total_dark = sum(end - start for start, end in windows)
        # ~30-40 minutes of a ~100-minute orbit.
        assert 1200.0 < total_dark < 3000.0

    def test_sun_vector_consistent_with_windows(self, equatorial_propagator):
        windows = eclipse_windows(
            equatorial_propagator, 0.0, equatorial_propagator.period_s,
            step_s=30.0,
        )
        mid = (windows[0][0] + windows[0][1]) / 2.0
        position = equatorial_propagator.position_at(mid)
        # Mid-eclipse, the satellite is on the anti-sun side.
        assert float(position @ sun_direction(mid)) < 0.0
