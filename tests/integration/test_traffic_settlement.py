"""Integration: flow simulation -> ledger -> settlement, end to end.

Runs a QoS-routed workload through the flow simulator on a live federated
snapshot, files every completed flow's carrier path in the traffic
ledger, and settles — verifying the whole §2 + §3 pipeline composes:
routed paths produce billable carrier sequences, honest accounting never
mismatches, and money is conserved.
"""

import numpy as np
import pytest

from repro.core.interop import SizeClass
from repro.economics.ledger import TrafficLedger
from repro.economics.settlement import RateCard, SettlementEngine
from repro.routing.adaptive import LoadAdaptiveRouter
from repro.routing.metrics import path_metrics
from repro.simulation.flowsim import FlowSimulator
from repro.simulation.scenario import Scenario
from repro.simulation.traffic import PoissonFlowGenerator

OPERATORS = ("orbit-a", "orbit-b", "orbit-c")


@pytest.fixture(scope="module")
def workload_outcome():
    scenario = Scenario(
        name="settlement-integration", satellite_count=66,
        operator_names=OPERATORS, size_mix=(SizeClass.MEDIUM,),
        user_count=10, seed=47,
    )
    network = scenario.build_network()
    population = scenario.build_population()
    snap = network.snapshot(0.0, users=population.users)
    rng = np.random.default_rng(47)
    generator = PoissonFlowGenerator(
        population, arrival_rate_per_s=1.0, rng=rng, mean_flow_mb=5.0,
    )
    flows = generator.generate(30.0)
    result = FlowSimulator(snap.graph, LoadAdaptiveRouter()).run(flows)
    return snap, result


class TestFlowToLedgerPipeline:
    def test_workload_mostly_served(self, workload_outcome):
        _snap, result = workload_outcome
        assert result.acceptance_ratio > 0.5
        assert result.completed

    def test_paths_yield_operator_sequences(self, workload_outcome):
        snap, result = workload_outcome
        for record in result.completed:
            metrics = path_metrics(snap.graph, list(record.path))
            assert metrics.operators, "route must traverse owned assets"

    def test_ledger_settlement_composes(self, workload_outcome):
        snap, result = workload_outcome
        ledger = TrafficLedger()
        user_home = {}
        for node, data in snap.graph.nodes(data=True):
            if data.get("kind") == "user":
                user_home[node] = data["owner"]
        for index, record in enumerate(result.completed):
            metrics = path_metrics(snap.graph, list(record.path))
            source = user_home[record.spec.user_id]
            ledger.file_path_transfer(
                f"t{index}", source, metrics.operators,
                record.spec.size_gb, record.finish_s,
            )
        # Honest accounting never mismatches.
        assert ledger.cross_verify() == []
        engine = SettlementEngine(rate_cards={
            name: RateCard(carrier=name) for name in OPERATORS
        })
        invoices = engine.invoices_from_ledger(ledger)
        positions = engine.net_positions(invoices)
        # Money conserved; every invoice positive and between distinct
        # parties.
        assert sum(positions.values()) == pytest.approx(0.0, abs=1e-9)
        for invoice in invoices:
            assert invoice.amount_usd >= 0.0
            assert invoice.carrier != invoice.customer

    def test_roaming_produces_cross_operator_billing(self, workload_outcome):
        snap, result = workload_outcome
        ledger = TrafficLedger()
        user_home = {
            node: data["owner"]
            for node, data in snap.graph.nodes(data=True)
            if data.get("kind") == "user"
        }
        for index, record in enumerate(result.completed):
            metrics = path_metrics(snap.graph, list(record.path))
            ledger.file_path_transfer(
                f"t{index}", user_home[record.spec.user_id],
                metrics.operators, record.spec.size_gb, record.finish_s,
            )
        matrix = ledger.carried_matrix()
        # With interleaved fleets, roaming is rampant: at least one
        # (source, carrier) pair with source != carrier must exist.
        cross = [(s, c) for (s, c) in matrix if s != c]
        assert cross
