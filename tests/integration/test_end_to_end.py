"""Integration tests: whole-stack OpenSpace flows.

Each test exercises several subsystems together, mirroring the lifecycle
the paper describes: federation assembly, user association with roaming
authentication, routed traffic with ledger settlement, predictive
handovers, and bad-actor cutoff reshaping the live network.
"""

import numpy as np
import pytest

from repro.core.association import AssociationProtocol
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.core.federation import Federation, Operator
from repro.core.handover import HandoverScheme, HandoverSimulator
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.core.pairing import PairingProtocol
from repro.economics.ledger import TrafficLedger
from repro.economics.peering import PeeringAdvisor
from repro.economics.settlement import SettlementEngine
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.contact import contact_windows
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like
from repro.routing.qos import QosRequirement, QosRouter
from repro.security.auth import RadiusServer


@pytest.fixture(scope="module")
def federation():
    """Three operators splitting the reference constellation."""
    constellation = iridium_like()
    elements = list(constellation)
    fed = Federation()
    stations = default_station_network()
    for index, name in enumerate(("alpha", "beta", "gamma")):
        fleet = [
            # Interleave ownership so every region mixes operators.
            spec for i, spec in enumerate(
                build_fleet(constellation, name, SizeClass.MEDIUM,
                            id_prefix="sat")
            ) if i % 3 == index
        ]
        fed.admit(Operator(
            name, satellites=fleet,
            ground_stations=stations[index * 5:(index + 1) * 5],
        ))
    return fed


@pytest.fixture(scope="module")
def live_network(federation):
    return OpenSpaceNetwork.from_federation(federation)


class TestFederatedLifecycle:
    def test_federated_fleet_fully_connected(self, live_network):
        import networkx as nx
        snap = live_network.snapshot(0.0)
        sats = snap.nodes_of_kind("satellite")
        sat_graph = snap.isl_snapshot.graph
        assert nx.is_connected(sat_graph)
        assert len(sats) == 66

    def test_cross_operator_isls_exist(self, live_network):
        snap = live_network.snapshot(0.0)
        graph = snap.isl_snapshot.graph
        cross = [
            (u, v) for u, v in graph.edges
            if graph.nodes[u]["owner"] != graph.nodes[v]["owner"]
        ]
        assert cross, "interleaved fleets must form cross-operator ISLs"

    def test_roaming_user_full_association(self, federation, live_network):
        # A beta-subscribed user served by whatever satellite is overhead.
        server = RadiusServer("beta", b"beta-secret",
                              authority=federation.operator("beta").authority)
        server.enroll("wanjiru", b"pw")
        protocol = AssociationProtocol(
            radius_servers={"beta": server},
            auth_anchors={"beta": federation.operator("beta")
                          .ground_stations[0].station_id},
        )
        user = UserTerminal("wanjiru", GeodeticPoint(-1.29, 36.82), "beta",
                            min_elevation_deg=10.0)
        evaluator = BeaconEvaluator(min_elevation_deg=10.0)
        for spec in live_network.satellites:
            evaluator.receive(Beacon.from_spec(spec, 0.0))
        snap = live_network.snapshot(0.0)
        result = protocol.associate(user, snap.graph, evaluator, 0.0, b"pw")
        assert result.succeeded
        # The certificate roams: every operator can verify it.
        cert = server.authority.issue("wanjiru", now_s=0.0)
        federation.trust_store.verify(cert, now_s=10.0)

    def test_end_to_end_user_to_gateway_with_settlement(self, live_network):
        user = UserTerminal("u-settle", GeodeticPoint(14.5, 3.0), "alpha",
                            min_elevation_deg=10.0)
        snap = live_network.snapshot(0.0, users=[user])
        metrics = snap.nearest_ground_station_route(user.user_id)
        assert metrics is not None
        # File the transfer in the ledger using the path's operators.
        ledger = TrafficLedger()
        ledger.file_path_transfer(
            "t-1", "alpha", metrics.operators, gigabytes=2.0, time_s=0.0,
        )
        assert ledger.cross_verify() == []
        invoices = SettlementEngine().invoices_from_ledger(ledger)
        foreign = [op for op in metrics.operators if op != "alpha"]
        assert len(invoices) == len(set(foreign))

    def test_qos_differentiation_across_federated_fleet(self, live_network):
        snap = live_network.snapshot(0.0)
        sats = snap.nodes_of_kind("satellite")
        router = QosRouter()
        best_effort = router.route(snap.graph, sats[0], sats[40],
                                   QosRequirement())
        premium = router.route(snap.graph, sats[0], sats[40],
                               QosRequirement(min_bandwidth_bps=50e6))
        assert best_effort.admitted
        # The MEDIUM fleet is all-laser, so premium should also admit and
        # ride at least as much bandwidth.
        assert premium.admitted
        assert (premium.metrics.bottleneck_capacity_bps
                >= best_effort.metrics.bottleneck_capacity_bps)

    def test_pass_handover_cycle_with_real_windows(self, live_network):
        site = GeodeticPoint(-1.29, 36.82)
        constellation = iridium_like()
        windows = contact_windows(
            site, constellation.propagators(), 0.0, 3600.0,
            step_s=20.0, min_elevation_deg=25.0,
        )
        assert windows
        sim = HandoverSimulator()
        predictive = sim.run(windows, HandoverScheme.PREDICTIVE, 0.0, 3600.0)
        reauth = sim.run(windows, HandoverScheme.REAUTHENTICATE, 0.0, 3600.0)
        assert predictive.availability >= reauth.availability
        assert predictive.handover_count == reauth.handover_count

    def test_bad_actor_cutoff_reshapes_network(self, federation):
        monitor = federation.monitor
        monitor.report("gamma", "interception_attempt")
        monitor.report("gamma", "forged_certificate")
        assert monitor.is_quarantined("gamma")
        try:
            reduced = OpenSpaceNetwork.from_federation(federation)
            assert len(reduced.satellites) == 44
            owners = {s.owner for s in reduced.satellites}
            assert "gamma" not in owners
            # Service persists on the remaining fleet.
            user = UserTerminal("u-q", GeodeticPoint(-1.29, 36.82), "alpha",
                                min_elevation_deg=10.0)
            latencies = [
                reduced.user_to_internet_latency_s(user, t)
                for t in (0.0, 600.0, 1200.0, 1800.0)
            ]
            assert any(l is not None for l in latencies)
        finally:
            # Reinstate for other tests sharing the module fixture.
            monitor.tick(3600.0 * 100)

    def test_pairing_between_federated_neighbours(self, live_network):
        snap = live_network.snapshot(0.0)
        graph = snap.isl_snapshot.graph
        u, v = next(iter(graph.edges))
        spec_u = next(s for s in live_network.satellites
                      if s.satellite_id == u)
        spec_v = next(s for s in live_network.satellites
                      if s.satellite_id == v)
        distance = graph[u][v]["link"].distance_km
        outcome = PairingProtocol().pair(spec_u, spec_v, distance)
        assert outcome.succeeded
        # A single-boresight craft may need a large slew (~180 deg at
        # 1 deg/s); the handshake itself is sub-second.
        assert outcome.rf_handshake_s < 1.0
        assert outcome.total_time_s < 300.0

    def test_peering_emerges_from_symmetric_federated_traffic(self, live_network):
        rng = np.random.default_rng(8)
        ledger = TrafficLedger()
        users = [
            UserTerminal(f"u{i}", GeodeticPoint(
                float(rng.uniform(-55, 55)), float(rng.uniform(-180, 180))),
                ["alpha", "beta"][i % 2], min_elevation_deg=10.0)
            for i in range(12)
        ]
        snap = live_network.snapshot(0.0, users=users)
        for index, user in enumerate(users):
            metrics = snap.nearest_ground_station_route(user.user_id)
            if metrics is None:
                continue
            ledger.file_path_transfer(
                f"t{index}", user.home_provider, metrics.operators,
                gigabytes=5.0, time_s=float(index),
            )
        advisor = PeeringAdvisor(min_mutual_gb=5.0, min_symmetry=0.2)
        recommendations = advisor.recommendations(ledger)
        assert recommendations  # symmetric federated traffic exists
