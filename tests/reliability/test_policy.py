"""Tests for graceful-degradation policies (routing + handover)."""

import networkx as nx
import pytest

from repro.core.handover import HandoverScheme, HandoverSimulator
from repro.orbits.contact import ContactWindow
from repro.reliability.channel import LossyControlChannel, perfect_channel
from repro.reliability.exchange import (
    NO_RETRY,
    CircuitBreakerRegistry,
    ReliableExchange,
    RetryPolicy,
)
from repro.reliability.policy import (
    ResilientRouter,
    RouteResolution,
    reselect_timeline,
)
from repro.routing.proactive import ProactiveRouter


class FakeSnapshot:
    def __init__(self, time_s, edges):
        self.time_s = time_s
        self.graph = nx.Graph()
        for u, v, delay in edges:
            self.graph.add_edge(u, v, delay_s=delay, capacity_bps=1e9)


@pytest.fixture
def proactive():
    router = ProactiveRouter()
    router.precompute([
        FakeSnapshot(0.0, [("a", "b", 0.01), ("b", "c", 0.01)]),
    ], horizon_s=100.0)
    return router


@pytest.fixture
def graph():
    snapshot = FakeSnapshot(0.0, [("a", "b", 0.01), ("b", "c", 0.01)])
    return snapshot.graph


class TestDissemination:
    def test_no_exchange_trivially_succeeds(self, proactive, graph):
        router = ResilientRouter(proactive)
        results = router.disseminate(graph, "a", ["b", "c"])
        assert all(result.ok for result in results.values())
        assert router.undisseminated == set()

    def test_lossless_push_disseminates(self, proactive, graph):
        router = ResilientRouter(
            proactive, exchange=ReliableExchange(NO_RETRY),
            channel=perfect_channel(),
        )
        results = router.disseminate(graph, "a", ["b", "c"])
        assert all(result.ok for result in results.values())

    def test_total_loss_marks_undisseminated(self, proactive, graph):
        router = ResilientRouter(
            proactive,
            exchange=ReliableExchange(
                RetryPolicy(max_attempts=2, jitter_fraction=0.0)),
            channel=LossyControlChannel(base_loss=1.0, seed=3),
        )
        results = router.disseminate(graph, "a", ["c"])
        assert not results["c"].ok
        assert "c" in router.undisseminated

    def test_unreachable_source_reported(self, proactive, graph):
        graph.add_node("island")
        router = ResilientRouter(
            proactive, exchange=ReliableExchange(NO_RETRY),
            channel=perfect_channel(),
        )
        results = router.disseminate(graph, "a", ["island"])
        assert results["island"].reason == "unreachable"
        assert "island" in router.undisseminated

    def test_later_success_clears_degraded_mode(self, proactive, graph):
        channel = LossyControlChannel(base_loss=1.0, seed=3)
        router = ResilientRouter(
            proactive, exchange=ReliableExchange(
                RetryPolicy(max_attempts=1, jitter_fraction=0.0)),
            channel=channel,
        )
        router.disseminate(graph, "a", ["c"])
        assert "c" in router.undisseminated
        channel.base_loss = 0.0
        router.disseminate(graph, "a", ["c"])
        assert "c" not in router.undisseminated


class TestRouteFallback:
    def test_disseminated_source_uses_proactive(self, proactive, graph):
        router = ResilientRouter(proactive)
        resolution = router.route("a", "c", 10.0, graph=graph)
        assert resolution.mode == "proactive"
        assert resolution.metrics.path == ["a", "b", "c"]
        assert not resolution.degraded

    def test_undisseminated_source_falls_back(self, proactive, graph):
        router = ResilientRouter(proactive)
        router.undisseminated.add("a")
        resolution = router.route("a", "c", 10.0, graph=graph)
        assert resolution.mode == "on_demand_fallback"
        assert resolution.metrics.path == ["a", "b", "c"]
        assert resolution.extra_delay_s > 0.0
        assert resolution.degraded
        assert router.fallback_count == 1

    def test_table_miss_falls_back(self, proactive, graph):
        router = ResilientRouter(proactive)
        graph.add_edge("c", "d", delay_s=0.01, capacity_bps=1e9)
        resolution = router.route("a", "d", 10.0, graph=graph)
        assert resolution.mode == "on_demand_fallback"
        assert resolution.metrics.path == ["a", "b", "c", "d"]

    def test_miss_without_graph_is_terminal(self, proactive):
        router = ResilientRouter(proactive)
        router.undisseminated.add("a")
        resolution = router.route("a", "c", 10.0)
        assert resolution.mode == "unreachable"
        assert resolution.metrics is None

    def test_unreachable_target_reported(self, proactive, graph):
        router = ResilientRouter(proactive)
        graph.add_node("island")
        resolution = router.route("a", "island", 10.0, graph=graph)
        assert resolution.mode == "unreachable"

    def test_resolution_dataclass_shape(self):
        resolution = RouteResolution(metrics=None, mode="unreachable")
        assert not resolution.degraded
        assert resolution.extra_delay_s == 0.0


class TestReselectTimeline:
    def test_delegates_to_simulator(self):
        windows = [
            ContactWindow(0, 0.0, 300.0, 1.0),
            ContactWindow(1, 100.0, 400.0, 1.0),
        ]
        sim = HandoverSimulator()
        timeline = reselect_timeline(sim, windows, [(0, 150.0, 400.0)],
                                     HandoverScheme.PREDICTIVE, 0.0, 400.0)
        assert timeline.events[-1].to_satellite == 1

    def test_everything_masked_degrades_to_gap(self):
        windows = [ContactWindow(0, 0.0, 100.0, 1.0)]
        sim = HandoverSimulator()
        timeline = reselect_timeline(sim, windows,
                                     [(0, 0.0, float("inf"))],
                                     HandoverScheme.PREDICTIVE, 0.0, 100.0)
        assert timeline.coverage_gap_s == 100.0
        assert timeline.events == []


class TestPackageExports:
    def test_reexports(self):
        import repro.reliability as reliability

        for name in ("LossyControlChannel", "ReliableExchange",
                     "RetryPolicy", "NO_RETRY", "CircuitBreaker",
                     "CircuitBreakerRegistry", "BreakerState",
                     "ResilientRouter", "reselect_timeline",
                     "perfect_channel"):
            assert hasattr(reliability, name), name


def test_breaker_registry_shared_across_exchanges(graph, proactive):
    registry = CircuitBreakerRegistry(failure_threshold=1)
    auth = ReliableExchange(NO_RETRY, registry, name="auth")
    plan = ReliableExchange(NO_RETRY, registry, name="plan")
    auth.run("shared-link", lambda _i: (False, 0.0), now_s=0.0)
    refused = plan.run("shared-link", lambda _i: (True, 0.01), now_s=1.0)
    assert refused.reason == "circuit-open"
