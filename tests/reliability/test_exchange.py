"""Tests for retry policies, circuit breakers, and ReliableExchange."""

import pytest

from repro.reliability.exchange import (
    NO_RETRY,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRegistry,
    ReliableExchange,
    RetryPolicy,
    deterministic_jitter,
)


class TestJitter:
    def test_stable_across_calls(self):
        assert (deterministic_jitter("auth:a->b", 2)
                == deterministic_jitter("auth:a->b", 2))

    def test_in_unit_interval(self):
        for attempt in range(10):
            value = deterministic_jitter("key", attempt)
            assert 0.0 <= value < 1.0

    def test_varies_with_key_and_attempt(self):
        values = {deterministic_jitter(f"k{i}", j)
                  for i in range(4) for j in range(4)}
        assert len(values) == 16


class TestRetryPolicy:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=100.0, jitter_fraction=0.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=10.0,
                             backoff_max_s=3.0, jitter_fraction=0.0)
        assert policy.backoff_s(5) == pytest.approx(3.0)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=1.0,
                             jitter_fraction=0.5)
        backoff = policy.backoff_s(1, key="k")
        assert 1.0 <= backoff < 1.5

    def test_no_retry_constant(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.backoff_s(1) == 0.0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker("isl", failure_threshold=3)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 1

    def test_open_refuses_until_recovery(self):
        breaker = CircuitBreaker("isl", failure_threshold=1,
                                 recovery_time_s=60.0)
        breaker.record_failure(10.0)
        assert not breaker.allow(30.0)
        assert breaker.rejected_count == 1
        assert breaker.allow(70.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_success_recloses(self):
        breaker = CircuitBreaker("isl", failure_threshold=1,
                                 recovery_time_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(20.0)
        breaker.record_success(20.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("isl", failure_threshold=1,
                                 recovery_time_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(20.0)
        breaker.record_failure(20.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 2
        assert not breaker.allow(25.0)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker("isl", failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)


class TestRegistry:
    def test_one_breaker_per_key(self):
        registry = CircuitBreakerRegistry()
        assert registry.breaker("a") is registry.breaker("a")
        assert registry.breaker("a") is not registry.breaker("b")
        assert len(registry) == 2

    def test_open_keys_sorted(self):
        registry = CircuitBreakerRegistry(failure_threshold=1)
        registry.breaker("zeta").record_failure(0.0)
        registry.breaker("alpha").record_failure(0.0)
        assert registry.open_keys == ("alpha", "zeta")

    def test_states_snapshot(self):
        registry = CircuitBreakerRegistry(failure_threshold=1)
        registry.breaker("a")
        registry.breaker("b").record_failure(0.0)
        assert registry.states() == {"a": BreakerState.CLOSED,
                                     "b": BreakerState.OPEN}


class TestReliableExchange:
    def test_first_attempt_success_costs_rtt_only(self):
        exchange = ReliableExchange(RetryPolicy(jitter_fraction=0.0))
        result = exchange.run("k", lambda _i: (True, 0.05))
        assert result.ok
        assert result.attempts == 1
        assert result.elapsed_s == pytest.approx(0.05)
        assert not result.retried

    def test_no_retry_zero_loss_is_nominal_rtt(self):
        # The byte-identity contract: NO_RETRY + delivered first attempt
        # charges exactly the nominal RTT, nothing else.
        exchange = ReliableExchange(NO_RETRY)
        result = exchange.run("k", lambda _i: (True, 0.1234))
        assert result.elapsed_s == 0.1234

    def test_lost_attempts_cost_timeout_plus_backoff(self):
        policy = RetryPolicy(max_attempts=3, timeout_s=0.5,
                             backoff_base_s=0.1, backoff_factor=2.0,
                             jitter_fraction=0.0)
        outcomes = iter([(False, 0.0), (False, 0.0), (True, 0.05)])
        exchange = ReliableExchange(policy)
        result = exchange.run("k", lambda _i: next(outcomes))
        assert result.ok
        assert result.attempts == 3
        # 2 timeouts + backoffs (0.1 + 0.2) + final RTT.
        assert result.elapsed_s == pytest.approx(0.5 + 0.1 + 0.5 + 0.2 + 0.05)

    def test_exhaustion_fails_with_reason(self):
        policy = RetryPolicy(max_attempts=2, timeout_s=0.5,
                             backoff_base_s=0.1, jitter_fraction=0.0)
        exchange = ReliableExchange(policy)
        result = exchange.run("k", lambda _i: (False, 0.0))
        assert not result.ok
        assert result.reason == "exhausted"
        assert result.attempts == 2
        assert result.elapsed_s == pytest.approx(0.5 + 0.1 + 0.5)
        assert exchange.failure_count == 1

    def test_infinite_rtt_treated_as_lost(self):
        exchange = ReliableExchange(NO_RETRY)
        result = exchange.run("k", lambda _i: (True, float("inf")))
        assert not result.ok
        assert result.reason == "exhausted"

    def test_exhaustion_trips_breaker_then_refuses(self):
        registry = CircuitBreakerRegistry(failure_threshold=2,
                                          recovery_time_s=1000.0)
        policy = RetryPolicy(max_attempts=1, timeout_s=0.1,
                             jitter_fraction=0.0)
        exchange = ReliableExchange(policy, registry)
        for _ in range(2):
            result = exchange.run("isl", lambda _i: (False, 0.0), now_s=0.0)
            assert result.reason == "exhausted"
        refused = exchange.run("isl", lambda _i: (True, 0.01), now_s=1.0)
        assert not refused.ok
        assert refused.reason == "circuit-open"
        assert refused.attempts == 0
        assert refused.breaker_state is BreakerState.OPEN

    def test_breaker_recovers_through_half_open(self):
        registry = CircuitBreakerRegistry(failure_threshold=1,
                                          recovery_time_s=10.0)
        exchange = ReliableExchange(NO_RETRY, registry)
        exchange.run("isl", lambda _i: (False, 0.0), now_s=0.0)
        healed = exchange.run("isl", lambda _i: (True, 0.01), now_s=20.0)
        assert healed.ok
        assert healed.breaker_state is BreakerState.CLOSED

    def test_success_counts_tracked(self):
        exchange = ReliableExchange(NO_RETRY)
        exchange.run("a", lambda _i: (True, 0.01))
        exchange.run("b", lambda _i: (False, 0.0))
        assert exchange.success_count == 1
        assert exchange.failure_count == 1

    def test_attempt_index_passed_through(self):
        seen = []

        def attempt(index):
            seen.append(index)
            return index == 2, 0.01

        policy = RetryPolicy(max_attempts=4, timeout_s=0.0,
                             backoff_base_s=0.0, jitter_fraction=0.0)
        ReliableExchange(policy).run("k", attempt)
        assert seen == [0, 1, 2]
