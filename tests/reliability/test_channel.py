"""Tests for the seeded lossy control-channel model."""

import math

import networkx as nx
import pytest

from repro.reliability.channel import (
    DEFAULT_CAPACITY_KNEE_BPS,
    HopModel,
    LossyControlChannel,
    perfect_channel,
)


def little_graph(capacity_bps=1e9, delay_s=0.01, queue_delay_s=0.0):
    graph = nx.Graph()
    graph.add_edge("a", "b", capacity_bps=capacity_bps, delay_s=delay_s,
                   queue_delay_s=queue_delay_s)
    graph.add_edge("b", "c", capacity_bps=capacity_bps, delay_s=delay_s,
                   queue_delay_s=queue_delay_s)
    return graph


class FakeFaultyNetwork:
    def __init__(self):
        self.failed_satellites = frozenset()
        self.failed_stations = frozenset()
        self.failed_links = frozenset()


class TestValidation:
    def test_rejects_bad_loss_scale(self):
        with pytest.raises(ValueError):
            LossyControlChannel(loss_scale=1.5)

    def test_rejects_bad_base_loss(self):
        with pytest.raises(ValueError):
            LossyControlChannel(base_loss=-0.1)

    def test_rejects_bad_knee(self):
        with pytest.raises(ValueError):
            LossyControlChannel(capacity_knee_bps=0.0)


class TestHopModel:
    def test_fat_link_nearly_lossless(self):
        channel = LossyControlChannel(loss_scale=0.5)
        hop = channel.hop_model(little_graph(capacity_bps=1e9), "a", "b")
        assert hop.loss_probability < 1e-6
        assert hop.delay_s == pytest.approx(0.01)

    def test_thin_link_lossier_than_fat_link(self):
        channel = LossyControlChannel(loss_scale=0.5)
        thin = channel.hop_model(little_graph(capacity_bps=1e6), "a", "b")
        fat = channel.hop_model(little_graph(capacity_bps=1e9), "a", "b")
        assert thin.loss_probability > fat.loss_probability

    def test_knee_capacity_gives_one_over_e(self):
        channel = LossyControlChannel(loss_scale=0.5)
        hop = channel.hop_model(
            little_graph(capacity_bps=DEFAULT_CAPACITY_KNEE_BPS), "a", "b")
        assert hop.loss_probability == pytest.approx(0.5 / math.e)

    def test_base_loss_applies_everywhere(self):
        channel = LossyControlChannel(base_loss=0.1)
        hop = channel.hop_model(little_graph(capacity_bps=1e12), "a", "b")
        assert hop.loss_probability == pytest.approx(0.1)

    def test_queue_delay_included(self):
        channel = LossyControlChannel()
        hop = channel.hop_model(
            little_graph(delay_s=0.01, queue_delay_s=0.005), "a", "b")
        assert hop.delay_s == pytest.approx(0.015)

    def test_missing_edge_is_severed(self):
        channel = LossyControlChannel()
        hop = channel.hop_model(little_graph(), "a", "c")
        assert hop == HopModel(loss_probability=1.0, delay_s=float("inf"))

    def test_fault_mask_severs_hop(self):
        network = FakeFaultyNetwork()
        channel = LossyControlChannel(network=network)
        graph = little_graph()
        assert channel.hop_model(graph, "a", "b").loss_probability < 1.0
        network.failed_links = frozenset({("a", "b")})
        assert channel.hop_model(graph, "a", "b").loss_probability == 1.0

    def test_failed_node_severs_all_its_hops(self):
        network = FakeFaultyNetwork()
        network.failed_satellites = frozenset({"b"})
        channel = LossyControlChannel(network=network)
        graph = little_graph()
        assert channel.hop_model(graph, "a", "b").loss_probability == 1.0
        assert channel.hop_model(graph, "b", "c").loss_probability == 1.0


class TestPathModel:
    def test_multiplies_hop_survival(self):
        channel = LossyControlChannel(base_loss=0.1)
        probability, delay = channel.path_model(little_graph(),
                                                ["a", "b", "c"])
        assert probability == pytest.approx(0.9 * 0.9)
        assert delay == pytest.approx(0.02)

    def test_trivial_path_is_free(self):
        channel = LossyControlChannel(base_loss=0.5)
        assert channel.path_model(little_graph(), ["a"]) == (1.0, 0.0)

    def test_severed_path_zero_probability(self):
        channel = LossyControlChannel()
        probability, delay = channel.path_model(little_graph(),
                                                ["a", "b", "missing"])
        assert probability == 0.0
        assert delay == float("inf")


class TestDelivery:
    def test_zero_loss_consumes_no_rng(self):
        channel = perfect_channel()
        reference = LossyControlChannel(seed=0)
        graph = little_graph()
        for _ in range(20):
            attempt = channel.attempt_round_trip(graph, ["a", "b", "c"])
            assert attempt.delivered
        # The private generator was never advanced: its next draw matches
        # a fresh generator's first draw.
        assert channel._rng.random() == reference._rng.random()

    def test_zero_loss_rtt_matches_nominal(self):
        channel = perfect_channel()
        attempt = channel.attempt_round_trip(little_graph(), ["a", "b", "c"],
                                             server_processing_s=0.01)
        assert attempt.round_trip_s == pytest.approx(2 * 0.02 + 0.01)

    def test_same_seed_same_delivery_pattern(self):
        graph = little_graph()
        patterns = []
        for _ in range(2):
            channel = LossyControlChannel(base_loss=0.4, seed=99)
            patterns.append([
                channel.attempt_round_trip(graph, ["a", "b", "c"]).delivered
                for _ in range(50)
            ])
        assert patterns[0] == patterns[1]
        assert not all(patterns[0])  # 40% hop loss must drop something

    def test_loss_rate_tracks_observed_losses(self):
        channel = LossyControlChannel(base_loss=1.0, seed=1)
        graph = little_graph()
        for _ in range(5):
            assert not channel.attempt_round_trip(graph, ["a", "b"]).delivered
        assert channel.loss_rate == 1.0
        assert channel.messages_sent == 5

    def test_one_way_delivery(self):
        channel = perfect_channel()
        attempt = channel.attempt_one_way(little_graph(), ["a", "b"])
        assert attempt.delivered
        assert attempt.round_trip_s == pytest.approx(0.01)


class TestFaultEpoch:
    def test_injector_callback_bumps_epoch(self):
        channel = LossyControlChannel()
        assert channel.fault_epoch == 0
        channel.on_fault_state_changed()
        channel.on_fault_state_changed()
        assert channel.fault_epoch == 2
