"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.orbits.walker import iridium_like


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def iridium():
    """The paper's Iridium-like reference constellation."""
    return iridium_like()


@pytest.fixture(scope="session")
def medium_fleet(iridium):
    """A single-owner MEDIUM fleet over the reference constellation."""
    return build_fleet(iridium, "acme", SizeClass.MEDIUM)


@pytest.fixture(scope="session")
def network(medium_fleet):
    """A full OpenSpace network: reference fleet + default ground segment."""
    return OpenSpaceNetwork(medium_fleet, default_station_network())


@pytest.fixture(scope="session")
def network_snapshot(network):
    """The network graph at epoch (no users)."""
    return network.snapshot(0.0)
