"""Package-integrity tests: every module imports, every export resolves."""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", [
    name for name in MODULES
    if name.count(".") == 1 or name == "repro"
])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), (
            f"{module_name}.__all__ lists {name!r} but it is not defined"
        )


def test_every_module_has_docstring():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


def test_package_count_sanity():
    # The repo-scale claim: a real subpackage per subsystem.
    subpackages = {
        name.split(".")[1] for name in MODULES if name.count(".") >= 1
    }
    assert {"orbits", "phy", "mac", "isl", "routing", "ground",
            "security", "core", "economics", "simulation",
            "experiments"} <= subpackages


def test_version_string():
    assert repro.__version__ == "1.0.0"
