"""Tests for scenario configuration and execution."""


from repro.core.interop import SizeClass
from repro.simulation.scenario import Scenario


class TestFleetConstruction:
    def test_operators_interleaved(self):
        scenario = Scenario(satellite_count=12,
                            operator_names=("a", "b", "c"))
        fleet = scenario.build_fleet()
        owners = [s.owner for s in fleet]
        assert owners[:6] == ["a", "b", "c", "a", "b", "c"]
        assert len(fleet) == 12

    def test_size_mix_cycles(self):
        scenario = Scenario(
            satellite_count=6,
            size_mix=(SizeClass.SMALL, SizeClass.MEDIUM),
        )
        fleet = scenario.build_fleet()
        classes = [s.size_class for s in fleet]
        assert classes == [
            SizeClass.SMALL, SizeClass.MEDIUM,
            SizeClass.SMALL, SizeClass.MEDIUM,
            SizeClass.SMALL, SizeClass.MEDIUM,
        ]

    def test_large_count_uses_random_constellation(self):
        scenario = Scenario(satellite_count=80, seed=3)
        fleet = scenario.build_fleet()
        assert len(fleet) == 80

    def test_same_seed_same_fleet(self):
        a = Scenario(satellite_count=80, seed=3).build_fleet()
        b = Scenario(satellite_count=80, seed=3).build_fleet()
        assert all(
            x.elements.raan_rad == y.elements.raan_rad for x, y in zip(a, b)
        )


class TestRun:
    def test_run_produces_metrics(self):
        scenario = Scenario(
            name="smoke", satellite_count=66, user_count=5,
            sample_times_s=(0.0,), seed=1,
        )
        result = scenario.run()
        assert result.scenario_name == "smoke"
        assert result.latency.reachability > 0.5
        rows = result.report_rows()
        assert "latency_mean_ms" in rows
        assert rows["satellites"] == 66.0

    def test_tiny_fleet_mostly_unreachable(self):
        scenario = Scenario(
            satellite_count=3, user_count=8, sample_times_s=(0.0,), seed=1,
        )
        result = scenario.run()
        assert result.latency.reachability < 0.7

    def test_population_respects_user_count(self):
        scenario = Scenario(user_count=7)
        assert len(scenario.build_population()) == 7
