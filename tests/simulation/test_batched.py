"""Tensor-pipeline helpers must match their scalar walks bit for bit.

``repro.simulation.batched`` is the array engine behind the figure2 and
faults sweeps' ``--engine batched`` mode, so every helper here is held to
the reproducibility contract: identical float64 bits to the scalar path
it replaces, not just numerical closeness.  These tests pin that for the
epoch position tensor, ground tracks, trial merging, contact masks, and
the transition/span diffs.
"""

import math

import numpy as np
import pytest

from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.orbits.visibility import elevation_angle
from repro.orbits.walker import random_constellation
from repro.simulation.batched import (
    TransitionMasks,
    contact_mask,
    contact_spans,
    epoch_position_tensor,
    ground_eci_track,
    merge_trial_epochs,
    transition_masks,
)

SITE = GeodeticPoint(-1.29, 36.82)  # Nairobi, as in the figure2 driver


def _fleet(count=12, seed=7):
    return random_constellation(count, np.random.default_rng(seed))


class TestEpochPositionTensor:
    def test_shape_and_contiguity(self):
        props = _fleet().propagators()
        times = np.linspace(0.0, 5400.0, 5)
        tensor = epoch_position_tensor(props, times)
        assert tensor.shape == (5, len(props), 3)
        assert tensor.flags["C_CONTIGUOUS"]

    def test_bitwise_matches_per_epoch_solves(self):
        # The flat Kepler path is shape-independent: solving one epoch at
        # a time must give the same bits as the whole grid at once.
        props = _fleet().propagators()
        times = np.linspace(0.0, 5400.0, 4)
        tensor = epoch_position_tensor(props, times)
        for e, t in enumerate(times):
            reference = np.array(
                [prop.positions_at(float(t))[0] for prop in props]
            )
            assert np.array_equal(tensor[e], reference)

    def test_bitwise_matches_per_satellite_grids(self):
        props = _fleet().propagators()
        times = np.linspace(0.0, 5400.0, 4)
        tensor = epoch_position_tensor(props, times)
        for s, prop in enumerate(props):
            assert np.array_equal(tensor[:, s, :], prop.positions_at(times))

    def test_empty_time_grid(self):
        props = _fleet(count=3).propagators()
        assert epoch_position_tensor(props, []).shape == (0, 3, 3)


class TestGroundEciTrack:
    def test_bitwise_matches_scalar_rotation(self):
        times = np.linspace(0.0, 86400.0, 6, endpoint=False)
        track = ground_eci_track(SITE, times)
        assert track.shape == (6, 3)
        ecef = SITE.ecef()
        for e, t in enumerate(times):
            assert np.array_equal(track[e], ecef_to_eci(ecef, float(t)))


class TestMergeTrialEpochs:
    def test_blocks_preserved_bitwise(self):
        rng = np.random.default_rng(3)
        trials = [rng.normal(size=(4, 3, 3)) for _ in range(3)]
        merged = merge_trial_epochs(trials)
        assert merged.shape == (4, 9, 3)
        for t, tensor in enumerate(trials):
            assert np.array_equal(merged[:, 3 * t:3 * (t + 1), :], tensor)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_trial_epochs([])


class TestContactMask:
    def test_matches_scalar_elevation_checks(self):
        times = np.linspace(0.0, 5400.0, 5)
        props = _fleet().propagators()
        positions = epoch_position_tensor(props, times)
        ground = ground_eci_track(SITE, times)
        mask = contact_mask(ground, positions, min_elevation_deg=10.0)
        assert mask.shape == (5, len(props))
        assert mask.dtype == bool
        threshold = math.radians(10.0)
        for e in range(5):
            for s in range(len(props)):
                expected = (
                    elevation_angle(ground[e], positions[e, s]) >= threshold
                )
                assert mask[e, s] == expected

    def test_static_positions_broadcast_over_epochs(self):
        props = _fleet(count=6).propagators()
        static = np.array([p.position_at(0.0) for p in props])
        times = np.array([0.0, 600.0])
        ground = ground_eci_track(SITE, times)
        mask = contact_mask(ground, static, min_elevation_deg=0.0)
        assert mask.shape == (2, 6)


def _reference_transitions(visible):
    """Per-epoch python reference for the mask diffs."""
    epochs, sats = visible.shape
    acquired = np.zeros_like(visible)
    dropped = np.zeros_like(visible)
    sustained = np.zeros_like(visible)
    for e in range(epochs):
        for s in range(sats):
            was = visible[e - 1, s] if e > 0 else False
            acquired[e, s] = visible[e, s] and not was
            dropped[e, s] = was and not visible[e, s]
            sustained[e, s] = visible[e, s] and was
    return acquired, dropped, sustained


class TestTransitionMasks:
    def test_matches_python_reference(self):
        rng = np.random.default_rng(11)
        visible = rng.random((7, 9)) < 0.4
        masks = transition_masks(visible)
        acquired, dropped, sustained = _reference_transitions(visible)
        assert np.array_equal(masks.visible, visible)
        assert np.array_equal(masks.acquired, acquired)
        assert np.array_equal(masks.dropped, dropped)
        assert np.array_equal(masks.sustained, sustained)

    def test_epoch_zero_visibility_counts_as_acquisition(self):
        visible = np.array([[True, False], [True, True]])
        masks = transition_masks(visible)
        assert masks.acquired[0].tolist() == [True, False]
        assert not masks.dropped[0].any()
        assert not masks.sustained[0].any()
        assert masks.sustained[1].tolist() == [True, False]

    def test_summary_properties(self):
        visible = np.array([
            [True, False, True],
            [False, False, True],
            [True, True, True],
        ])
        masks = transition_masks(visible)
        assert isinstance(masks, TransitionMasks)
        # Passes: sat 0 twice (epochs 0 and 2), sat 1 once, sat 2 once.
        assert masks.association_count == 4
        assert masks.passes_per_satellite.tolist() == [2, 1, 1]
        assert masks.drops_per_epoch.tolist() == [0, 1, 0]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            transition_masks(np.zeros(4, dtype=bool))


def _reference_spans(visible, times):
    """Per-satellite python scan for maximal visible runs."""
    spans = []
    for s in range(visible.shape[1]):
        start = None
        for e in range(visible.shape[0]):
            if visible[e, s] and start is None:
                start = e
            elif not visible[e, s] and start is not None:
                spans.append((s, float(times[start]), float(times[e - 1])))
                start = None
        if start is not None:
            spans.append((s, float(times[start]), float(times[-1])))
    return spans


class TestContactSpans:
    def test_matches_python_reference(self):
        rng = np.random.default_rng(23)
        visible = rng.random((12, 8)) < 0.5
        times = np.linspace(0.0, 1100.0, 12)
        assert contact_spans(visible, times) == _reference_spans(
            visible, times
        )

    def test_run_touching_grid_edges(self):
        visible = np.array([[True], [True], [False], [True]])
        times = np.array([0.0, 10.0, 20.0, 30.0])
        assert contact_spans(visible, times) == [
            (0, 0.0, 10.0), (0, 30.0, 30.0),
        ]

    def test_no_contacts(self):
        assert contact_spans(np.zeros((4, 3), dtype=bool),
                             np.arange(4.0)) == []

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            contact_spans(np.zeros(3, dtype=bool), np.arange(3.0))
        with pytest.raises(ValueError, match="one time per epoch"):
            contact_spans(np.zeros((3, 2), dtype=bool), np.arange(4.0))

    def test_real_fleet_spans_bracket_visibility(self):
        times = np.linspace(0.0, 5400.0, 30)
        props = _fleet().propagators()
        mask = contact_mask(ground_eci_track(SITE, times),
                            epoch_position_tensor(props, times))
        spans = _reference_spans(mask, times)
        assert contact_spans(mask, times) == spans
        assert spans, "expected at least one contact in an orbital period"
