"""Tests for scenario config files and CSV export."""

import json

import pytest

from repro.core.interop import SizeClass
from repro.experiments.export import figure_2b_to_csv, rows_to_csv
from repro.simulation.config import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.simulation.scenario import Scenario


class TestScenarioConfig:
    def test_round_trip(self, tmp_path):
        scenario = Scenario(
            name="rt", satellite_count=30,
            operator_names=("a", "b"),
            size_mix=(SizeClass.SMALL, SizeClass.MEDIUM),
            user_count=9, seed=3, sample_times_s=(0.0, 60.0),
        )
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded == scenario

    def test_from_dict_parses_size_names(self):
        scenario = scenario_from_dict({
            "name": "x", "size_mix": ["medium", "large"],
        })
        assert scenario.size_mix == (SizeClass.MEDIUM, SizeClass.LARGE)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario config keys"):
            scenario_from_dict({"satelite_count": 10})

    def test_unknown_size_class_rejected(self):
        with pytest.raises(ValueError, match="unknown size class"):
            scenario_from_dict({"size_mix": ["jumbo"]})

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_scenario(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_scenario(path)

    def test_explicit_constellation_not_serializable(self, iridium):
        scenario = Scenario(constellation=iridium)
        with pytest.raises(ValueError, match="cannot round-trip"):
            scenario_to_dict(scenario)

    def test_loaded_scenario_runs(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({
            "name": "cfg-run", "satellite_count": 66, "user_count": 4,
            "sample_times_s": [0.0], "seed": 1,
        }))
        result = load_scenario(path).run()
        assert result.scenario_name == "cfg-run"
        assert result.latency.reachability > 0.0


class TestCsvExport:
    def test_rows_to_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        count = rows_to_csv(
            [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5, "c": "x"}], path
        )
        assert count == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1].startswith("1,2.5")

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no rows"):
            rows_to_csv([], tmp_path / "empty.csv")

    def test_column_order_respected(self, tmp_path):
        path = tmp_path / "ordered.csv"
        rows_to_csv([{"x": 1, "y": 2}], path, columns=["y", "x"])
        assert path.read_text().splitlines()[0] == "y,x"

    def test_crash_mid_export_preserves_previous_file(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([{"a": 1}], path)
        before = path.read_text()

        class Exploding(dict):
            def get(self, *_args):
                raise RuntimeError("row died mid-serialization")

        with pytest.raises(RuntimeError):
            rows_to_csv([{"a": 1}, Exploding(a=2)], path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_figure_2b_export(self, tmp_path):
        result = {
            "series": [{"x": 10, "mean": 40.0, "p50": 39.0, "p95": 60.0,
                        "n": 4}],
            "reachability": {4: 0.0, 10: 0.5},
        }
        path = tmp_path / "fig2b.csv"
        count = figure_2b_to_csv(result, path)
        assert count == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("satellites,reachability")
        # The unreachable count exports with empty latency cells.
        assert lines[1].startswith("4,0.0")
