"""Tests for the flow-level simulator and max-min fair sharing."""

import networkx as nx
import pytest

from repro.simulation.flowsim import (
    ActiveFlow,
    FlowSimulator,
    max_min_fair_rates,
)
from repro.simulation.traffic import FlowSpec


def make_flow(flow_id, path, size_bytes=1e6, start_s=0.0):
    spec = FlowSpec(flow_id, path[0], start_s, size_bytes)
    edges = [
        (u, v) if u <= v else (v, u) for u, v in zip(path[:-1], path[1:])
    ]
    return ActiveFlow(spec=spec, path=list(path), edges=edges,
                      remaining_bytes=size_bytes, admitted_at_s=start_s)


class TestMaxMinFair:
    def test_single_flow_gets_bottleneck(self):
        flow = make_flow("f1", ["a", "b", "c"])
        capacities = {("a", "b"): 10e6, ("b", "c"): 4e6}
        max_min_fair_rates([flow], capacities)
        assert flow.rate_bps == pytest.approx(4e6)

    def test_two_flows_share_common_link(self):
        f1 = make_flow("f1", ["a", "b"])
        f2 = make_flow("f2", ["a", "b"])
        max_min_fair_rates([f1, f2], {("a", "b"): 10e6})
        assert f1.rate_bps == pytest.approx(5e6)
        assert f2.rate_bps == pytest.approx(5e6)

    def test_classic_three_flow_example(self):
        # f1: A-B (cap 10), f2: B-C (cap 4), f3: A-B-C.
        # f3 is bottlenecked at B-C: f2=f3=2; f1 then gets 10-2=8.
        f1 = make_flow("f1", ["a", "b"])
        f2 = make_flow("f2", ["b", "c"])
        f3 = make_flow("f3", ["a", "b", "c"])
        capacities = {("a", "b"): 10e6, ("b", "c"): 4e6}
        max_min_fair_rates([f1, f2, f3], capacities)
        assert f2.rate_bps == pytest.approx(2e6)
        assert f3.rate_bps == pytest.approx(2e6)
        assert f1.rate_bps == pytest.approx(8e6)

    def test_rates_never_exceed_any_capacity(self):
        flows = [make_flow(f"f{i}", ["a", "b", "c"]) for i in range(5)]
        capacities = {("a", "b"): 7e6, ("b", "c"): 3e6}
        max_min_fair_rates(flows, capacities)
        for edge, cap in capacities.items():
            used = sum(f.rate_bps for f in flows if edge in f.edges)
            assert used <= cap * (1 + 1e-9)

    def test_empty_flow_set(self):
        max_min_fair_rates([], {("a", "b"): 1e6})  # must not raise

    def test_single_shared_bottleneck_splits_evenly(self):
        flows = [make_flow(f"f{i}", ["a", "b"]) for i in range(4)]
        max_min_fair_rates(flows, {("a", "b"): 8e6})
        for flow in flows:
            assert flow.rate_bps == pytest.approx(2e6)

    def test_zero_capacity_link_starves_its_flows(self):
        dead = make_flow("dead", ["a", "b"])
        alive = make_flow("alive", ["b", "c"])
        max_min_fair_rates([dead, alive],
                           {("a", "b"): 0.0, ("b", "c"): 5e6})
        assert dead.rate_bps == pytest.approx(0.0)
        assert alive.rate_bps == pytest.approx(5e6)

    def test_fairness_invariant_no_flow_below_fair_share(self):
        # On every edge, a flow's rate may fall below the edge's equal
        # split only because it is bottlenecked elsewhere — never below
        # the smallest equal split along its own path.
        flows = [
            make_flow("f1", ["a", "b"]),
            make_flow("f2", ["a", "b", "c"]),
            make_flow("f3", ["b", "c", "d"]),
            make_flow("f4", ["a", "b", "c", "d"]),
        ]
        capacities = {("a", "b"): 9e6, ("b", "c"): 6e6, ("c", "d"): 4e6}
        max_min_fair_rates(flows, capacities)
        shares_per_edge = {
            edge: sum(1 for f in flows if edge in f.edges)
            for edge in capacities
        }
        for flow in flows:
            fair_share = min(
                capacities[edge] / shares_per_edge[edge]
                for edge in flow.edges
            )
            assert flow.rate_bps >= fair_share * (1 - 1e-9)


@pytest.fixture
def simple_graph():
    g = nx.Graph()
    g.add_node("u", kind="user")
    g.add_node("s", kind="satellite")
    g.add_node("g1", kind="ground_station")
    g.add_edge("u", "s", delay_s=0.003, capacity_bps=8e6)
    g.add_edge("s", "g1", delay_s=0.003, capacity_bps=8e6)
    return g


def fixed_router(path):
    def route(_graph, _flow, _active):
        return path
    return route


class TestFlowSimulator:
    def test_single_flow_completion_time(self, simple_graph):
        sim = FlowSimulator(simple_graph, fixed_router(["u", "s", "g1"]))
        flows = [FlowSpec("f1", "u", 0.0, 1e6)]  # 8 Mb over 8 Mbps = 1 s
        result = sim.run(flows)
        assert len(result.completed) == 1
        assert result.completed[0].completion_time_s == pytest.approx(1.0)
        assert result.completed[0].mean_rate_bps == pytest.approx(8e6)
        assert result.completed[0].path == ("u", "s", "g1")

    def test_two_overlapping_flows_share(self, simple_graph):
        sim = FlowSimulator(simple_graph, fixed_router(["u", "s", "g1"]))
        flows = [FlowSpec("f1", "u", 0.0, 1e6), FlowSpec("f2", "u", 0.0, 1e6)]
        result = sim.run(flows)
        assert len(result.completed) == 2
        # Fair sharing: both finish at 2 s.
        for record in result.completed:
            assert record.finish_s == pytest.approx(2.0)
        assert result.peak_concurrent_flows == 2

    def test_staggered_arrivals(self, simple_graph):
        sim = FlowSimulator(simple_graph, fixed_router(["u", "s", "g1"]))
        flows = [FlowSpec("f1", "u", 0.0, 1e6), FlowSpec("f2", "u", 0.5, 1e6)]
        result = sim.run(flows)
        by_id = {r.spec.flow_id: r for r in result.completed}
        # f1 runs alone 0-0.5 s (4 Mb done), then shares at 4 Mbps until
        # its remaining 4 Mb finish at 1.5 s; f2 then runs alone at
        # 8 Mbps and its remaining 4 Mb finish at 2.0 s.
        assert by_id["f1"].finish_s == pytest.approx(1.5)
        assert by_id["f2"].finish_s == pytest.approx(2.0)

    def test_rejection_when_no_route(self, simple_graph):
        sim = FlowSimulator(simple_graph, fixed_router(None))
        result = sim.run([FlowSpec("f1", "u", 0.0, 1e6)])
        assert result.acceptance_ratio == 0.0
        assert len(result.rejected) == 1
        assert not result.rejected[0].completed

    def test_unknown_edge_raises(self, simple_graph):
        sim = FlowSimulator(simple_graph, fixed_router(["u", "g1"]))
        with pytest.raises(ValueError, match="absent from graph"):
            sim.run([FlowSpec("f1", "u", 0.0, 1e6)])

    def test_empty_workload(self, simple_graph):
        result = FlowSimulator(
            simple_graph, fixed_router(["u", "s", "g1"])
        ).run([])
        assert result.acceptance_ratio == 0.0
        assert result.completed == []

    def test_aggregate_metrics(self, simple_graph):
        sim = FlowSimulator(simple_graph, fixed_router(["u", "s", "g1"]))
        flows = [FlowSpec(f"f{i}", "u", float(i), 1e6) for i in range(4)]
        result = sim.run(flows)
        assert result.acceptance_ratio == 1.0
        assert result.mean_completion_time_s() > 0.0
        assert result.mean_throughput_bps() > 0.0
