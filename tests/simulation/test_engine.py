"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = SimulationEngine()
        fired = []
        for name in "abc":
            engine.schedule(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_with_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now_s))
        engine.run()
        assert seen == [5.0]
        assert engine.now_s == 5.0

    def test_schedule_in_is_relative(self):
        engine = SimulationEngine(start_s=10.0)
        seen = []
        engine.schedule_in(2.5, lambda: seen.append(engine.now_s))
        engine.run()
        assert seen == [12.5]

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine(start_s=10.0)
        with pytest.raises(ValueError, match="already at"):
            engine.schedule(5.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule_in(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now_s == 3.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        engine.cancel(event)
        engine.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("keep"))
        doomed = engine.schedule(1.0, lambda: fired.append("drop"))
        engine.cancel(doomed)
        engine.run()
        assert fired == ["keep"]


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        processed = engine.run_until(3.0)
        assert processed == 1
        assert fired == [1]
        assert engine.now_s == 3.0
        assert engine.pending_count == 1

    def test_clock_advances_even_without_events(self):
        engine = SimulationEngine()
        engine.run_until(100.0)
        assert engine.now_s == 100.0

    def test_boundary_event_included(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run_until(3.0)
        assert fired == [3]

    def test_runaway_guard(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule(engine.now_s, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="runaway"):
            engine.run_until(1.0, max_events=100)

    def test_processed_count_tracked(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule(float(t), lambda: None)
        engine.run()
        assert engine.processed_count == 5
