"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = SimulationEngine()
        fired = []
        for name in "abc":
            engine.schedule(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_with_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now_s))
        engine.run()
        assert seen == [5.0]
        assert engine.now_s == 5.0

    def test_schedule_in_is_relative(self):
        engine = SimulationEngine(start_s=10.0)
        seen = []
        engine.schedule_in(2.5, lambda: seen.append(engine.now_s))
        engine.run()
        assert seen == [12.5]

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine(start_s=10.0)
        with pytest.raises(ValueError, match="already at"):
            engine.schedule(5.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule_in(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now_s == 3.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        engine.cancel(event)
        engine.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("keep"))
        doomed = engine.schedule(1.0, lambda: fired.append("drop"))
        engine.cancel(doomed)
        engine.run()
        assert fired == ["keep"]

    def test_pending_count_excludes_cancelled(self):
        engine = SimulationEngine()
        kept = [engine.schedule(float(t), lambda: None) for t in range(3)]
        doomed = engine.schedule(5.0, lambda: None)
        engine.cancel(doomed)
        assert engine.pending_count == 3
        engine.cancel(kept[0])
        assert engine.pending_count == 2

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.cancel(event)
        engine.cancel(event)
        assert engine.pending_count == 0
        assert engine.cancelled_pending_count == 1
        assert engine.run() == 0

    def test_cancel_after_fire_is_noop(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        engine.cancel(event)
        assert engine.cancelled_pending_count == 0
        assert engine.pending_count == 0

    def test_no_stale_accumulation_across_run_until(self):
        # Cancelled entries beyond the horizon must not pile up in the
        # cancelled set forever once the horizon passes them.
        engine = SimulationEngine()
        for t in range(10):
            event = engine.schedule(100.0 + t, lambda: None)
            engine.cancel(event)
        live = engine.schedule(200.0, lambda: None)
        engine.run_until(50.0)   # breaks before any cancelled entry pops
        assert engine.pending_count == 1
        engine.run_until(150.0)  # horizon sweeps past the cancelled block
        assert engine.cancelled_pending_count == 0
        assert engine.pending_count == 1
        engine.cancel(live)
        assert engine.pending_count == 0

    def test_mass_cancel_compacts_heap(self):
        engine = SimulationEngine()
        doomed = [engine.schedule(1.0, lambda: None) for _ in range(200)]
        survivor = engine.schedule(2.0, lambda: None)
        for event in doomed:
            engine.cancel(event)
        # Compaction rebuilt the heap: no cancelled entries linger.
        assert engine.cancelled_pending_count < 200
        assert engine.pending_count == 1
        assert engine.run() == 1
        assert engine.pending_count == 0
        assert survivor.sequence not in engine._cancelled

    def test_cancelled_head_does_not_pull_event_past_horizon(self):
        engine = SimulationEngine()
        fired = []
        doomed = engine.schedule(1.0, lambda: fired.append("dead"))
        engine.schedule(10.0, lambda: fired.append("late"))
        engine.cancel(doomed)
        processed = engine.run_until(5.0)
        assert processed == 0
        assert fired == []
        assert engine.now_s == 5.0


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        processed = engine.run_until(3.0)
        assert processed == 1
        assert fired == [1]
        assert engine.now_s == 3.0
        assert engine.pending_count == 1

    def test_clock_advances_even_without_events(self):
        engine = SimulationEngine()
        engine.run_until(100.0)
        assert engine.now_s == 100.0

    def test_boundary_event_included(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run_until(3.0)
        assert fired == [3]

    def test_runaway_guard(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule(engine.now_s, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="runaway"):
            engine.run_until(1.0, max_events=100)

    def test_processed_count_tracked(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule(float(t), lambda: None)
        engine.run()
        assert engine.processed_count == 5


class TestGuardsAndOrdering:
    def test_run_runaway_guard(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule_in(0.1, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="runaway"):
            engine.run(max_events=50)

    def test_run_until_guard_leaves_headroom(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule(float(t), lambda: None)
        assert engine.run_until(20.0, max_events=11) == 10

    def test_cancelled_events_do_not_trip_guard(self):
        engine = SimulationEngine()
        for t in range(10):
            event = engine.schedule(float(t), lambda: None)
            engine.cancel(event)
        survivor_fired = []
        engine.schedule(3.0, lambda: survivor_fired.append(True))
        # Ten cancelled entries must not count toward max_events.
        assert engine.run_until(20.0, max_events=2) == 1
        assert survivor_fired == [True]

    def test_fifo_among_simultaneous_interleaved_times(self):
        # Schedule order at equal times must be preserved even when the
        # equal-time events are pushed between events at other times.
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("t2-first"))
        engine.schedule(1.0, lambda: fired.append("t1-first"))
        engine.schedule(2.0, lambda: fired.append("t2-second"))
        engine.schedule(1.0, lambda: fired.append("t1-second"))
        engine.schedule(2.0, lambda: fired.append("t2-third"))
        engine.run()
        assert fired == ["t1-first", "t1-second", "t2-first",
                         "t2-second", "t2-third"]

    def test_fifo_preserved_for_events_scheduled_during_run(self):
        engine = SimulationEngine()
        fired = []

        def spawn():
            engine.schedule(5.0, lambda: fired.append("child-a"))
            engine.schedule(5.0, lambda: fired.append("child-b"))

        engine.schedule(5.0, lambda: fired.append("parent-after"))
        engine.schedule(0.0, spawn)
        engine.run()
        assert fired == ["parent-after", "child-a", "child-b"]

    def test_fifo_survives_compaction(self):
        engine = SimulationEngine()
        fired = []
        doomed = [engine.schedule(1.0, lambda: None) for _ in range(150)]
        for name in "abc":
            engine.schedule(1.0, lambda n=name: fired.append(n))
        for event in doomed:
            engine.cancel(event)
        engine.run()
        assert fired == ["a", "b", "c"]
