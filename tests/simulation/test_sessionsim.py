"""Tests for the user-session simulator."""

import math

import pytest

from repro.core.handover import HandoverScheme
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.simulation.sessionsim import SessionSimulator, SessionTrace


@pytest.fixture(scope="module")
def session(network):
    user = UserTerminal("session-user", GeodeticPoint(-1.29, 36.82),
                        "acme", min_elevation_deg=10.0)
    simulator = SessionSimulator(network)
    return simulator.run(user, 0.0, 1800.0, epoch_s=60.0)


class TestSessionTrace:
    def test_sample_count(self, session):
        assert len(session.samples) == 30

    def test_mostly_served(self, session):
        assert len(session.served_samples) > 20

    def test_latency_stats_sane(self, session):
        stats = session.latency_stats_ms()
        assert 3.0 < stats["p50"] < 150.0
        assert stats["p95"] >= stats["p50"]

    def test_serving_changes_over_half_hour(self, session):
        # LEO passes last minutes; 30 min must force several serving
        # changes.  Changes across a coverage gap count as
        # re-associations (not handovers), so count both.
        serving = [s.serving_satellite for s in session.served_samples]
        assert len(set(serving)) >= 3
        assert session.handover_count >= 1

    def test_availability_high(self, session):
        assert session.availability > 0.6

    def test_serving_satellite_changes_tracked(self, session):
        serving = [
            s.serving_satellite for s in session.served_samples
        ]
        assert len(set(serving)) >= 2

    def test_bottleneck_positive_when_served(self, session):
        for sample in session.served_samples:
            assert sample.bottleneck_mbps > 0.0


class TestSchemes:
    def test_reauth_scheme_pays_more_outage(self, network):
        user = UserTerminal("scheme-user", GeodeticPoint(-1.29, 36.82),
                            "acme", min_elevation_deg=10.0)
        simulator = SessionSimulator(network)
        predictive = simulator.run(user, 0.0, 1800.0, epoch_s=60.0,
                                   scheme=HandoverScheme.PREDICTIVE)
        reauth = simulator.run(user, 0.0, 1800.0, epoch_s=60.0,
                               scheme=HandoverScheme.REAUTHENTICATE)
        assert reauth.total_outage_s > predictive.total_outage_s
        assert reauth.handover_count == predictive.handover_count


class TestValidation:
    def test_bad_interval(self, network):
        user = UserTerminal("u", GeodeticPoint(0.0, 0.0), "acme")
        simulator = SessionSimulator(network)
        with pytest.raises(ValueError):
            simulator.run(user, 10.0, 10.0)
        with pytest.raises(ValueError):
            simulator.run(user, 0.0, 100.0, epoch_s=0.0)

    def test_empty_trace_properties(self):
        trace = SessionTrace()
        assert trace.availability == 0.0
        assert trace.handover_count == 0
        assert math.isnan(trace.latency_stats_ms()["mean"])
