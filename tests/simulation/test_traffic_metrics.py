"""Tests for traffic generation and metric collectors."""

import math

import numpy as np
import pytest

from repro.simulation.metrics import (
    LatencyCollector,
    SeriesCollector,
    summarize,
)
from repro.simulation.traffic import (
    PoissonFlowGenerator,
    UNDERSERVED_REGIONS,
    UserPopulation,
    underserved_region_users,
    uniform_land_users,
)


class TestPopulations:
    def test_uniform_count_and_band(self, rng):
        pop = uniform_land_users(50, rng, ["op-a", "op-b"])
        assert len(pop) == 50
        assert all(
            abs(u.location.latitude_deg) <= 70.0 for u in pop.users
        )

    def test_uniform_round_robins_providers(self, rng):
        pop = uniform_land_users(10, rng, ["op-a", "op-b"])
        homes = [u.home_provider for u in pop.users]
        assert homes.count("op-a") == 5
        assert homes.count("op-b") == 5

    def test_uniform_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_land_users(0, rng, ["op"])
        with pytest.raises(ValueError):
            uniform_land_users(5, rng, [])

    def test_underserved_clusters(self, rng):
        pop = underserved_region_users(3, rng, ["op-a"])
        assert len(pop) == 3 * len(UNDERSERVED_REGIONS)
        kenya_users = [u for u in pop.users if "rural-kenya" in u.user_id]
        assert len(kenya_users) == 3
        for user in kenya_users:
            assert abs(user.location.latitude_deg - (-0.5)) < 15.0

    def test_population_weights_default_uniform(self, rng):
        pop = uniform_land_users(4, rng, ["op"])
        assert np.allclose(pop.normalized_weights(), 0.25)

    def test_weight_length_mismatch_rejected(self, rng):
        pop = uniform_land_users(4, rng, ["op"])
        with pytest.raises(ValueError, match="weights"):
            UserPopulation(users=pop.users, weights=[1.0])

    def test_negative_weight_rejected_at_construction(self, rng):
        # Regression: [-1.0, 3.0] used to pass the `total <= 0` check
        # and yield a negative "probability".
        pop = uniform_land_users(2, rng, ["op"])
        with pytest.raises(ValueError, match=">= 0"):
            UserPopulation(users=pop.users, weights=[-1.0, 3.0])

    def test_negative_weight_rejected_after_mutation(self, rng):
        pop = uniform_land_users(2, rng, ["op"])
        pop.weights = [-1.0, 3.0]
        with pytest.raises(ValueError, match=">= 0"):
            pop.normalized_weights()

    def test_all_zero_weights_rejected(self, rng):
        pop = uniform_land_users(2, rng, ["op"])
        pop.weights = [0.0, 0.0]
        with pytest.raises(ValueError, match="sum"):
            pop.normalized_weights()

    def test_underserved_longitude_stays_wrapped(self):
        # A huge spread forces jitter across the +-180 seam; every
        # longitude must come back wrapped into [-180, 180).
        rng = np.random.default_rng(3)
        pop = underserved_region_users(40, rng, ["op"], spread_deg=200.0)
        for user in pop.users:
            assert -180.0 <= user.location.longitude_deg < 180.0

    def test_underserved_pacific_straddles_antimeridian(self):
        # pacific-islands sits at lon 178; with moderate spread some
        # users land on each side of the seam.
        rng = np.random.default_rng(5)
        pop = underserved_region_users(60, rng, ["op"], spread_deg=6.0)
        pacific = [u.location.longitude_deg for u in pop.users
                   if "pacific-islands" in u.user_id]
        assert any(lon > 170.0 for lon in pacific)
        assert any(lon < -170.0 for lon in pacific)

    def test_underserved_latitude_clipped_near_poles(self):
        rng = np.random.default_rng(9)
        pop = underserved_region_users(50, rng, ["op"], spread_deg=60.0)
        for user in pop.users:
            assert -89.0 <= user.location.latitude_deg <= 89.0
        arctic = [u.location.latitude_deg for u in pop.users
                  if "arctic-canada" in u.user_id]
        assert max(arctic) == pytest.approx(89.0)

    def test_underserved_deterministic_per_seed(self):
        def locations(seed):
            pop = underserved_region_users(
                5, np.random.default_rng(seed), ["op-a", "op-b"])
            return [(u.user_id, u.location.latitude_deg,
                     u.location.longitude_deg, u.home_provider)
                    for u in pop.users]

        assert locations(42) == locations(42)
        assert locations(42) != locations(43)


class TestFlowGenerator:
    def _generator(self, rng, rate=5.0, **kwargs):
        pop = uniform_land_users(10, rng, ["op-a"])
        return PoissonFlowGenerator(pop, rate, rng, **kwargs)

    def test_flows_time_ordered_within_duration(self, rng):
        flows = self._generator(rng).generate(100.0)
        times = [f.start_s for f in flows]
        assert times == sorted(times)
        assert all(0.0 <= t < 100.0 for t in times)

    def test_arrival_rate_approximately_honoured(self, rng):
        flows = self._generator(rng, rate=5.0).generate(200.0)
        assert len(flows) == pytest.approx(1000, rel=0.2)

    def test_mean_size_approximately_honoured(self, rng):
        flows = self._generator(rng, rate=20.0, mean_flow_mb=10.0).generate(
            100.0
        )
        mean_mb = np.mean([f.size_bytes for f in flows]) / 1e6
        assert mean_mb == pytest.approx(10.0, rel=0.4)

    def test_qos_mix_respected(self, rng):
        flows = self._generator(rng, rate=20.0).generate(100.0)
        premium = sum(1 for f in flows if f.qos_class == "premium")
        assert 0.02 < premium / len(flows) < 0.25

    def test_bad_mix_rejected(self, rng):
        pop = uniform_land_users(2, rng, ["op"])
        with pytest.raises(ValueError, match="sum"):
            PoissonFlowGenerator(pop, 1.0, rng,
                                 qos_mix=[("best_effort", 0.5)])

    def test_validation(self, rng):
        gen = self._generator(rng)
        with pytest.raises(ValueError):
            gen.generate(0.0)
        pop = uniform_land_users(2, rng, ["op"])
        with pytest.raises(ValueError):
            PoissonFlowGenerator(pop, 0.0, rng)

    def test_flow_ids_unique(self, rng):
        flows = self._generator(rng).generate(50.0)
        assert len({f.flow_id for f in flows}) == len(flows)

    def test_size_gb_property(self, rng):
        flows = self._generator(rng).generate(20.0)
        assert flows[0].size_gb == pytest.approx(flows[0].size_bytes / 1e9)


class TestSummarize:
    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == 2.5
        assert stats.count == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])


class TestLatencyCollector:
    def test_records_and_reachability(self):
        collector = LatencyCollector()
        collector.record(0.030)
        collector.record(None)
        collector.record(0.050)
        assert collector.reachability == pytest.approx(2 / 3)
        assert collector.summary().mean == pytest.approx(0.040)
        assert collector.summary_ms().mean == pytest.approx(40.0)

    def test_empty_reachability_is_nan(self):
        # "nothing measured" must stay distinguishable from "all flows
        # unreachable" (which is a true 0.0).
        assert math.isnan(LatencyCollector().reachability)

    def test_all_unreachable_is_zero(self):
        collector = LatencyCollector()
        collector.record(None)
        assert collector.reachability == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyCollector().record(-0.1)


class TestSeriesCollector:
    def test_mean_series_sorted(self):
        series = SeriesCollector()
        series.add(10.0, 2.0)
        series.add(5.0, 1.0)
        series.add(10.0, 4.0)
        assert series.mean_series() == [(5.0, 1.0), (10.0, 3.0)]

    def test_table_rows(self):
        series = SeriesCollector()
        for y in (1.0, 2.0, 3.0):
            series.add(1.0, y)
        table = series.as_table()
        assert table[0]["x"] == 1.0
        assert table[0]["mean"] == 2.0
        assert table[0]["n"] == 3

    def test_row_raises_on_unknown_x(self):
        with pytest.raises(KeyError):
            SeriesCollector().row(1.0)
