"""Tests for the ISL topology builder."""

import networkx as nx
import numpy as np
import pytest

from repro.isl.topology import IslNode, IslTopologyBuilder
from repro.orbits.constants import EARTH_RADIUS_KM
from repro.phy.optical import OpticalTerminal
from repro.phy.rf import standard_sband_isl_terminal

R_ORBIT = EARTH_RADIUS_KM + 780.0


def ring_positions(count, radius=R_ORBIT):
    """Evenly spaced satellites on an equatorial ring."""
    angles = np.linspace(0.0, 2 * np.pi, count, endpoint=False)
    return {
        f"s{i}": radius * np.array([np.cos(a), np.sin(a), 0.0])
        for i, a in enumerate(angles)
    }


def rf_nodes(count, max_degree=2):
    return [
        IslNode(f"s{i}", [standard_sband_isl_terminal()], max_degree=max_degree)
        for i in range(count)
    ]


class TestBuilderValidation:
    def test_duplicate_ids_rejected(self):
        nodes = [IslNode("a", []), IslNode("a", [])]
        with pytest.raises(ValueError, match="duplicate"):
            IslTopologyBuilder(nodes)

    def test_missing_positions_rejected(self):
        builder = IslTopologyBuilder(rf_nodes(3))
        with pytest.raises(ValueError, match="positions missing"):
            builder.snapshot(0.0, {"s0": np.zeros(3)})

    def test_node_lookup(self):
        builder = IslTopologyBuilder(rf_nodes(2))
        assert builder.node("s1").node_id == "s1"
        with pytest.raises(KeyError):
            builder.node("ghost")


class TestSnapshot:
    def test_ring_forms_cycle(self):
        positions = ring_positions(12)
        builder = IslTopologyBuilder(rf_nodes(12, max_degree=2))
        snap = builder.snapshot(0.0, positions)
        # Each satellite links its two ring neighbours: a 12-cycle.
        assert snap.link_count == 12
        assert all(snap.degree_of(f"s{i}") == 2 for i in range(12))
        assert nx.is_connected(snap.graph)

    def test_degree_cap_respected(self):
        positions = ring_positions(12)
        builder = IslTopologyBuilder(rf_nodes(12, max_degree=1))
        snap = builder.snapshot(0.0, positions)
        assert all(snap.degree_of(f"s{i}") <= 1 for i in range(12))

    def test_range_limit_prunes_links(self):
        positions = ring_positions(4)  # neighbours ~10100 km apart
        builder = IslTopologyBuilder(rf_nodes(4), max_range_km=5000.0)
        snap = builder.snapshot(0.0, positions)
        assert snap.link_count == 0

    def test_earth_blockage_prunes_links(self):
        # Two antipodal satellites: within range math but occluded.
        positions = {
            "s0": np.array([R_ORBIT, 0.0, 0.0]),
            "s1": np.array([-R_ORBIT, 0.0, 0.0]),
        }
        builder = IslTopologyBuilder(rf_nodes(2), max_range_km=20000.0)
        snap = builder.snapshot(0.0, positions)
        assert snap.link_count == 0

    def test_edges_carry_link_attributes(self):
        positions = ring_positions(12)
        builder = IslTopologyBuilder(rf_nodes(12))
        snap = builder.snapshot(0.0, positions)
        for _u, _v, data in snap.graph.edges(data=True):
            assert data["capacity_bps"] > 0
            assert data["delay_s"] > 0
            assert data["link"].usable

    def test_link_between_lookup(self):
        positions = ring_positions(12)
        snap = IslTopologyBuilder(rf_nodes(12)).snapshot(0.0, positions)
        assert snap.link_between("s0", "s1") is not None
        assert snap.link_between("s0", "s6") is None

    def test_owner_attribute_propagates(self):
        nodes = rf_nodes(3, max_degree=4)
        for i, node in enumerate(nodes):
            node.owner = f"op{i}"
        snap = IslTopologyBuilder(nodes).snapshot(0.0, ring_positions(3))
        assert snap.graph.nodes["s1"]["owner"] == "op1"

    def test_optical_disabled_falls_back_to_rf(self):
        terminals = [standard_sband_isl_terminal(), OpticalTerminal()]
        nodes = [
            IslNode("s0", terminals, max_degree=2, allow_optical=False),
            IslNode("s1", terminals, max_degree=2, allow_optical=True),
        ]
        positions = {
            "s0": np.array([R_ORBIT, 0.0, 0.0]),
            "s1": np.array([R_ORBIT * np.cos(0.3), R_ORBIT * np.sin(0.3), 0.0]),
        }
        snap = IslTopologyBuilder(nodes).snapshot(0.0, positions)
        link = snap.link_between("s0", "s1")
        assert link is not None
        assert link.technology.is_rf

    def test_iridium_topology_connected(self, iridium):
        nodes = [
            IslNode(f"s{i}", [standard_sband_isl_terminal()], max_degree=4)
            for i in range(len(iridium))
        ]
        positions = {
            f"s{i}": p for i, p in enumerate(iridium.positions_at(0.0))
        }
        snap = IslTopologyBuilder(nodes).snapshot(0.0, positions)
        assert nx.is_connected(snap.graph)
        assert snap.link_count >= len(iridium)  # at least a ring's worth

    def test_snapshots_series(self, iridium):
        nodes = [
            IslNode(f"s{i}", [standard_sband_isl_terminal()], max_degree=3)
            for i in range(10)
        ]
        builder = IslTopologyBuilder(nodes)

        def positions_at(t):
            return {
                f"s{i}": p for i, p in enumerate(
                    iridium.subset(10).positions_at(t)
                )
            }

        snaps = builder.snapshots([0.0, 100.0, 200.0], positions_at)
        assert [s.time_s for s in snaps] == [0.0, 100.0, 200.0]

    def test_nearest_first_assignment(self):
        # With degree 1, the two closest of three collinear-ish satellites
        # pair up and the far one is left out.
        positions = {
            "s0": np.array([R_ORBIT, 0.0, 0.0]),
            "s1": R_ORBIT * np.array([np.cos(0.1), np.sin(0.1), 0.0]),
            "s2": R_ORBIT * np.array([np.cos(0.45), np.sin(0.45), 0.0]),
        }
        snap = IslTopologyBuilder(rf_nodes(3, max_degree=1)).snapshot(
            0.0, positions
        )
        assert snap.link_between("s0", "s1") is not None
        assert snap.degree_of("s2") == 0
