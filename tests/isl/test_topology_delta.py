"""Tests for spatial candidate pruning and topology snapshot deltas."""

import numpy as np
import pytest

from repro.isl.topology import (
    SPATIAL_AUTO_THRESHOLD,
    IslNode,
    IslTopologyBuilder,
    TopologyDelta,
)
from repro.orbits.walker import walker_delta
from repro.phy.rf import standard_sband_isl_terminal


def walker_fixture(count=120, planes=10):
    constellation = walker_delta(count, planes)
    nodes = [
        IslNode(f"w{i}", [standard_sband_isl_terminal()], max_degree=4)
        for i in range(count)
    ]
    ids = [node.node_id for node in nodes]

    def positions_at(t):
        return dict(zip(ids, constellation.positions_at(t)))

    return nodes, positions_at


def edge_payload(snapshot):
    """Every edge with its attribute reprs, canonically ordered."""
    return sorted(
        (min(u, v), max(u, v), repr(sorted(data.items())))
        for u, v, data in snapshot.graph.edges(data=True)
    )


class TestSpatialEquivalence:
    def test_spatial_and_dense_snapshots_identical(self):
        nodes, positions_at = walker_fixture()
        grid = IslTopologyBuilder(nodes, max_range_km=3000.0,
                                  spatial_index=True)
        dense = IslTopologyBuilder(nodes, max_range_km=3000.0,
                                   spatial_index=False)
        for t in (0.0, 1234.5, 4000.0):
            positions = positions_at(t)
            a = grid.snapshot(t, positions)
            b = dense.snapshot(t, positions)
            assert a.link_count > 0
            assert edge_payload(a) == edge_payload(b)

    def test_spatial_respects_exclusions(self):
        nodes, positions_at = walker_fixture()
        grid = IslTopologyBuilder(nodes, max_range_km=3000.0,
                                  spatial_index=True)
        dense = IslTopologyBuilder(nodes, max_range_km=3000.0,
                                   spatial_index=False)
        excluded = ["w0", "w13", "w77"]
        positions = positions_at(0.0)
        a = grid.snapshot(0.0, positions, exclude=excluded)
        b = dense.snapshot(0.0, positions, exclude=excluded)
        assert edge_payload(a) == edge_payload(b)
        assert all(name not in a.graph for name in excluded)

    def test_auto_threshold_picks_spatial_for_large_fleets(self):
        builder = IslTopologyBuilder(rf_nodes_small())
        assert not builder._use_spatial(SPATIAL_AUTO_THRESHOLD - 1)
        assert builder._use_spatial(SPATIAL_AUTO_THRESHOLD)
        forced = IslTopologyBuilder(rf_nodes_small(), spatial_index=True)
        assert forced._use_spatial(2)


def rf_nodes_small():
    return [
        IslNode(f"s{i}", [standard_sband_isl_terminal()]) for i in range(3)
    ]


class TestSnapshotDelta:
    def test_first_delta_is_full_rebuild(self):
        nodes, positions_at = walker_fixture(count=24, planes=4)
        builder = IslTopologyBuilder(nodes, max_range_km=3000.0)
        snap, delta = builder.snapshot_delta(0.0, positions_at(0.0))
        assert delta.full_rebuild
        assert delta.disappeared == ()
        assert delta.persisted == ()
        assert set(delta.appeared) == snap.edge_set()

    def test_delta_reconciles_edge_sets(self):
        nodes, positions_at = walker_fixture(count=60, planes=6)
        builder = IslTopologyBuilder(nodes, max_range_km=3000.0)
        prev, _ = builder.snapshot_delta(0.0, positions_at(0.0))
        snap, delta = builder.snapshot_delta(120.0, positions_at(120.0),
                                             previous=prev)
        assert not delta.full_rebuild
        appeared = set(delta.appeared)
        disappeared = set(delta.disappeared)
        persisted = set(delta.persisted)
        assert appeared.isdisjoint(disappeared)
        assert appeared.isdisjoint(persisted)
        assert disappeared.isdisjoint(persisted)
        assert prev.edge_set() == persisted | disappeared
        assert snap.edge_set() == persisted | appeared

    def test_delta_snapshot_matches_plain_snapshot(self):
        nodes, positions_at = walker_fixture(count=60, planes=6)
        builder = IslTopologyBuilder(nodes, max_range_km=3000.0)
        prev, _ = builder.snapshot_delta(0.0, positions_at(0.0))
        positions = positions_at(300.0)
        via_delta, _ = builder.snapshot_delta(300.0, positions,
                                              previous=prev)
        plain = builder.snapshot(300.0, positions)
        assert edge_payload(via_delta) == edge_payload(plain)

    def test_node_set_change_forces_full_rebuild(self):
        nodes, positions_at = walker_fixture(count=24, planes=4)
        builder = IslTopologyBuilder(nodes, max_range_km=3000.0)
        prev, _ = builder.snapshot_delta(0.0, positions_at(0.0))
        _, delta = builder.snapshot_delta(60.0, positions_at(60.0),
                                          previous=prev, exclude=["w0"])
        assert delta.full_rebuild

    def test_churn_fraction(self):
        delta = TopologyDelta(
            appeared=(("a", "b"),), disappeared=(("c", "d"), ("e", "f")),
            persisted=(("g", "h"),),
        )
        assert delta.changed_count == 3
        assert delta.churn_fraction == pytest.approx(0.75)
        empty = TopologyDelta(appeared=(), disappeared=(), persisted=())
        assert empty.churn_fraction == 0.0

    def test_edge_set_is_canonical(self):
        nodes, positions_at = walker_fixture(count=24, planes=4)
        builder = IslTopologyBuilder(nodes, max_range_km=3000.0)
        snap = builder.snapshot(0.0, positions_at(0.0))
        for a, b in snap.edge_set():
            assert a <= b


class TestLazyCandidateEarlyExit:
    def test_zero_degree_fleet_builds_no_edges(self):
        nodes = [
            IslNode(f"s{i}", [standard_sband_isl_terminal()], max_degree=0)
            for i in range(8)
        ]
        _, positions_at = walker_fixture(count=8, planes=2)
        positions = {
            f"s{i}": pos
            for i, pos in enumerate(positions_at(0.0).values())
        }
        builder = IslTopologyBuilder(nodes, max_range_km=1e6)
        snap = builder.snapshot(0.0, positions)
        assert snap.link_count == 0
        assert snap.graph.number_of_nodes() == 8
