"""Tests for power budgets and slew models."""

import pytest

from repro.isl.power import (
    PowerBudget,
    SlewModel,
    largesat_power_budget,
    midsat_power_budget,
    smallsat_power_budget,
)


class TestPowerBudget:
    def test_charge_defaults_to_full(self):
        budget = PowerBudget(battery_capacity_wh=100.0, solar_generation_w=50.0)
        assert budget.charge_wh == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerBudget(battery_capacity_wh=0.0, solar_generation_w=50.0)
        with pytest.raises(ValueError):
            PowerBudget(battery_capacity_wh=10.0, solar_generation_w=5.0,
                        max_concurrent_isls=-1)

    def test_concurrency_ceiling(self):
        budget = PowerBudget(battery_capacity_wh=1000.0,
                             solar_generation_w=1000.0,
                             max_concurrent_isls=2)
        budget.activate_isl("l1", 10.0)
        budget.activate_isl("l2", 10.0)
        assert not budget.can_activate_isl(10.0)
        with pytest.raises(RuntimeError, match="power budget exhausted"):
            budget.activate_isl("l3", 10.0)

    def test_power_ceiling(self):
        budget = PowerBudget(battery_capacity_wh=50.0, solar_generation_w=60.0,
                             bus_load_w=20.0, max_concurrent_isls=8)
        # Sustainable = 60 + 0.2*50 = 70 W; bus 20 leaves 50 W.
        assert budget.can_activate_isl(50.0)
        assert not budget.can_activate_isl(51.0)

    def test_activate_idempotent(self):
        budget = smallsat_power_budget()
        budget.activate_isl("l1", 10.0)
        budget.activate_isl("l1", 10.0)
        assert budget.active_isl_count == 1

    def test_deactivate_unknown_is_noop(self):
        budget = smallsat_power_budget()
        budget.deactivate_isl("ghost")
        assert budget.active_isl_count == 0

    def test_step_discharges_under_load(self):
        budget = PowerBudget(battery_capacity_wh=100.0,
                             solar_generation_w=10.0, bus_load_w=20.0)
        budget.step(3600.0)
        assert budget.charge_wh == pytest.approx(90.0)

    def test_step_charges_in_surplus_and_caps(self):
        budget = PowerBudget(battery_capacity_wh=100.0,
                             solar_generation_w=100.0, bus_load_w=10.0,
                             charge_wh=95.0)
        budget.step(3600.0)
        assert budget.charge_wh == 100.0

    def test_depleted_flag(self):
        budget = PowerBudget(battery_capacity_wh=10.0, solar_generation_w=0.0,
                             bus_load_w=20.0, charge_wh=1.0)
        budget.step(3600.0)
        assert budget.depleted

    def test_step_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            smallsat_power_budget().step(-1.0)

    def test_class_presets_ordered(self):
        small = smallsat_power_budget()
        mid = midsat_power_budget()
        large = largesat_power_budget()
        assert (small.solar_generation_w < mid.solar_generation_w
                < large.solar_generation_w)
        assert small.max_concurrent_isls <= mid.max_concurrent_isls


class TestSlewModel:
    def test_zero_angle_zero_time(self):
        assert SlewModel().slew_time_s(0.0) == 0.0

    def test_time_grows_with_angle(self):
        model = SlewModel()
        assert model.slew_time_s(90.0) > model.slew_time_s(10.0)

    def test_small_angle_triangular_profile(self):
        model = SlewModel(max_rate_deg_s=10.0, acceleration_deg_s2=1.0)
        # Below the ramp angle (100 deg) the profile never cruises:
        # t = 2 sqrt(angle / accel).
        assert model.slew_time_s(25.0) == pytest.approx(10.0)

    def test_large_angle_includes_cruise(self):
        model = SlewModel(max_rate_deg_s=1.0, acceleration_deg_s2=0.1)
        # Ramp angle = 10 deg; 70 deg cruises for 60 s after a 20 s ramp.
        assert model.slew_time_s(70.0) == pytest.approx(80.0)

    def test_energy_proportional_to_time(self):
        model = SlewModel(power_w=36.0)
        t = model.slew_time_s(45.0)
        assert model.slew_energy_wh(45.0) == pytest.approx(36.0 * t / 3600.0)

    def test_rejects_negative_angle(self):
        with pytest.raises(ValueError):
            SlewModel().slew_time_s(-5.0)
