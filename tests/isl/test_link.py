"""Tests for the ISL link abstraction."""

import pytest

from repro.isl.link import (
    IslLink,
    LinkTechnology,
    best_link_between,
    candidate_links,
    technology_of,
)
from repro.phy.optical import OpticalTerminal
from repro.phy.rf import (
    standard_ku_space_terminal,
    standard_sband_isl_terminal,
    standard_uhf_isl_terminal,
)


class TestTechnologyClassification:
    def test_rf_bands(self):
        assert technology_of(standard_uhf_isl_terminal()) is LinkTechnology.RF_UHF
        assert technology_of(
            standard_sband_isl_terminal()
        ) is LinkTechnology.RF_SBAND

    def test_optical(self):
        assert technology_of(OpticalTerminal()) is LinkTechnology.OPTICAL

    def test_ground_band_is_not_isl(self):
        assert technology_of(standard_ku_space_terminal()) is None

    def test_is_rf_flags(self):
        assert LinkTechnology.RF_UHF.is_rf
        assert LinkTechnology.RF_SBAND.is_rf
        assert not LinkTechnology.OPTICAL.is_rf


class TestCandidateLinks:
    def test_only_common_technologies(self):
        a = [standard_uhf_isl_terminal(), standard_sband_isl_terminal()]
        b = [standard_sband_isl_terminal()]
        links = list(candidate_links("x", a, "y", b, 1000.0))
        assert {l.technology for l in links} == {LinkTechnology.RF_SBAND}

    def test_no_common_technology(self):
        a = [standard_uhf_isl_terminal()]
        b = [OpticalTerminal()]
        assert list(candidate_links("x", a, "y", b, 1000.0)) == []

    def test_all_three_when_fully_equipped(self):
        terms = [
            standard_uhf_isl_terminal(),
            standard_sband_isl_terminal(),
            OpticalTerminal(),
        ]
        links = list(candidate_links("x", terms, "y", terms, 1000.0))
        assert len(links) == 3


class TestBestLink:
    FULL = [
        standard_uhf_isl_terminal(),
        standard_sband_isl_terminal(),
        OpticalTerminal(),
    ]
    RF_ONLY = [standard_uhf_isl_terminal(), standard_sband_isl_terminal()]

    def test_optical_wins_when_available(self):
        link = best_link_between("a", self.FULL, "b", self.FULL, 2000.0)
        assert link.technology is LinkTechnology.OPTICAL

    def test_falls_back_to_rf(self):
        link = best_link_between("a", self.FULL, "b", self.RF_ONLY, 2000.0)
        assert link.technology.is_rf

    def test_prefer_optical_false_skips_laser(self):
        link = best_link_between("a", self.FULL, "b", self.FULL, 2000.0,
                                 prefer_optical=False)
        assert link.technology.is_rf

    def test_sband_beats_uhf(self):
        link = best_link_between("a", self.RF_ONLY, "b", self.RF_ONLY, 2000.0)
        assert link.technology is LinkTechnology.RF_SBAND

    def test_none_when_too_far(self):
        link = best_link_between("a", self.RF_ONLY, "b", self.RF_ONLY, 50000.0)
        assert link is None

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            best_link_between("a", self.FULL, "b", self.FULL, 0.0)


class TestIslLinkProperties:
    def _link(self, distance_km=3000.0):
        t = standard_sband_isl_terminal()
        return best_link_between("a", [t], "b", [t], distance_km)

    def test_propagation_delay(self):
        link = self._link(2997.92458)
        assert link.propagation_delay_s == pytest.approx(0.01)

    def test_usable_flag(self):
        assert self._link().usable

    def test_serialization_delay(self):
        link = self._link()
        expected = 12_000.0 / link.capacity_bps
        assert link.serialization_delay_s() == pytest.approx(expected)

    def test_serialization_infinite_when_dead(self):
        dead = IslLink("a", "b", LinkTechnology.RF_UHF, 1.0,
                       self._link().budget, 0.0)
        assert dead.serialization_delay_s() == float("inf")
