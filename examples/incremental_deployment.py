#!/usr/bin/env python3
"""Charting the incremental-deployment pathway (paper Section 4).

"Our objective is to understand how small initial deployments can be
across a small number of initial players to achieve a starting point from
which the system can scale, much like in the early days of the Internet."

For a growing fleet this example reports, at each deployment stage:

* union coverage and instantaneous user->gateway reachability;
* store-and-forward deliverability (bundles riding satellites between
  contacts) and its delivery delay — the service a minimal deployment can
  actually sell (messaging/IoT) before real-time Internet is feasible;
* cumulative fleet capex.

Run:
    python examples/incremental_deployment.py
"""

import math

import numpy as np

from repro.core.interop import SizeClass, build_fleet
from repro.economics.capex import constellation_budget
from repro.isl.topology import IslNode, IslTopologyBuilder
from repro.orbits.coordinates import GeodeticPoint, ecef_to_eci
from repro.orbits.visibility import coverage_fraction, elevation_angle
from repro.orbits.walker import random_constellation
from repro.phy.rf import standard_sband_isl_terminal
from repro.routing.timeexpanded import TimeExpandedRouter

USER = GeodeticPoint(-1.29, 36.82)       # Nairobi
GATEWAY = GeodeticPoint(50.11, 8.68)     # Frankfurt
STAGES = (4, 8, 16, 28, 44, 66)
PLAN_HORIZON_S = 3600.0
EPOCH_S = 120.0


def build_plan(constellation):
    """Snapshots with user/gateway access edges over one hour."""
    count = len(constellation)
    nodes = [
        IslNode(f"s{i}", [standard_sband_isl_terminal()], max_degree=4)
        for i in range(count)
    ]
    builder = IslTopologyBuilder(nodes)
    snapshots = []
    mask = math.radians(5.0)
    for time_s in np.arange(0.0, PLAN_HORIZON_S, EPOCH_S):
        positions = {
            f"s{i}": p
            for i, p in enumerate(constellation.positions_at(float(time_s)))
        }
        snap = builder.snapshot(float(time_s), positions)
        snap.graph.add_node("user")
        snap.graph.add_node("gateway")
        user_eci = ecef_to_eci(USER.ecef(), float(time_s))
        gateway_eci = ecef_to_eci(GATEWAY.ecef(), float(time_s))
        for i in range(count):
            pos = positions[f"s{i}"]
            if elevation_angle(user_eci, pos) >= mask:
                snap.graph.add_edge("user", f"s{i}", delay_s=0.005)
            if elevation_angle(gateway_eci, pos) >= mask:
                snap.graph.add_edge("gateway", f"s{i}", delay_s=0.005)
        snapshots.append(snap)
    return snapshots


def main():
    rng = np.random.default_rng(5)
    print(f"{'stage':>6} | {'coverage':>8} | {'realtime':>8} | "
          f"{'bundles':>8} | {'delay min':>9} | {'capex $M':>9}")
    print("-" * 64)
    for stage in STAGES:
        constellation = random_constellation(stage, rng)
        coverage = coverage_fraction(constellation.positions_at(0.0), 780.0)
        snapshots = build_plan(constellation)
        router = TimeExpandedRouter(snapshots)
        route = router.earliest_arrival("user", "gateway", 0.0)
        realtime = route is not None and route.epochs_waited == 0
        bundles = route is not None
        delay_min = route.delivery_delay_s / 60.0 if route else float("nan")
        fleet = build_fleet(constellation, "startup", SizeClass.SMALL)
        capex = constellation_budget(fleet).total_usd / 1e6
        print(f"{stage:>6} | {coverage:>8.2f} | "
              f"{'yes' if realtime else 'no':>8} | "
              f"{'yes' if bundles else 'no':>8} | "
              f"{delay_min:>9.1f} | {capex:>9.0f}")

    print(
        "\nReading: a handful of satellites already sells a delay-tolerant"
        "\nservice (bundles delivered within the hour); real-time Internet"
        "\nemerges only near full-constellation scale — the paper's"
        "\nall-or-nothing barrier, and the reason early players need the"
        "\nfederated on-ramp OpenSpace proposes."
    )


if __name__ == "__main__":
    main()
