#!/usr/bin/env python3
"""A subscriber's session trace: latency, handovers, availability.

Replays 45 minutes of a Nairobi subscriber's session against the live
three-operator federation, under both handover schemes, and prints the
QoE dashboard a provider would show: per-epoch serving satellite and
latency, handover markers, and summary statistics.

Run:
    python examples/session_qoe.py
"""

from repro.core.handover import HandoverScheme
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like
from repro.simulation.sessionsim import SessionSimulator

DURATION_S = 2700.0
EPOCH_S = 90.0


def main():
    constellation = iridium_like()
    fleet = []
    for index, spec in enumerate(
        build_fleet(constellation, "placeholder", SizeClass.MEDIUM)
    ):
        # Re-own round-robin across three operators.
        owner = ("alpha", "beta", "gamma")[index % 3]
        spec.owner = owner
        spec.satellite_id = f"sat-{owner}-{index}"
        fleet.append(spec)
    network = OpenSpaceNetwork(fleet, default_station_network())

    user = UserTerminal("subscriber", GeodeticPoint(-1.29, 36.82),
                        "beta", min_elevation_deg=10.0)
    simulator = SessionSimulator(network)
    trace = simulator.run(user, 0.0, DURATION_S, epoch_s=EPOCH_S)

    print(f"{'t (min)':>8} | {'serving satellite':>18} | "
          f"{'gateway':>14} | {'ms':>6} | {'Mbps':>7} | note")
    print("-" * 72)
    for sample in trace.samples:
        if sample.serving_satellite is None:
            print(f"{sample.time_s / 60:>8.1f} | {'-- no coverage --':>18} |"
                  f" {'':>14} | {'':>6} | {'':>7} |")
            continue
        note = "HANDOVER" if sample.handover else ""
        print(f"{sample.time_s / 60:>8.1f} | {sample.serving_satellite:>18} |"
              f" {sample.gateway:>14} | {sample.latency_ms:>6.1f} |"
              f" {sample.bottleneck_mbps:>7.0f} | {note}")

    stats = trace.latency_stats_ms()
    print(f"\nSession summary ({trace.scheme.value} handover):")
    print(f"  availability {trace.availability:.4f}, "
          f"{trace.handover_count} handovers, "
          f"outage {trace.total_outage_s:.2f} s")
    print(f"  latency mean {stats['mean']:.1f} ms, p50 {stats['p50']:.1f}, "
          f"p95 {stats['p95']:.1f}")

    reauth = simulator.run(user, 0.0, DURATION_S, epoch_s=EPOCH_S,
                           scheme=HandoverScheme.REAUTHENTICATE)
    print(f"\nSame session re-authenticating on every handover: outage "
          f"{reauth.total_outage_s:.2f} s "
          f"({reauth.total_outage_s / max(1e-9, trace.total_outage_s):.1f}x "
          "the predictive scheme)")


if __name__ == "__main__":
    main()
