#!/usr/bin/env python3
"""Regenerate every figure in the paper's evaluation (Figure 2 a/b/c).

Prints the same series the paper plots.  `pytest benchmarks/
--benchmark-only` runs the identical drivers with shape assertions; this
script is the human-readable version.

Run:
    python examples/reproduce_figure2.py [--fast]
"""

import argparse

from repro.experiments.figure2 import (
    figure_2a_constellation,
    figure_2b_latency,
    figure_2c_coverage,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="fewer trials/points for a quick look")
    args = parser.parse_args()
    trials = 2 if args.fast else 5
    counts_2b = [4, 10, 16, 25, 40, 70] if args.fast else [
        4, 7, 10, 13, 16, 19, 22, 25, 30, 40, 55, 70,
    ]
    counts_2c = [1, 4, 12, 25, 50, 80] if args.fast else [
        1, 2, 4, 8, 12, 16, 20, 25, 30, 40, 50, 60, 70, 80,
    ]

    print("=== Figure 2(a): the OpenSpace reference constellation ===")
    report = figure_2a_constellation()
    print(f"{report.name}: {report.satellite_count} satellites in "
          f"{report.plane_count} planes at {report.altitude_km:.0f} km, "
          f"{report.inclination_deg:.1f} deg inclination")
    print(f"  ISLs established: {report.isl_count} "
          f"(mean {report.mean_isl_distance_km:.0f} km, max "
          f"{report.max_isl_distance_km:.0f} km), connected: "
          f"{report.connected}")
    print(f"  coverage: union {report.coverage_union:.1%}, "
          f"paper's worst-case rule {report.coverage_worst_case:.1%}")

    print("\n=== Figure 2(b): propagation latency vs constellation size ===")
    result = figure_2b_latency(satellite_counts=counts_2b, trials=trials,
                               epochs=8)
    print(f"{'satellites':>10} | {'reach':>6} | {'mean ms':>8} | {'p95 ms':>8}")
    print("-" * 42)
    series = {row["x"]: row for row in result["series"]}
    for count in counts_2b:
        row = series.get(count)
        reach = result["reachability"][count]
        if row:
            print(f"{count:>10} | {reach:>6.2f} | {row['mean']:>8.1f} | "
                  f"{row['p95']:>8.1f}")
        else:
            print(f"{count:>10} | {reach:>6.2f} | {'--':>8} | {'--':>8}")
    print("(paper: sharp drop to ~25 satellites, then a ~30 ms plateau; "
          "~4 satellites are the bare minimum)")

    print("\n=== Figure 2(c): coverage vs constellation size ===")
    rows = figure_2c_coverage(satellite_counts=counts_2c, trials=trials)
    print(f"{'satellites':>10} | {'union':>6} | {'worst-case':>10} | "
          f"{'cluster':>8}")
    print("-" * 44)
    for row in rows:
        print(f"{row['satellites']:>10.0f} | {row['union']:>6.2f} | "
              f"{row['worst_case']:>10.2f} | {row['cluster']:>8.2f}")
    print("(paper: total earth coverage by about 50 satellites; extras buy "
          "redundancy)")


if __name__ == "__main__":
    main()
