#!/usr/bin/env python3
"""The economics of collaboration (paper Sections 3 and 4).

Three small firms that individually cannot afford a global constellation
pool their fleets.  The example:

1. prices a go-it-alone constellation vs a one-third share of the shared
   fleet (the entry-barrier argument);
2. runs a day of synthetic traffic through the federated network, filing
   every transfer in the cross-verifiable ledger — including a fraudulent
   operator that over-reports carried volume;
3. settles the ledger, shows the fraud being caught, and lets the peering
   advisor find the symmetric pair that should peer.

Run:
    python examples/federation_economics.py
"""

import numpy as np

from repro.core.interop import SizeClass, build_fleet
from repro.economics.capex import constellation_budget, entry_cost_comparison
from repro.economics.ledger import TrafficLedger
from repro.economics.peering import PeeringAdvisor
from repro.economics.settlement import RateCard, SettlementEngine
from repro.ground.station import default_station_network
from repro.orbits.walker import iridium_like
from repro.simulation.scenario import Scenario
from repro.simulation.traffic import uniform_land_users

OPERATORS = ("nimbus", "aurora", "zephyr")


def entry_barrier():
    constellation = iridium_like()
    full_fleet = build_fleet(constellation, "solo", SizeClass.MEDIUM)
    comparison = entry_cost_comparison(full_fleet, full_fleet,
                                       participant_count=len(OPERATORS))
    budget = constellation_budget(full_fleet)
    print("=== Entry barrier (paper Section 3) ===")
    print(f"Global 66-satellite fleet: ${budget.total_usd / 1e6:.0f}M "
          f"(hardware ${budget.hardware_usd / 1e6:.0f}M, launch "
          f"${budget.launch_usd / 1e6:.0f}M, licensing "
          f"${budget.licensing_usd / 1e6:.2f}M)")
    print(f"Going alone:              ${comparison['solo_usd'] / 1e6:.0f}M")
    print(f"One third of a shared fleet: "
          f"${comparison['per_participant_usd'] / 1e6:.0f}M "
          f"({comparison['savings_factor']:.1f}x lower barrier)\n")


def traffic_day():
    scenario = Scenario(
        name="economics", satellite_count=66, operator_names=OPERATORS,
        seed=11,
    )
    network = scenario.build_network()
    rng = np.random.default_rng(11)
    population = uniform_land_users(30, rng, list(OPERATORS))

    ledger = TrafficLedger()
    fraud_injected = 0
    transfer_index = 0
    for time_s in (0.0, 1500.0, 3000.0, 4500.0):
        snapshot = network.snapshot(time_s, users=population.users)
        for user in population.users:
            metrics = snapshot.nearest_ground_station_route(user.user_id)
            if metrics is None:
                continue
            gigabytes = float(rng.uniform(0.2, 2.0))
            misreport = None
            # zephyr pads its carried-volume reports 30% of the time.
            if "zephyr" in metrics.operators and (
                    user.home_provider != "zephyr" and rng.random() < 0.3):
                misreport = {"zephyr": gigabytes * 1.4}
                fraud_injected += 1
            ledger.file_path_transfer(
                f"t{transfer_index}", user.home_provider, metrics.operators,
                gigabytes, time_s, misreport,
            )
            transfer_index += 1

    print("=== A day of federated traffic ===")
    print(f"{transfer_index} transfers filed, "
          f"{ledger.record_count} ledger records")
    mismatches = ledger.cross_verify()
    print(f"Fraud: {fraud_injected} padded reports injected, "
          f"{len(mismatches)} caught by cross-verification")
    for mismatch in mismatches[:3]:
        reported = ", ".join(f"{r}={v:.2f}GB" for r, v in mismatch.reported)
        print(f"  disputed {mismatch.transfer_id}/{mismatch.carrier_isp}: "
              f"{reported}")

    engine = SettlementEngine(rate_cards={
        name: RateCard(carrier=name) for name in OPERATORS
    })
    invoices = engine.invoices_from_ledger(ledger)
    positions = engine.net_positions(invoices)
    print("\nNet settlement positions (disputed segments excluded):")
    for name in sorted(positions):
        print(f"  {name:>8}: ${positions[name]:+.2f}")

    print("\nPeering analysis:")
    advisor = PeeringAdvisor(min_mutual_gb=5.0, min_symmetry=0.4)
    for rec in advisor.recommendations(ledger):
        verdict = "PEER" if rec.recommended else "transit"
        print(f"  {rec.isp_a} <-> {rec.isp_b}: {verdict} — {rec.rationale}")


def main():
    entry_barrier()
    traffic_day()


if __name__ == "__main__":
    main()
