#!/usr/bin/env python3
"""Failure injection and recovery (paper Section 4, Figure 2(c) caption).

Builds the 66-satellite reference constellation, then stresses it three
ways in simulated time through the discrete-event engine:

1. independent per-satellite MTBF/MTTR failures — how much churn does the
   redundancy margin absorb before users notice?
2. a correlated whole-plane loss (launch-dispenser failure mode) — the
   worst case a Walker constellation is shaped to resist;
3. the handover view: masking a failed satellite out of a user's contact
   schedule and re-running handover selection on the survivors.

Run:
    python examples/failure_recovery.py
"""

from repro.core.handover import (
    HandoverScheme,
    HandoverSimulator,
    mask_contact_windows,
)
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.experiments.resilience_dynamic import run_fault_scenario
from repro.faults.model import FaultSchedule
from repro.faults.schedule import (
    plane_loss_event,
    plane_members,
    satellite_mtbf_schedule,
)
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.contact import contact_windows
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like

HORIZON_S = 3600.0  # one hour of simulated churn
SEED = 43


def print_summary(result):
    print(f"  faults: {result['faults_injected']} injected, "
          f"{result['faults_absorbed']} absorbed with no user impact")
    print(f"  flows:  {result['flows_rerouted']} rerouted, "
          f"{result['flows_dropped']} dropped, "
          f"{result['flows_unrecovered']} never recovered")
    print(f"  availability: {result['mean_availability']:.4f}, "
          f"mean time-to-reroute {result['mean_time_to_reroute_s']:.1f} s")


def main():
    stations = default_station_network()
    fleet = build_fleet(iridium_like(), "openspace", SizeClass.MEDIUM)
    network = OpenSpaceNetwork(fleet, stations)
    users = [
        UserTerminal("u-nairobi", GeodeticPoint(-1.29, 36.82), "openspace",
                     min_elevation_deg=10.0),
        UserTerminal("u-reykjavik", GeodeticPoint(64.15, -21.94), "openspace",
                     min_elevation_deg=10.0),
    ]
    satellite_ids = [spec.satellite_id for spec in fleet]

    # 1. Random churn: every satellite fails with MTBF 3 h, repairs in
    #    ~15 min.  The 66-satellite fleet carries enough redundancy that
    #    most failures are absorbed silently.
    print(f"[1] random churn: MTBF 3 h, MTTR 15 min, "
          f"{HORIZON_S / 3600:.0f} h horizon")
    churn = satellite_mtbf_schedule(satellite_ids, HORIZON_S,
                                    mtbf_s=3 * 3600.0, mttr_s=900.0,
                                    seed=SEED)
    result = run_fault_scenario(network, churn, users,
                                horizon_s=HORIZON_S, epochs=8)
    print_summary(result)

    # 2. Correlated loss: one whole orbital plane (11 satellites) gone for
    #    30 minutes.  Correlated failures hit harder than the same number
    #    of independent ones — this is what constellations are shaped
    #    against.
    planes = plane_members(fleet)
    print(f"\n[2] plane loss: {len(planes)} planes of "
          f"{len(next(iter(planes.values())))}; plane 0 down 30 min")
    plane_schedule = FaultSchedule(
        events=[plane_loss_event(fleet, 0, start_s=600.0,
                                 duration_s=1800.0)],
        horizon_s=HORIZON_S,
    )
    result = run_fault_scenario(network, plane_schedule, users,
                                horizon_s=HORIZON_S, epochs=8)
    print_summary(result)

    # 3. The handover view: knock out the satellite actually serving a
    #    Nairobi user mid-pass, mask it out of the contact schedule, and
    #    re-run handover selection on the survivors.
    print("\n[3] handover re-selection on the masked contact schedule")
    site = GeodeticPoint(-1.29, 36.82, 0.0)
    constellation = iridium_like()
    windows = contact_windows(site, constellation.propagators(), 0.0,
                              HORIZON_S, step_s=15.0,
                              min_elevation_deg=10.0)
    longest = max(windows, key=lambda w: w.end_s - w.start_s)
    midpoint = (longest.start_s + longest.end_s) / 2.0
    outages = [(longest.satellite_index, midpoint, HORIZON_S)]
    masked = mask_contact_windows(windows, outages)
    simulator = HandoverSimulator()
    before = simulator.run(windows, HandoverScheme.PREDICTIVE, 0.0,
                           HORIZON_S)
    after = simulator.run(masked, HandoverScheme.PREDICTIVE, 0.0,
                          HORIZON_S)
    print(f"  satellite {longest.satellite_index} fails at "
          f"t={midpoint:.0f} s, mid-pass")
    print(f"  handovers: {before.handover_count} -> "
          f"{after.handover_count}")
    print(f"  coverage gap: {before.coverage_gap_s:.0f} s -> "
          f"{after.coverage_gap_s:.0f} s of "
          f"{HORIZON_S:.0f} s")
    print("\nThe redundancy margin absorbs most independent failures "
          "silently; correlated and mid-pass losses are the ones users "
          "feel, and recovery is a reroute, not a truck roll.")


if __name__ == "__main__":
    main()
