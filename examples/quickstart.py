#!/usr/bin/env python3
"""Quickstart: build an OpenSpace network and route a user to the Internet.

Builds the paper's Iridium-like reference constellation, splits it across
three operators, attaches the shared ground-station network, and walks one
user through the full OpenSpace lifecycle: beacon selection, association
with RADIUS authentication over ISLs, end-to-end routing, and a look at
what each hop would cost.

Run:
    python examples/quickstart.py
"""

from repro.core.association import AssociationProtocol
from repro.core.beacon import Beacon, BeaconEvaluator
from repro.core.federation import Federation, Operator
from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.economics.ledger import TrafficLedger
from repro.economics.settlement import SettlementEngine
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like
from repro.security.auth import RadiusServer


def build_federation():
    """Three operators, each owning a third of the reference fleet."""
    constellation = iridium_like()
    stations = default_station_network()
    federation = Federation()
    for index, name in enumerate(("alpha-sat", "beta-orbital", "gamma-link")):
        fleet = [
            spec for i, spec in enumerate(
                build_fleet(constellation, name, SizeClass.MEDIUM)
            ) if i % 3 == index
        ]
        federation.admit(Operator(
            name,
            satellites=fleet,
            ground_stations=stations[index * 5:(index + 1) * 5],
        ))
    return federation


def main():
    federation = build_federation()
    print(f"Federation: {federation.member_names}, "
          f"{federation.total_satellite_count} satellites, "
          f"{len(federation.all_ground_stations())} ground stations")

    network = OpenSpaceNetwork.from_federation(federation)

    # A user in rural Kenya subscribed to beta-orbital.
    user = UserTerminal("wanjiru", GeodeticPoint(-1.29, 36.82),
                        home_provider="beta-orbital", min_elevation_deg=10.0)

    # The home ISP runs a RADIUS server anchored at one of its gateways.
    beta = federation.operator("beta-orbital")
    server = RadiusServer("beta-orbital", b"beta-secret",
                          authority=beta.authority)
    server.enroll("wanjiru", b"correct-horse")
    protocol = AssociationProtocol(
        radius_servers={"beta-orbital": server},
        auth_anchors={"beta-orbital": beta.ground_stations[0].station_id},
    )

    # The user hears beacons from every overhead satellite.
    evaluator = BeaconEvaluator(min_elevation_deg=10.0)
    for spec in network.satellites:
        evaluator.receive(Beacon.from_spec(spec, timestamp_s=0.0))

    snapshot = network.snapshot(0.0, users=[user])
    result = protocol.associate(user, snapshot.graph, evaluator, 0.0,
                                b"correct-horse")
    print(f"\nAssociation: serving satellite {result.satellite_id}, "
          f"authenticated={result.authenticated}, "
          f"auth RTT {result.auth_round_trip_s * 1000:.1f} ms over "
          f"{result.auth_path_hops} ISL hops")

    # End-to-end route to the nearest Internet gateway.
    metrics = snapshot.nearest_ground_station_route(user.user_id)
    print(f"\nRoute to Internet: {' -> '.join(metrics.path)}")
    print(f"  one-way latency {metrics.total_delay_ms:.1f} ms, "
          f"bottleneck {metrics.bottleneck_capacity_bps / 1e6:.0f} Mbps, "
          f"operators {metrics.operators}")

    # What the path costs: file the transfer in the shared ledger and
    # settle it against every carrier's rate card.
    ledger = TrafficLedger()
    ledger.file_path_transfer("demo-transfer", user.home_provider,
                              metrics.operators, gigabytes=1.0, time_s=0.0)
    invoices = SettlementEngine().invoices_from_ledger(ledger)
    print("\nSettlement for 1 GB:")
    for invoice in invoices:
        print(f"  {invoice.customer} pays {invoice.carrier} "
              f"${invoice.amount_usd:.3f}")
    if not invoices:
        print("  (entire path stayed on the home provider's infrastructure)")


if __name__ == "__main__":
    main()
