#!/usr/bin/env python3
"""Regulation and data sovereignty (paper Discussion, Q3).

"The ability to use satellites located in some regions as relays for user
traffic can also be impeded by diverse user data privacy regulations ...
how to maintain a user's data privacy requirements when their traffic is
routed to a groundstation outside their region."

This example routes users from several regions with and without their
region's data-residency constraint and reports the latency cost of
compliance — the concrete trade regulators and operators would negotiate.

Run:
    python examples/data_sovereignty.py
"""

import networkx as nx

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.core.policy import PolicyRegistry, apply_policy_to_graph
from repro.ground.station import default_station_network
from repro.ground.user import UserTerminal
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like
from repro.routing.metrics import path_metrics

USERS = [
    ("paris", GeodeticPoint(48.86, 2.35)),
    ("warsaw", GeodeticPoint(52.23, 21.01)),
    ("dublin", GeodeticPoint(53.35, -6.26)),
    ("nairobi", GeodeticPoint(-1.29, 36.82)),
    ("mumbai", GeodeticPoint(19.08, 72.88)),
]


def main():
    fleet = build_fleet(iridium_like(), "openspace", SizeClass.MEDIUM)
    stations = default_station_network()
    network = OpenSpaceNetwork(fleet, stations)
    registry = PolicyRegistry()

    print(f"{'user':>8} | {'region':>14} | {'resid.':>6} | "
          f"{'free ms':>8} | {'compliant ms':>12} | {'exit gateway':>14}")
    print("-" * 78)
    for name, location in USERS:
        user = UserTerminal(name, location, "openspace",
                            min_elevation_deg=10.0)
        region = registry.region_of(location)
        snap = network.snapshot(0.0, users=[user])
        free = snap.nearest_ground_station_route(name)
        allowed = registry.compliant_gateways(location, stations)
        view = apply_policy_to_graph(snap.graph, name, allowed)
        compliant = None
        for gateway in sorted(allowed):
            if gateway not in view:
                continue
            try:
                path = nx.dijkstra_path(view, name, gateway,
                                        weight="delay_s")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            metrics = path_metrics(snap.graph, path)
            if compliant is None or (metrics.total_delay_s
                                     < compliant.total_delay_s):
                compliant = metrics
        print(f"{name:>8} | {region.name if region else 'open-seas':>14} | "
              f"{'yes' if region and region.data_residency else 'no':>6} | "
              f"{free.total_delay_ms if free else float('nan'):>8.1f} | "
              f"{compliant.total_delay_ms if compliant else float('nan'):>12.1f} | "
              f"{compliant.path[-1] if compliant else '--':>14}")

    print(
        "\nEU users (data_residency=True in the default policy table) must"
        "\nexit through EU gateways; everyone else may use the nearest one."
        "\nThe 'compliant ms' column is the price of sovereignty — zero when"
        "\nthe nearest gateway already sits in-region."
    )


if __name__ == "__main__":
    main()
