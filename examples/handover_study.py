#!/usr/bin/env python3
"""Satellite handover study (paper Section 2.2).

Computes the real contact schedule an equatorial user sees from the
Iridium-like constellation, then replays it under the two handover
schemes: OpenSpace's predictive successor handover (certificate presented,
no re-authentication) and the naive baseline that re-runs association and
RADIUS authentication on every switch.  Finishes with the Starlink-cadence
extrapolation (handover every 15 s).

Run:
    python examples/handover_study.py
"""

from repro.core.handover import (
    HandoverScheme,
    HandoverSimulator,
    STARLINK_HANDOVER_INTERVAL_S,
)
from repro.orbits.contact import contact_windows
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like

DURATION_S = 7200.0  # two hours, ~1.2 orbits


def main():
    site = GeodeticPoint(-1.29, 36.82, 0.0)  # Nairobi
    constellation = iridium_like()
    print(f"Computing contact windows for {len(constellation)} satellites "
          f"over {DURATION_S / 3600:.0f} h...")
    windows = contact_windows(
        site, constellation.propagators(), 0.0, DURATION_S,
        step_s=15.0, min_elevation_deg=25.0,
    )
    print(f"{len(windows)} visibility windows; mean duration "
          f"{sum(w.duration_s for w in windows) / len(windows):.0f} s")

    simulator = HandoverSimulator(
        link_setup_s=0.020,       # new-session establishment
        auth_round_trip_s=0.180,  # RADIUS over multi-hop ISLs
        successor_notice_s=5.0,   # advance successor announcement
    )
    timelines = simulator.compare_schemes(windows, 0.0, DURATION_S)

    print(f"\n{'scheme':>16} | {'handover':>8} | {'outage s':>9} | "
          f"{'mean ms':>8} | {'avail':>7}")
    print("-" * 62)
    for name, timeline in timelines.items():
        print(f"{name:>16} | {timeline.handover_count:>8} | "
              f"{timeline.total_interruption_s:>9.3f} | "
              f"{timeline.mean_interruption_s * 1000:>8.1f} | "
              f"{timeline.availability:>7.5f}")

    predictive = timelines[HandoverScheme.PREDICTIVE.value]
    reauth = timelines[HandoverScheme.REAUTHENTICATE.value]
    ratio = (reauth.total_interruption_s
             / max(1e-9, predictive.total_interruption_s))
    print(f"\nPredictive handover cuts outage {ratio:.1f}x by carrying the "
          "roaming certificate across satellites.")

    # Starlink-cadence extrapolation.
    per_handover_reauth = (reauth.total_interruption_s
                           / max(1, len(reauth.events)))
    per_handover_pred = (predictive.total_interruption_s
                         / max(1, len(predictive.events)))
    per_hour = 3600.0 / STARLINK_HANDOVER_INTERVAL_S
    print(f"\nAt Starlink's observed cadence (one handover every "
          f"{STARLINK_HANDOVER_INTERVAL_S:.0f} s = {per_hour:.0f}/hour):")
    print(f"  re-authenticating: {per_handover_reauth * per_hour:.1f} s "
          "of outage per hour")
    print(f"  predictive:        {per_handover_pred * per_hour:.2f} s "
          "of outage per hour")


if __name__ == "__main__":
    main()
