#!/usr/bin/env python3
"""Shared-spectrum coordination between overlapping operators (paper §2).

Two operators fly overlapping shells in the same downlink band.  From the
public orbital catalog alone, every participant can compute the same
interference graph and the same conflict-free channel plan — coordination
with no central authority.  The example prints the conflict census, the
coordinated plan, per-operator slot usage, and what uncoordinated random
channel choice would have collided.

Run:
    python examples/spectrum_coordination.py
"""

import numpy as np

from repro.core.spectrum import SpectrumCoordinator
from repro.orbits.walker import (
    iridium_like,
    merge_constellations,
    random_constellation,
)


def main():
    rng = np.random.default_rng(9)
    shells = merge_constellations(
        [iridium_like(), random_constellation(66, rng)], "dual-shell"
    )
    owner_of = {
        f"sat{i}": ("walker-co" if i < 66 else "random-co")
        for i in range(len(shells))
    }
    positions = {
        f"sat{i}": p for i, p in enumerate(shells.positions_at(0.0))
    }

    coordinator = SpectrumCoordinator(min_separation_deg=15.0,
                                      grid_resolution=16)
    plan = coordinator.plan(positions)

    print(f"{len(shells)} satellites from 2 operators share one band")
    print(f"conflicting pairs (a user antenna cannot discriminate them): "
          f"{len(plan.conflict_edges)}")
    cross = sum(
        1 for a, b in plan.conflict_edges if owner_of[a] != owner_of[b]
    )
    print(f"  of which cross-operator: {cross} — the pairs no single "
          "operator could deconflict alone")

    print(f"\ncoordinated plan: {plan.slot_count} channel slots, "
          f"conflict-free: {plan.is_conflict_free()}")
    for operator, slots in sorted(plan.slots_by_operator(owner_of).items()):
        print(f"  {operator}: uses slots {sorted(slots)}")

    print("\nuncoordinated baseline (each operator picks channels at "
          "random):")
    for slots in (plan.slot_count, plan.slot_count * 4):
        collisions = [
            coordinator.uncoordinated_collisions(
                positions, slots, np.random.default_rng(100 + trial)
            )
            for trial in range(5)
        ]
        print(f"  {slots} slots available: "
              f"{np.mean(collisions):.1f} colliding pairs (mean of 5)")

    print("\nReading: with the public topology, graph coloring resolves"
          "\nevery conflict in the chromatic number of slots; random choice"
          "\nkeeps colliding even with 4x the spectrum — the paper's case"
          "\nthat shared spectrum requires an interoperability standard,"
          "\nnot just goodwill.")


if __name__ == "__main__":
    main()
