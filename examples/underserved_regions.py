#!/usr/bin/env python3
"""Serving the regions the paper's introduction motivates.

Places user clusters in eight underserved regions (remote communities,
disaster-prone and politically unstable areas — the populations for whom
satellite Internet "is often the only connectivity option"), then
measures, over one orbital period:

* service reachability and latency per region;
* how often users roam onto satellites owned by a non-home operator
  ("'roaming' may be quite rampant");
* how much each region depends on each operator's infrastructure.

Run:
    python examples/underserved_regions.py
"""

from collections import Counter, defaultdict

import numpy as np

from repro.core.interop import SizeClass
from repro.ground.station import default_station_network
from repro.simulation.scenario import Scenario
from repro.simulation.traffic import (
    UNDERSERVED_REGIONS,
    underserved_region_users,
)

OPERATORS = ("kenya-sat", "andes-net", "pacific-orbital")


def main():
    rng = np.random.default_rng(7)
    population = underserved_region_users(4, rng, list(OPERATORS))
    for user in population.users:
        user.min_elevation_deg = 10.0

    scenario = Scenario(
        name="underserved",
        satellite_count=66,
        operator_names=OPERATORS,
        size_mix=(SizeClass.MEDIUM, SizeClass.SMALL),
        seed=7,
    )
    network = scenario.build_network()
    sample_times = np.linspace(0.0, 6000.0, 5)

    per_region_latency = defaultdict(list)
    per_region_unreached = Counter()
    roaming = Counter()
    operator_dependence = defaultdict(Counter)

    for time_s in sample_times:
        snapshot = network.snapshot(float(time_s), users=population.users)
        for user in population.users:
            region = user.user_id.split("-", 1)[1].rsplit("-", 1)[0]
            metrics = snapshot.nearest_ground_station_route(user.user_id)
            if metrics is None:
                per_region_unreached[region] += 1
                continue
            per_region_latency[region].append(metrics.total_delay_ms)
            serving_sat = metrics.path[1]
            serving_owner = snapshot.graph.nodes[serving_sat]["owner"]
            roaming["roamed" if serving_owner != user.home_provider
                    else "home"] += 1
            for operator in metrics.operators:
                operator_dependence[region][operator] += 1

    print(f"{'region':>22} | {'mean ms':>8} | {'p95 ms':>8} | {'missed':>6}")
    print("-" * 56)
    for region, _lat, _lon in UNDERSERVED_REGIONS:
        samples = per_region_latency.get(region, [])
        if samples:
            print(f"{region:>22} | {np.mean(samples):>8.1f} | "
                  f"{np.percentile(samples, 95):>8.1f} | "
                  f"{per_region_unreached[region]:>6}")
        else:
            print(f"{region:>22} | {'--':>8} | {'--':>8} | "
                  f"{per_region_unreached[region]:>6}")

    total = roaming["home"] + roaming["roamed"]
    if total:
        print(f"\nRoaming is rampant, as the paper predicts: "
              f"{roaming['roamed'] / total:.0%} of served samples rode a "
              f"non-home operator's satellite first.")

    print("\nOperator dependence by region (distinct path appearances):")
    for region, counts in sorted(operator_dependence.items()):
        mix = ", ".join(f"{op}: {n}" for op, n in counts.most_common())
        print(f"  {region:>22}: {mix}")


if __name__ == "__main__":
    main()
