#!/usr/bin/env python3
"""Preemptive QoS plan advertisement (paper Section 2.2).

"Using these known orbital configurations ... mak[es] it possible to
preemptively adjust their QoS guarantees ... in regions where routing
paths will be bottlenecked by bandwidth-limited links, the provider can
adjust advertised plans to reflect these looser QoS guarantees."

Two fleets are compared over the same two-hour forecast: an all-laser
MEDIUM fleet and an RF-only SMALL fleet.  The planner produces, per
region, the per-epoch admissible classes and the *honest continuous
guarantee* each provider could put on its pricing page.

Run:
    python examples/advertised_plans.py
"""

from repro.core.interop import SizeClass, build_fleet
from repro.core.network import OpenSpaceNetwork
from repro.core.qos_planner import QosPlanner
from repro.ground.station import default_station_network
from repro.orbits.coordinates import GeodeticPoint
from repro.orbits.walker import iridium_like

REGIONS = {
    "east-africa": GeodeticPoint(-1.29, 36.82),
    "central-europe": GeodeticPoint(48.0, 11.0),
    "south-pacific": GeodeticPoint(-17.5, 178.0),
    "high-arctic": GeodeticPoint(72.0, -40.0),
}
HORIZON_S = 7200.0
EPOCH_S = 600.0


def forecast_for(size_class):
    constellation = iridium_like()
    fleet = build_fleet(constellation, "provider", size_class)
    network = OpenSpaceNetwork(fleet, default_station_network())
    planner = QosPlanner(network)
    return planner.forecast(REGIONS, 0.0, HORIZON_S, EPOCH_S)


def main():
    for label, size_class in (("all-laser MEDIUM fleet", SizeClass.MEDIUM),
                              ("RF-only SMALL fleet", SizeClass.SMALL)):
        forecast = forecast_for(size_class)
        print(f"=== {label} ===")
        print(f"{'region':>16} | {'guarantee':>11} | {'premium %':>9} | "
              f"{'standard %':>10} | {'best-effort %':>13}")
        print("-" * 72)
        for region in REGIONS:
            print(f"{region:>16} | "
                  f"{forecast.guaranteed_class(region):>11} | "
                  f"{forecast.availability_of_class(region, 'premium'):>9.0%} | "
                  f"{forecast.availability_of_class(region, 'standard'):>10.0%} | "
                  f"{forecast.availability_of_class(region, 'best_effort'):>13.0%}")
        print()
    print("Reading: the guarantee column is what each provider can honestly"
          "\nadvertise as continuous service over the next two hours."
          "\nRegions near a gateway get premium over the direct"
          "\nuser->satellite->gateway hop regardless of ISL technology; the"
          "\ndifference appears exactly where traffic must relay over ISLs"
          "\n(south-pacific: premium available 92% of epochs with laser"
          "\nISLs, 17% with RF-only) — the bandwidth-limited-links case the"
          "\npaper says must loosen advertised plans.  Coverage gaps void"
          "\nany continuous guarantee, whatever the hardware.")


if __name__ == "__main__":
    main()
